//! Property tests for approximate serving: at `nprobe = nlist` the
//! IVF path must be **bit-identical** to the exact engine — through
//! the monolithic [`QueryEngine`] and through a [`ShardRouter`] over
//! per-shard indexes alike — and at a realistic partial probe the
//! recall against the exact oracle must stay high on a trained
//! artifact. This is the contract the `/topk?mode=approx` endpoint is
//! built on: approximation is a *measured* trade, never silent
//! corruption.

use proptest::prelude::*;
use sgla_serve::{
    Artifact, EngineConfig, IvfConfig, QueryEngine, RouterConfig, ShardRouter, TrainConfig,
};
use std::sync::OnceLock;

const N: usize = 72;

/// Training dominates wall-clock; every case reuses one artifact and
/// one monolithic exact reference engine.
fn reference() -> &'static (Artifact, QueryEngine) {
    static SHARED: OnceLock<(Artifact, QueryEngine)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let mvag = mvag_data::toy_mvag(N, 3, 31);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        let artifact = Artifact::train(&mvag, &config).unwrap();
        let engine = QueryEngine::new(artifact.clone(), EngineConfig::default()).unwrap();
        (artifact, engine)
    })
}

fn indexed_engine(nlist: usize, seed: u64) -> QueryEngine {
    let (artifact, _) = reference();
    QueryEngine::new(
        artifact.clone(),
        EngineConfig {
            index: Some(IvfConfig { nlist, seed }),
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Monolithic engine: `nprobe >= nlist` answers must match the
    /// exact engine bit for bit, for any list count and query mix.
    #[test]
    fn full_probe_engine_bit_identical_to_exact(
        nlist in 1usize..10,
        queries in proptest::collection::vec((0usize..N, 1usize..20), 1..10),
        seed in 0u64..u64::MAX,
    ) {
        let (_, exact_engine) = reference();
        let approx_engine = indexed_engine(nlist, seed);
        let exact = exact_engine.top_k_batch(&queries);
        let approx_queries: Vec<(usize, usize, usize)> =
            queries.iter().map(|&(node, k)| (node, k, usize::MAX)).collect();
        let approx = approx_engine.top_k_batch_approx(&approx_queries);
        for ((e, a), &(node, k)) in exact.iter().zip(&approx).zip(&queries) {
            let e = e.as_ref().unwrap();
            let a = a.as_ref().unwrap();
            prop_assert_eq!(e.len(), a.len(), "len for query ({}, {})", node, k);
            for (en, an) in e.iter().zip(a) {
                prop_assert_eq!(en.node, an.node, "node order for query ({}, {})", node, k);
                prop_assert_eq!(
                    en.score.to_bits(), an.score.to_bits(),
                    "score bits for query ({}, {})", node, k
                );
            }
        }
    }

    /// Shard router over per-shard indexes: full-probe fan-out must
    /// match the *monolithic exact* engine bit for bit — sharding and
    /// approximation together must still be invisible at full width.
    #[test]
    fn full_probe_router_bit_identical_to_exact(
        shards in 1usize..7,
        nlist in 1usize..6,
        max_resident in 0usize..4,
        queries in proptest::collection::vec((0usize..N, 1usize..16), 1..8),
        case in 0u64..u64::MAX,
    ) {
        let (artifact, exact_engine) = reference();
        let dir = std::env::temp_dir().join(format!(
            "sgla-index-equiv-{shards}-{nlist}-{max_resident}-{case}-{:?}",
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        artifact.save_sharded(&dir, shards).unwrap();
        let router = ShardRouter::open(
            &dir,
            RouterConfig {
                engine: EngineConfig {
                    index: Some(IvfConfig { nlist, seed: case }),
                    ..EngineConfig::default()
                },
                max_resident,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let approx_queries: Vec<(usize, usize, usize)> =
            queries.iter().map(|&(node, k)| (node, k, usize::MAX)).collect();
        let exact = exact_engine.top_k_batch(&queries);
        let approx = router.top_k_batch_approx(&approx_queries);
        for ((e, a), &(node, k)) in exact.iter().zip(&approx).zip(&queries) {
            let e = e.as_ref().unwrap();
            let a = a.as_ref().unwrap();
            prop_assert_eq!(e.len(), a.len(), "len for query ({}, {})", node, k);
            for (en, an) in e.iter().zip(a) {
                prop_assert_eq!(en.node, an.node, "node order for query ({}, {})", node, k);
                prop_assert_eq!(
                    en.score.to_bits(), an.score.to_bits(),
                    "score bits for query ({}, {})", node, k
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Partial-probe quality gate on a *trained* artifact (not synthetic
/// blobs): recall@10 against the exact oracle at a realistic probe
/// width. The embedding clusters strongly (that is what SGLA is for),
/// so probing a quarter of the lists must recover ≥ 0.9 of the true
/// neighbors.
#[test]
fn partial_probe_recall_at_10_on_trained_artifact() {
    let mvag = mvag_data::toy_mvag(240, 3, 11);
    let mut config = TrainConfig::default();
    config.embed.dim = 16;
    let artifact = Artifact::train(&mvag, &config).unwrap();
    let exact_engine = QueryEngine::new(artifact.clone(), EngineConfig::default()).unwrap();
    let approx_engine = QueryEngine::new(
        artifact,
        EngineConfig {
            index: Some(IvfConfig { nlist: 16, seed: 7 }),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let nprobe = 4;
    let mut hit = 0usize;
    let mut total = 0usize;
    for q in (0..240).step_by(7) {
        let exact = exact_engine.top_k_similar(q, 10).unwrap();
        let approx = approx_engine.top_k_approx(q, 10, nprobe).unwrap();
        total += exact.len();
        hit += exact
            .iter()
            .filter(|e| approx.iter().any(|a| a.node == e.node))
            .count();
    }
    let recall = hit as f64 / total as f64;
    assert!(
        recall >= 0.9,
        "recall@10 = {recall:.3} at nprobe {nprobe}/16 on the trained artifact"
    );
    // And the scan work was genuinely sublinear.
    let stats = approx_engine.index_stats();
    let avg_rows = stats.rows_scanned as f64 / stats.approx_queries as f64;
    assert!(
        avg_rows < 0.5 * 239.0,
        "avg rows scanned per query {avg_rows:.0} is not sublinear in n"
    );
}

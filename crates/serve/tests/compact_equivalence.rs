//! Property test: compaction is **bit-identical** to serving the
//! uncompacted chain.
//!
//! Queries read only labels, centroids, and the embedding matrix —
//! compaction copies live rows of all three verbatim and the
//! [`mvag_data::IdMap`] is monotonic, so order and tie-breaks survive
//! the renumbering. That makes the strongest possible check cheap:
//! for every live node, `cluster_of`, `embed_batch`, and `top_k`
//! answers from a compacted artifact must equal the uncompacted
//! (tombstone-masked) engine's answers *to the bit* once ids are
//! mapped — monolithic and sharded, across shard counts and
//! `max_resident` residency budgets. Purged ids must be `NotFound` on
//! the chain and absent from the compacted id space.
//!
//! A second battery proves the in-place append contract: untouched
//! shard files stay byte-identical (CRC and raw bytes), old-node
//! cluster/embedding answers are frozen, and the appended rows serve.

use mvag_data::manifest::ShardManifest;
use mvag_data::{FsWriter, IdMap};
use mvag_graph::{MvagDelta, ViewDelta};
use mvag_sparse::DenseMatrix;
use proptest::prelude::*;
use sgla_serve::{
    append_sharded, compact_sharded, Artifact, EngineConfig, QueryBackend, QueryEngine,
    RouterConfig, ServeError, ShardRouter, TrainConfig,
};
use std::sync::OnceLock;

const N: usize = 72;
const K: usize = 6;

/// Training dominates wall-clock; every case reuses one artifact.
fn reference() -> &'static Artifact {
    static SHARED: OnceLock<Artifact> = OnceLock::new();
    SHARED.get_or_init(|| {
        let mvag = mvag_data::toy_mvag(N, 3, 23);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        Artifact::train(&mvag, &config).unwrap()
    })
}

fn with_dead(dead: &[usize]) -> Artifact {
    let mut artifact = reference().clone();
    artifact.tombstones = dead.to_vec();
    artifact
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sgla-compact-equiv-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The core oracle: every old id answers identically (modulo the id
/// map) on the chain and the compacted backend; purged ids are gone.
fn assert_equivalent(chain: &QueryEngine, compacted: &dyn QueryBackend, map: &IdMap) {
    assert_eq!(QueryBackend::meta(compacted).n, map.new_n);
    for old in 0..map.old_n {
        let Some(new) = map.map(old) else {
            assert!(
                matches!(chain.cluster_of(old), Err(ServeError::NotFound(_))),
                "purged node {old} still answers on the chain"
            );
            continue;
        };

        let a = chain.cluster_of(old).unwrap();
        let b = compacted.cluster_of(new).unwrap();
        assert_eq!(a.cluster, b.cluster, "cluster of {old} -> {new}");
        assert_eq!(
            a.centroid_dist.to_bits(),
            b.centroid_dist.to_bits(),
            "centroid distance of {old} -> {new}"
        );

        let ea = &chain.embed_batch(&[old]).unwrap()[0];
        let eb = &compacted.embed_batch(&[new]).unwrap()[0];
        let bits = |row: &Vec<f64>| row.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(ea), bits(eb), "embedding of {old} -> {new}");

        // The chain masks dead candidates at query time; compaction
        // removed them from the id space. Same survivors, same scores,
        // same order — the monotonic map preserves the (score desc,
        // node asc) tie-break, so compare elementwise.
        let ta = chain.top_k_similar(old, K).unwrap();
        let tb = compacted.top_k_batch(&[(new, K)]).pop().unwrap().unwrap();
        assert_eq!(ta.len(), tb.len(), "top-k length of {old} -> {new}");
        for (na, nb) in ta.iter().zip(&tb) {
            assert_eq!(
                map.map(na.node),
                Some(nb.node),
                "neighbour id for query {old} -> {new}"
            );
            assert_eq!(
                na.score.to_bits(),
                nb.score.to_bits(),
                "neighbour score bits for query {old} -> {new}"
            );
        }
    }
}

#[test]
fn monolithic_compaction_is_bit_identical_to_the_chain() {
    let dead = [1usize, 5, 33, 64, 71];
    let chained = with_dead(&dead);
    let chain = QueryEngine::new(chained.clone(), EngineConfig::default()).unwrap();

    let (compacted, map) = chained.compact().unwrap();
    assert_eq!(compacted.meta.n, N - dead.len());
    assert_eq!(compacted.tombstone_count(), 0);
    let engine = QueryEngine::new(compacted, EngineConfig::default()).unwrap();
    assert_equivalent(&chain, &engine, &map);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharded compaction equivalence across shard counts, residency
    /// budgets, and random tombstone sets — plus the write-amp bound.
    #[test]
    fn sharded_compaction_is_bit_identical_to_the_chain(
        shards in 2usize..6,
        max_resident in 0usize..3,
        dead_raw in proptest::collection::vec(0usize..N, 1..9),
        case in 0u64..u64::MAX,
    ) {
        let mut dead = dead_raw;
        dead.sort_unstable();
        dead.dedup();

        let chained = with_dead(&dead);
        let chain = QueryEngine::new(chained.clone(), EngineConfig::default()).unwrap();
        let map = IdMap::new(N, dead.clone()).unwrap();

        let dir = temp_dir(&format!("prop-{case}"));
        chained.save_sharded(&dir, shards).unwrap();
        let stats = compact_sharded(&dir, &mut FsWriter).unwrap();
        prop_assert_eq!(stats.purged, dead.len());
        prop_assert!(
            stats.bytes_written <= 2 * stats.dirty_bytes_before,
            "write amplification {} over dirty bytes {}",
            stats.bytes_written,
            stats.dirty_bytes_before
        );

        let router = ShardRouter::open(
            &dir,
            RouterConfig { max_resident, ..RouterConfig::default() },
        )
        .unwrap();
        assert_equivalent(&chain, &router, &map);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn append_freezes_old_answers_and_untouched_bytes() {
    let dir = temp_dir("append");
    reference().save_sharded(&dir, 4).unwrap();
    let before = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
    let old_files: Vec<Vec<u8>> = before.shards[..3]
        .iter()
        .map(|e| std::fs::read(dir.join(&e.file)).unwrap())
        .collect();

    let probes = [0usize, 20, 50, 71];
    let frozen: Vec<_> = {
        let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        probes
            .iter()
            .map(|&node| {
                let info = router.cluster_of(node).unwrap();
                let embed: Vec<u64> = router.embed_batch(&[node]).unwrap()[0]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                (info.cluster, info.centroid_dist.to_bits(), embed)
            })
            .collect()
    };

    let delta = MvagDelta::append(
        3,
        vec![
            ViewDelta::Edges(vec![(N, 70, 1.0), (N + 1, N, 2.0), (N + 2, 65, 0.5)]),
            ViewDelta::Rows(DenseMatrix::zeros(3, 4)),
        ],
        None,
    );
    let stats = append_sharded(&dir, &delta, &mut FsWriter).unwrap();
    assert_eq!((stats.added, stats.tail_shard), (3, 3));

    // Satellite contract: every non-tail shard file is byte-identical
    // after the append — same CRC in the manifest, same raw bytes on
    // disk.
    let after = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
    assert_eq!(after.n, N + 3);
    for ((old_entry, new_entry), old_bytes) in before.shards[..3]
        .iter()
        .zip(&after.shards[..3])
        .zip(&old_files)
    {
        assert_eq!(old_entry.file, new_entry.file);
        assert_eq!(old_entry.crc32, new_entry.crc32);
        assert_eq!(new_entry.file_n, Some(N));
        assert_eq!(
            &std::fs::read(dir.join(&new_entry.file)).unwrap(),
            old_bytes
        );
    }

    // Frozen base: cluster assignments and embedding rows of existing
    // nodes are bit-identical before and after the append, and stay so
    // after the follow-up compaction normalizes the stale entries.
    let check_frozen = |dir: &std::path::Path| {
        let router = ShardRouter::open(dir, RouterConfig::default()).unwrap();
        for (&node, want) in probes.iter().zip(&frozen) {
            let info = router.cluster_of(node).unwrap();
            let embed: Vec<u64> = router.embed_batch(&[node]).unwrap()[0]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(
                &(info.cluster, info.centroid_dist.to_bits(), embed),
                want,
                "node {node} drifted"
            );
        }
        // The appended rows serve on every query path.
        for node in N..N + 3 {
            assert!(router.cluster_of(node).unwrap().cluster < 3);
            router.top_k_similar(node, 5).unwrap();
            router.embed_batch(&[node]).unwrap();
        }
    };
    check_frozen(&dir);

    // Normalization pass: no tombstones, but the stale (rebased)
    // entries get rewritten into plain files. Answers don't move.
    let stats = compact_sharded(&dir, &mut FsWriter).unwrap();
    assert_eq!(stats.purged, 0);
    assert_eq!(stats.shards_rewritten, 3);
    check_frozen(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_crud_cycle_stays_consistent() {
    // Delete → compact → append → compact again, the lifecycle the
    // `sgla-serve` CLI drives, checked against the monolithic oracle
    // at the step where they are comparable.
    let dead = [3usize, 20, 40];
    let chained = with_dead(&dead);
    let chain = QueryEngine::new(chained.clone(), EngineConfig::default()).unwrap();
    let map = IdMap::new(N, dead.to_vec()).unwrap();

    let dir = temp_dir("cycle");
    chained.save_sharded(&dir, 4).unwrap();
    let stats = compact_sharded(&dir, &mut FsWriter).unwrap();
    assert_eq!(stats.purged, dead.len());
    {
        let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        assert_equivalent(&chain, &router, &map);
    }

    // Append onto the compacted id space (n = 69 here).
    let n = N - dead.len();
    let delta = MvagDelta::append(
        2,
        vec![
            ViewDelta::Edges(vec![(n, n - 1, 1.0), (n + 1, n, 1.0)]),
            ViewDelta::Rows(DenseMatrix::zeros(2, 4)),
        ],
        None,
    );
    append_sharded(&dir, &delta, &mut FsWriter).unwrap();
    let stats = compact_sharded(&dir, &mut FsWriter).unwrap();
    assert_eq!(stats.purged, 0);

    // Old (mapped) nodes still answer exactly like the monolithic
    // compacted artifact — append and normalization never touch them.
    let (mono, _) = chained.compact().unwrap();
    let mono = QueryEngine::new(mono, EngineConfig::default()).unwrap();
    let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
    assert_eq!(QueryBackend::meta(&router).n, n + 2);
    for old in 0..N {
        let Some(new) = map.map(old) else { continue };
        let a = mono.cluster_of(new).unwrap();
        let b = router.cluster_of(new).unwrap();
        assert_eq!(
            (a.cluster, a.centroid_dist.to_bits()),
            (b.cluster, b.centroid_dist.to_bits())
        );
        let ea: Vec<u64> = mono.embed_batch(&[new]).unwrap()[0]
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let eb: Vec<u64> = router.embed_batch(&[new]).unwrap()[0]
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(ea, eb, "embedding of surviving node {old} -> {new} drifted");
    }
    for node in n..n + 2 {
        router.top_k_similar(node, 5).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

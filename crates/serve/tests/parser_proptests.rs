//! Property tests for the shared HTTP/1.1 parser (`sgla_serve::parser`).
//!
//! The evented backend feeds the incremental [`parse_request`] from a
//! growing per-connection buffer, so its contract is stronger than the
//! blocking reader's: a request split at *any* byte boundary must be
//! `Partial` for every strict prefix and `Complete` only on the full
//! bytes, pipelined requests must come out back to back, and hostile
//! input (oversized headers, torn requests, random bytes) must settle
//! on `Bad` or `Partial` — never a panic, never a hang, and never a
//! disagreement with the one-shot [`read_request`] oracle the threaded
//! backend uses.

use proptest::prelude::*;
use sgla_serve::parser::{
    parse_request, read_request, sanitize_request_id, Parse, Request, MAX_HEADER_BYTES,
};
use std::io::BufReader;

/// A generated request: the raw bytes and what parsing must yield.
#[derive(Debug, Clone)]
struct GenRequest {
    raw: Vec<u8>,
    expect: Request,
}

/// Strategy for a well-formed request assembled from small component
/// pools (method, path, query, extra headers, body, keep-alive form).
fn request_strategy() -> impl Strategy<Value = GenRequest> {
    let methods = ["GET", "POST", "PUT", "DELETE"];
    let paths = ["/", "/healthz", "/topk/17", "/embed", "/stats", "/a/b/c"];
    let queries = ["", "k=5", "k=5&mode=approx", "reset=true"];
    // Client-supplied request ids: absent, well-formed (round-trips),
    // malformed (dropped by sanitization, not truncated).
    let ids = ["", "abc-123", "trace.7_x", "bad id!"];
    // ((method, path, query, id), (connection-variant, body, junk headers))
    (
        (
            0usize..methods.len(),
            0usize..paths.len(),
            0usize..queries.len(),
            0usize..ids.len(),
        ),
        (0usize..4, collection::vec(0u8..=255u8, 0..64), 0usize..4),
    )
        .prop_map(move |((m, p, q, id), (conn, body, junk))| {
            let method = methods[m];
            let path = paths[p];
            let query = queries[q];
            let id = ids[id];
            let target = if query.is_empty() {
                path.to_string()
            } else {
                format!("{path}?{query}")
            };
            let mut raw = format!("{method} {target} HTTP/1.1\r\n").into_bytes();
            // Headers the parser must skip over without tripping.
            for j in 0..junk {
                raw.extend_from_slice(format!("x-junk-{j}: value {j}\r\n").as_bytes());
            }
            let keep_alive = match conn {
                0 => true, // HTTP/1.1 default
                1 => {
                    raw.extend_from_slice(b"connection: keep-alive\r\n");
                    true
                }
                2 => {
                    raw.extend_from_slice(b"connection: close\r\n");
                    false
                }
                _ => {
                    raw.extend_from_slice(b"Connection: Close\r\n"); // case-insensitive
                    false
                }
            };
            if !body.is_empty() {
                raw.extend_from_slice(format!("content-length: {}\r\n", body.len()).as_bytes());
            }
            if !id.is_empty() {
                raw.extend_from_slice(format!("X-Request-Id: {id}\r\n").as_bytes());
            }
            raw.extend_from_slice(b"\r\n");
            raw.extend_from_slice(&body);
            GenRequest {
                raw,
                expect: Request {
                    method: method.to_string(),
                    path: path.to_string(),
                    query: query.to_string(),
                    body,
                    keep_alive,
                    client_id: sanitize_request_id(id),
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every strict prefix parses `Partial`; the full bytes parse
    /// `Complete` with the exact request and full consumption — the
    /// "split at every byte boundary" guarantee the evented read path
    /// leans on.
    #[test]
    fn every_byte_split_is_partial_then_complete(generated in request_strategy()) {
        let raw = &generated.raw;
        for cut in 0..raw.len() {
            prop_assert_eq!(parse_request(&raw[..cut]), Parse::Partial, "cut {}", cut);
        }
        let Parse::Complete(req, consumed) = parse_request(raw) else {
            panic!("full request must be complete");
        };
        prop_assert_eq!(consumed, raw.len());
        prop_assert_eq!(req, generated.expect.clone());
    }

    /// The incremental parser and the blocking one-shot reader agree
    /// on every generated request.
    #[test]
    fn incremental_matches_blocking_oracle(generated in request_strategy()) {
        let Parse::Complete(incremental, _) = parse_request(&generated.raw) else {
            panic!("full request must be complete");
        };
        let mut reader = BufReader::new(std::io::Cursor::new(generated.raw.clone()));
        let blocking = read_request(&mut reader)
            .expect("blocking parse failed")
            .expect("blocking parse saw EOF");
        prop_assert_eq!(blocking, incremental);
    }

    /// Two requests back to back parse out in order, consuming exactly
    /// their own bytes (pipelining), at every split point of the
    /// concatenated stream.
    #[test]
    fn pipelined_pair_parses_in_order(
        first in request_strategy(),
        second in request_strategy(),
        split_seed in 0u64..1 << 32,
    ) {
        let mut stream = first.raw.clone();
        stream.extend_from_slice(&second.raw);
        // One arbitrary split point per case (the per-request loop
        // above already covers every boundary of a single request).
        let cut = (split_seed as usize) % (stream.len() + 1);
        let (a, b) = stream.split_at(cut);
        let mut buf = a.to_vec();
        let outcome = parse_request(&buf);
        if cut < first.raw.len() {
            prop_assert_eq!(outcome, Parse::Partial);
        }
        buf.extend_from_slice(b);
        let Parse::Complete(got_first, consumed) = parse_request(&buf) else {
            panic!("first of pipelined pair must complete");
        };
        prop_assert_eq!(got_first, first.expect.clone());
        prop_assert_eq!(consumed, first.raw.len());
        let Parse::Complete(got_second, rest) = parse_request(&buf[consumed..]) else {
            panic!("second of pipelined pair must complete");
        };
        prop_assert_eq!(got_second, second.expect.clone());
        prop_assert_eq!(consumed + rest, stream.len());
    }

    /// A header section that outgrows the budget is `Bad` — with or
    /// without a terminating newline in the buffer — matching the
    /// blocking reader's verdict on the same bytes.
    #[test]
    fn oversized_headers_are_bad(extra in 0usize..128, terminated in 0u8..2) {
        let mut raw = b"GET / HTTP/1.1\r\nx-flood: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + extra));
        if terminated == 1 {
            raw.extend_from_slice(b"\r\n\r\n");
        }
        prop_assert!(matches!(parse_request(&raw), Parse::Bad(_)));
        let mut reader = BufReader::new(std::io::Cursor::new(raw));
        prop_assert!(read_request(&mut reader).is_err());
    }

    /// A request torn anywhere stays `Partial` (the loop keeps the
    /// connection and waits for the idle sweep) and the blocking
    /// reader reports an error or clean EOF — neither side fabricates
    /// a request from a truncated stream.
    #[test]
    fn torn_requests_never_fabricate(generated in request_strategy(), cut_seed in 0u64..1 << 32) {
        let full = &generated.raw;
        let cut = (cut_seed as usize) % full.len();
        let torn = &full[..cut];
        prop_assert_eq!(parse_request(torn), Parse::Partial);
        let mut reader = BufReader::new(std::io::Cursor::new(torn.to_vec()));
        match read_request(&mut reader) {
            Ok(None) | Err(_) => {} // clean EOF before any byte, or torn-stream error
            Ok(Some(req)) => panic!("blocking reader fabricated {req:?} from a torn stream"),
        }
    }

    /// Arbitrary bytes never panic the parser and always reach a
    /// verdict in one pass (the parser is a pure function of the
    /// buffer — calling it is the proof there is no hang).
    #[test]
    fn random_bytes_reach_a_verdict(noise in collection::vec(0u8..=255u8, 0..512)) {
        match parse_request(&noise) {
            Parse::Complete(_, consumed) => prop_assert!(consumed <= noise.len()),
            Parse::Partial | Parse::Bad(_) => {}
        }
    }
}

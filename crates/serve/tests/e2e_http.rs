//! End-to-end serving test: train on `toy_mvag`, save → load the
//! artifact (bit-exact), serve it over a loopback socket, and check
//! every HTTP answer against direct library calls.

use mvag_data::json::Value;
use sgla_serve::{
    Artifact, EngineConfig, HttpClient, QueryEngine, Server, ServerConfig, TrainConfig,
};
use std::sync::Arc;

fn trained_artifact() -> Artifact {
    // Training dominates test wall-clock in debug builds; all four
    // tests serve clones of one shared artifact.
    static SHARED: std::sync::OnceLock<Artifact> = std::sync::OnceLock::new();
    SHARED
        .get_or_init(|| {
            let mvag = mvag_data::toy_mvag(90, 3, 19);
            let mut config = TrainConfig::default();
            config.embed.dim = 8;
            Artifact::train(&mvag, &config).unwrap()
        })
        .clone()
}

fn start_server(artifact: Artifact) -> (Server, Arc<QueryEngine>) {
    let engine = Arc::new(QueryEngine::new(artifact, EngineConfig::default()).unwrap());
    let config = ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        workers: 4,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &config).unwrap();
    (server, engine)
}

#[test]
fn save_load_serve_and_query() {
    let artifact = trained_artifact();

    // Bit-exact persistence round-trip through a real file.
    let dir = std::env::temp_dir().join("sgla-e2e-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e.sgla");
    artifact.save(&path).unwrap();
    let loaded = Artifact::load(&path).unwrap();
    assert_eq!(artifact, loaded);
    std::fs::remove_file(&path).ok();

    let (server, engine) = start_server(loaded);
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // Health.
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body.get("status").unwrap().as_str(), Some("ok"));

    // Artifact metadata matches.
    let meta = client.get("/artifact").unwrap();
    assert_eq!(meta.status, 200);
    assert_eq!(meta.body.get("n").unwrap().as_usize(), Some(90));
    assert_eq!(meta.body.get("k").unwrap().as_usize(), Some(3));
    let weights = meta.body.get("weights").unwrap().as_array().unwrap();
    for (wire, direct) in weights.iter().zip(&engine.artifact().weights) {
        assert_eq!(wire.as_f64().unwrap().to_bits(), direct.to_bits());
    }

    // Cluster answers match direct calls for every node.
    for node in 0..90 {
        let res = client.get(&format!("/cluster/{node}")).unwrap();
        assert_eq!(res.status, 200);
        let direct = engine.cluster_of(node).unwrap();
        assert_eq!(
            res.body.get("cluster").unwrap().as_usize(),
            Some(direct.cluster)
        );
        let dist = res.body.get("centroid_dist").unwrap().as_f64().unwrap();
        assert_eq!(dist.to_bits(), direct.centroid_dist.to_bits());
    }

    // Top-k answers match direct calls (node ids and bit-exact scores —
    // the JSON writer is shortest-roundtrip).
    for node in [0usize, 17, 44, 89] {
        let res = client.get(&format!("/topk/{node}?k=7")).unwrap();
        assert_eq!(res.status, 200);
        let direct = engine.top_k_similar(node, 7).unwrap();
        let neighbors = res.body.get("neighbors").unwrap().as_array().unwrap();
        assert_eq!(neighbors.len(), direct.len());
        for (wire, want) in neighbors.iter().zip(&direct) {
            assert_eq!(wire.get("node").unwrap().as_usize(), Some(want.node));
            let score = wire.get("score").unwrap().as_f64().unwrap();
            assert_eq!(score.to_bits(), want.score.to_bits());
        }
    }

    // Default k is 10 when the query string omits it.
    let res = client.get("/topk/3").unwrap();
    assert_eq!(
        res.body.get("neighbors").unwrap().as_array().unwrap().len(),
        10
    );

    // Embedding batches match the matrix rows.
    let body = Value::object(vec![("nodes", Value::from(vec![0usize, 5, 89]))]);
    let res = client.post("/embed", &body).unwrap();
    assert_eq!(res.status, 200);
    let rows = res.body.get("embeddings").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 3);
    for (row_val, &node) in rows.iter().zip(&[0usize, 5, 89]) {
        let direct = engine.store().row(node);
        let wire = row_val.as_array().unwrap();
        assert_eq!(wire.len(), direct.len());
        for (w, d) in wire.iter().zip(direct) {
            assert_eq!(w.as_f64().unwrap().to_bits(), d.to_bits());
        }
    }

    // Stats reflect the traffic we just generated, and report the
    // resolved worker-pool configuration.
    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    assert!(stats.body.get("total_requests").unwrap().as_f64().unwrap() >= 90.0);
    let pool = stats.body.get("pool").unwrap();
    assert!(pool.get("threads").unwrap().as_usize().unwrap() >= 1);
    let kind = pool.get("kind").unwrap().as_str().unwrap();
    assert!(["inline", "static", "steal"].contains(&kind), "{kind}");

    server.shutdown();
}

#[test]
fn sharded_server_is_indistinguishable_over_http() {
    use sgla_serve::{RouterConfig, ShardRouter};

    let artifact = trained_artifact();
    let dir = std::env::temp_dir().join(format!("sgla-e2e-sharded-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    artifact.save_sharded(&dir, 4).unwrap();

    let (mono_server, engine) = start_server(artifact);
    let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
    let config = ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        workers: 4,
        ..ServerConfig::default()
    };
    let shard_server = Server::start_backend(Arc::new(router), &config).unwrap();

    let mut mono = HttpClient::connect(mono_server.local_addr()).unwrap();
    let mut shard = HttpClient::connect(shard_server.local_addr()).unwrap();

    // /artifact differs only in the shard count.
    let a_mono = mono.get("/artifact").unwrap().body;
    let a_shard = shard.get("/artifact").unwrap().body;
    for key in [
        "dataset",
        "n",
        "k",
        "dim",
        "seed",
        "weights",
        "format_version",
    ] {
        assert_eq!(a_mono.get(key), a_shard.get(key), "{key}");
    }
    assert_eq!(a_mono.get("shards").unwrap().as_usize(), Some(1));
    assert_eq!(a_shard.get("shards").unwrap().as_usize(), Some(4));

    // Every query endpoint answers byte-identically (the JSON writer
    // is deterministic and scores are bit-identical by construction).
    for node in (0..90).step_by(7) {
        let m = mono.get(&format!("/cluster/{node}")).unwrap();
        let s = shard.get(&format!("/cluster/{node}")).unwrap();
        assert_eq!(m.body, s.body, "cluster {node}");
        let m = mono.get(&format!("/topk/{node}?k=6")).unwrap();
        let s = shard.get(&format!("/topk/{node}?k=6")).unwrap();
        assert_eq!(m.body, s.body, "topk {node}");
    }
    let body = Value::object(vec![("nodes", Value::from(vec![0usize, 45, 89]))]);
    assert_eq!(
        mono.post("/embed", &body).unwrap().body,
        shard.post("/embed", &body).unwrap().body
    );

    // Error paths agree too.
    assert_eq!(shard.get("/cluster/100000").unwrap().status, 400);
    assert_eq!(shard.get("/topk/1?k=0").unwrap().status, 400);

    // /stats reports shard residency.
    let stats = shard.get("/stats").unwrap().body;
    assert_eq!(stats.get("shards").unwrap().as_usize(), Some(4));
    assert_eq!(stats.get("resident_shards").unwrap().as_usize(), Some(4));

    drop(engine);
    mono_server.shutdown();
    shard_server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn approx_mode_metrics_and_stats_reset_over_http() {
    use sgla_serve::IvfConfig;

    let engine = Arc::new(
        QueryEngine::new(
            trained_artifact(),
            EngineConfig {
                index: Some(IvfConfig { nlist: 6, seed: 3 }),
                ..EngineConfig::default()
            },
        )
        .unwrap(),
    );
    let config = ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        workers: 4,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &config).unwrap();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // Full probe over HTTP is byte-identical to the exact endpoint
    // (modulo the mode tag).
    for node in [0usize, 33, 89] {
        let exact = client.get(&format!("/topk/{node}?k=6")).unwrap();
        let approx = client
            .get(&format!("/topk/{node}?k=6&mode=approx&nprobe=6"))
            .unwrap();
        assert_eq!(exact.status, 200);
        assert_eq!(approx.status, 200);
        assert_eq!(exact.body.get("mode").unwrap().as_str(), Some("exact"));
        assert_eq!(approx.body.get("mode").unwrap().as_str(), Some("approx"));
        assert_eq!(
            exact.body.get("neighbors").unwrap(),
            approx.body.get("neighbors").unwrap(),
            "node {node}"
        );
    }
    // Default-nprobe approx answers are well-formed.
    let res = client.get("/topk/5?k=4&mode=approx").unwrap();
    assert_eq!(res.status, 200);
    assert_eq!(
        res.body.get("neighbors").unwrap().as_array().unwrap().len(),
        4
    );
    // Bad parameter combinations are 400s.
    assert_eq!(client.get("/topk/5?mode=frog").unwrap().status, 400);
    assert_eq!(client.get("/topk/5?nprobe=3").unwrap().status, 400);
    assert_eq!(
        client.get("/topk/5?mode=approx&nprobe=x").unwrap().status,
        400
    );

    // /stats carries the index counters.
    let stats = client.get("/stats").unwrap().body;
    let index = stats.get("index").unwrap();
    assert_eq!(index.get("enabled").unwrap().as_bool(), Some(true));
    assert_eq!(index.get("nlist").unwrap().as_usize(), Some(6));
    assert!(index.get("approx_queries").unwrap().as_f64().unwrap() >= 4.0);
    assert!(index.get("rows_scanned").unwrap().as_f64().unwrap() > 0.0);

    // Reset-on-read: the first reset drains the window, a second
    // reset right after reports (almost) nothing, while cumulative
    // totals survive.
    let first = client.get("/stats?reset=true").unwrap().body;
    assert!(first.get("window_requests").unwrap().as_f64().unwrap() >= 8.0);
    let second = client.get("/stats?reset=1").unwrap().body;
    // Only the intervening /stats request itself can be in the window.
    assert!(second.get("window_requests").unwrap().as_f64().unwrap() <= 2.0);
    assert!(second.get("total_requests").unwrap().as_f64().unwrap() >= 8.0);

    // /metrics is a Prometheus text page with the index counters, and
    // the whole page conforms to the text exposition format (TYPE
    // lines, cumulative monotone buckets, +Inf == _count).
    let (status, page) = client.get_text("/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(page.contains("# TYPE sgla_requests_total counter"));
    assert!(page.contains("sgla_requests_total{endpoint=\"topk\"}"));
    assert!(page.contains("sgla_index_enabled 1"));
    assert!(page.contains("sgla_index_rows_scanned_total"));
    sgla_serve::metrics::validate_prometheus(&page)
        .unwrap_or_else(|e| panic!("/metrics not conformant: {e}"));
    assert!(page.contains("# TYPE sgla_pool_threads gauge"));
    // The metrics page itself shows up in endpoint counters, and the
    // client connection stays usable after the text response.
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    server.shutdown();
}

#[test]
fn approx_without_index_is_400_over_http() {
    let (server, _engine) = start_server(trained_artifact());
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let res = client.get("/topk/5?k=4&mode=approx").unwrap();
    assert_eq!(res.status, 400);
    assert!(res
        .body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("index"));
    let stats = client.get("/stats").unwrap().body;
    assert_eq!(
        stats
            .get("index")
            .unwrap()
            .get("enabled")
            .unwrap()
            .as_bool(),
        Some(false)
    );
    server.shutdown();
}

#[test]
fn error_paths_are_typed_http_errors() {
    let (server, _engine) = start_server(trained_artifact());
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // Out-of-range node.
    let res = client.get("/cluster/100000").unwrap();
    assert_eq!(res.status, 400);
    assert!(res.body.get("error").is_some());

    // Bad node id.
    assert_eq!(client.get("/cluster/notanumber").unwrap().status, 400);
    // Bad k.
    assert_eq!(client.get("/topk/1?k=frog").unwrap().status, 400);
    // k = 0.
    assert_eq!(client.get("/topk/1?k=0").unwrap().status, 400);
    // Unknown route.
    assert_eq!(client.get("/nope").unwrap().status, 404);
    // Wrong method on a known route.
    let res = client.post("/cluster/1", &Value::Null).unwrap();
    assert_eq!(res.status, 405);
    // Malformed embed bodies.
    let res = client
        .post("/embed", &Value::from("not an object"))
        .unwrap();
    assert_eq!(res.status, 400);
    let res = client
        .post(
            "/embed",
            &Value::object(vec![("nodes", Value::from(vec![-1.5_f64]))]),
        )
        .unwrap();
    assert_eq!(res.status, 400);

    // The connection survives all those errors (keep-alive) and still
    // serves good requests.
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    server.shutdown();
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let (server, engine) = start_server(trained_artifact());
    let addr = server.local_addr();
    let mut handles = Vec::new();
    for t in 0..8usize {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            for i in 0..30usize {
                let node = (t * 13 + i * 7) % 90;
                let res = client.get(&format!("/topk/{node}?k=5")).unwrap();
                assert_eq!(res.status, 200);
                let direct = engine.top_k_similar(node, 5).unwrap();
                let neighbors = res.body.get("neighbors").unwrap().as_array().unwrap();
                let got: Vec<usize> = neighbors
                    .iter()
                    .map(|v| v.get("node").unwrap().as_usize().unwrap())
                    .collect();
                let want: Vec<usize> = direct.iter().map(|nb| nb.node).collect();
                assert_eq!(got, want, "node {node}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}

#[test]
fn chunked_transfer_encoding_rejected_explicitly() {
    use std::io::{Read, Write};
    let (server, _engine) = start_server(trained_artifact());
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    // A chunked body the server does not implement must be rejected
    // up front, not half-read into a desynced keep-alive stream.
    stream
        .write_all(
            b"POST /embed HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n2\r\n{}\r\n0\r\n\r\n",
        )
        .unwrap();
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    let head = String::from_utf8_lossy(&response);
    assert!(head.starts_with("HTTP/1.1 400"), "got: {head:.80}");
    assert!(head.contains("transfer-encoding"), "got: {head:.200}");
    server.shutdown();
}

#[test]
fn oversized_header_section_rejected() {
    use std::io::{Read, Write};
    let (server, _engine) = start_server(trained_artifact());
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    // Stream far more header bytes than the 8 KiB cap; the server
    // must answer 400 instead of buffering without bound.
    stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    let filler = b"x-junk: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
    let mut rejected = false;
    let mut response = Vec::new();
    for _ in 0..4096 {
        if stream.write_all(filler).is_err() {
            // Server already closed on us mid-stream: also a rejection.
            rejected = true;
            break;
        }
    }
    if !rejected {
        let _ = stream.write_all(b"\r\n");
        let _ = stream.read_to_end(&mut response);
        let head = String::from_utf8_lossy(&response);
        assert!(head.starts_with("HTTP/1.1 400"), "got: {head:.60}");
    }
    server.shutdown();
}

#[test]
fn graceful_shutdown_closes_cleanly() {
    let (server, _engine) = start_server(trained_artifact());
    let addr = server.local_addr();
    let mut client = HttpClient::connect(addr).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    // An idle keep-alive client must not stall shutdown (workers poll
    // the stop flag between requests).
    let started = std::time::Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "shutdown stalled {:?} on an idle keep-alive connection",
        started.elapsed()
    );
    // New connections are refused or die immediately after shutdown.
    let alive = HttpClient::connect(addr)
        .and_then(|mut c| c.get("/healthz"))
        .is_ok();
    assert!(!alive, "server still answering after shutdown");
}

#[test]
fn live_reload_hot_swaps_the_updated_artifact() {
    // The operator flow end to end: serve an artifact from disk,
    // update the file behind the server (sgla-serve update would do
    // this), POST /reload, and observe the swapped state — with the
    // updated answers bit-identical to a fresh load of the new file.
    let mvag = mvag_data::toy_mvag(60, 2, 31);
    let mut config = TrainConfig::default();
    config.embed.dim = 6;
    let (artifact, views) = Artifact::train_with_views(&mvag, &config).unwrap();

    let dir = std::env::temp_dir().join(format!("sgla-e2e-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("live.sgla");
    artifact.save(&path).unwrap();

    let loader_path = path.clone();
    let loader: sgla_serve::BackendLoader = Box::new(move || {
        let artifact = Artifact::load(&loader_path)?;
        Ok(
            Arc::new(QueryEngine::new(artifact, EngineConfig::default())?)
                as Arc<dyn sgla_serve::QueryBackend>,
        )
    });
    let server_config = ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        workers: 4,
        ..ServerConfig::default()
    };
    let server = Server::start_reloadable(loader, &server_config).unwrap();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // Initial state: n = 60, update_count = 0; node 60 does not exist.
    let meta = client.get("/artifact").unwrap();
    assert_eq!(meta.body.get("n").unwrap().as_usize(), Some(60));
    assert_eq!(meta.body.get("update_count").unwrap().as_usize(), Some(0));
    assert_eq!(client.get("/cluster/60").unwrap().status, 400);

    // Reloading without a changed file is a harmless no-op swap.
    let noop = client.post("/reload", &Value::object(vec![])).unwrap();
    assert_eq!(noop.status, 200);
    assert_eq!(noop.body.get("n").unwrap().as_usize(), Some(60));

    // Update the artifact on disk (append 4 nodes), then reload.
    let delta = mvag_graph::generators::random_append_delta(
        &mvag,
        &mvag_graph::generators::AppendConfig {
            added_nodes: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let updated = artifact
        .update(&views, &mvag, &delta, &config)
        .unwrap()
        .artifact;
    updated.save(&path).unwrap();
    let reloaded = client.post("/reload", &Value::object(vec![])).unwrap();
    assert_eq!(reloaded.status, 200);
    assert_eq!(reloaded.body.get("n").unwrap().as_usize(), Some(64));
    assert_eq!(
        reloaded.body.get("previous_n").unwrap().as_usize(),
        Some(60)
    );
    assert_eq!(
        reloaded.body.get("update_count").unwrap().as_usize(),
        Some(1)
    );

    // Served answers now come from the updated artifact, bit-identical
    // to a fresh engine over it — including the appended nodes.
    let fresh = QueryEngine::new(updated, EngineConfig::default()).unwrap();
    for node in [0usize, 35, 60, 63] {
        let wire = client.get(&format!("/topk/{node}?k=5")).unwrap();
        assert_eq!(wire.status, 200);
        let direct = fresh.top_k_similar(node, 5).unwrap();
        let neighbors = wire.body.get("neighbors").unwrap().as_array().unwrap();
        assert_eq!(neighbors.len(), direct.len());
        for (w, d) in neighbors.iter().zip(&direct) {
            assert_eq!(w.get("node").unwrap().as_usize(), Some(d.node));
            assert_eq!(
                w.get("score").unwrap().as_f64().unwrap().to_bits(),
                d.score.to_bits()
            );
        }
    }

    // A broken file on disk fails the reload and keeps the old
    // backend serving.
    std::fs::write(&path, b"garbage").unwrap();
    let failed = client.post("/reload", &Value::object(vec![])).unwrap();
    assert_eq!(failed.status, 503);
    assert_eq!(
        client
            .get("/artifact")
            .unwrap()
            .body
            .get("n")
            .unwrap()
            .as_usize(),
        Some(64)
    );
    assert_eq!(client.get("/topk/63?k=3").unwrap().status, 200);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_response_carries_a_request_id() {
    let (server, _engine) = start_server(trained_artifact());
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    let id_of = |res: &sgla_serve::HttpResponse| {
        let id = res
            .request_id
            .clone()
            .unwrap_or_else(|| panic!("no x-request-id on status {}", res.status));
        assert!(id.starts_with("req-") && id.len() == 20, "got {id}");
        id
    };

    // Success and every error class: 200, 400, 404, 405.
    let ok = id_of(&client.get("/healthz").unwrap());
    let bad = client.get("/cluster/notanumber").unwrap();
    assert_eq!(bad.status, 400);
    id_of(&bad);
    let missing = client.get("/nope").unwrap();
    assert_eq!(missing.status, 404);
    id_of(&missing);
    let wrong_method = client.post("/cluster/1", &Value::Null).unwrap();
    assert_eq!(wrong_method.status, 405);
    id_of(&wrong_method);
    let no_reload = client.post("/reload", &Value::object(vec![])).unwrap();
    assert_eq!(no_reload.status, 400);
    id_of(&no_reload);

    // Ids are fresh per request.
    assert_ne!(ok, id_of(&client.get("/healthz").unwrap()));

    // Even a request the parser rejects outright gets one.
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut response = Vec::new();
        let _ = stream.read_to_end(&mut response);
        let head = String::from_utf8_lossy(&response);
        assert!(head.starts_with("HTTP/1.1 400"), "got: {head:.80}");
        assert!(head.to_ascii_lowercase().contains("x-request-id: req-"));
    }
    server.shutdown();

    // A failed hot-reload (503) is stamped too: the loader below works
    // once at startup, then refuses.
    use std::sync::atomic::{AtomicBool, Ordering};
    let armed = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&armed);
    let loader: sgla_serve::BackendLoader = Box::new(move || {
        if flag.swap(true, Ordering::SeqCst) {
            return Err(sgla_serve::ServeError::Server("loader down".into()));
        }
        let engine = QueryEngine::new(trained_artifact(), EngineConfig::default())?;
        Ok(Arc::new(engine) as Arc<dyn sgla_serve::QueryBackend>)
    });
    let config = ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        workers: 2,
        ..ServerConfig::default()
    };
    let reloadable = Server::start_reloadable(loader, &config).unwrap();
    let mut client = HttpClient::connect(reloadable.local_addr()).unwrap();
    let failed = client.post("/reload", &Value::object(vec![])).unwrap();
    assert_eq!(failed.status, 503);
    id_of(&failed);
    reloadable.shutdown();
}

#[test]
fn reload_on_non_reloadable_server_is_400() {
    let (server, _engine) = start_server(trained_artifact());
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let res = client.post("/reload", &Value::object(vec![])).unwrap();
    assert_eq!(res.status, 400);
    // Wrong method on /reload is 405.
    assert_eq!(client.get("/reload").unwrap().status, 405);
    server.shutdown();
}

//! Crash-consistency battery for the sharded storage engine.
//!
//! Every multi-file layout mutation (`compact_sharded`,
//! `append_sharded`) promises: a process killed at *any* point leaves
//! the on-disk layout fully loadable as either the complete old state
//! or the complete new state — never a mix — and a plain retry
//! converges to the committed state with bit-identical answers.
//!
//! The harness measures a mutation's total filesystem cost once with
//! an effectively unlimited [`FailpointWriter`] budget, then replays
//! the very same mutation on a fresh copy of the layout at a sweep of
//! budgets below that cost. Each budget kills the writer at a
//! different boundary: mid shard file (torn write), between files,
//! right before the manifest rename, right after it (during
//! best-effort cleanup). After every simulated crash the test opens a
//! [`ShardRouter`] over the wreckage, queries it, and then finishes
//! the interrupted job with the real [`FsWriter`].
//!
//! A final end-to-end test proves the serving-layer contract: a torn
//! compaction under a live reloadable server leaves `POST /reload`
//! returning the *old* artifact (clean rollback), and a completed
//! compaction swaps the purged one in.

use mvag_data::json::Value;
use mvag_data::manifest::{ShardEntry, ShardManifest};
use mvag_data::{FailpointWriter, FsWriter};
use mvag_graph::{MvagDelta, ViewDelta};
use mvag_sparse::DenseMatrix;
use sgla_serve::{
    append_sharded, compact_sharded, Artifact, HttpClient, QueryBackend, RouterConfig, Server,
    ServerConfig, ShardRouter, TrainConfig,
};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

const N: usize = 36;
const SHARDS: usize = 3;
/// Tombstones span shards 0 and 1; shard 2 (the tail) stays clean so
/// both sweeps run against the same golden layout.
const DEAD: [usize; 3] = [2, 7, 13];

/// Training dominates wall-clock; every layout copy re-shards one
/// shared artifact.
fn golden() -> &'static Artifact {
    static SHARED: OnceLock<Artifact> = OnceLock::new();
    SHARED.get_or_init(|| {
        let mvag = mvag_data::toy_mvag(N, 3, 29);
        let mut config = TrainConfig::default();
        config.embed.dim = 6;
        let mut artifact = Artifact::train(&mvag, &config).unwrap();
        artifact.tombstones = DEAD.to_vec();
        artifact
    })
}

/// A fresh sharded copy of the golden artifact under a unique dir.
fn layout(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sgla-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    golden().save_sharded(&dir, SHARDS).unwrap();
    dir
}

/// Opens the layout and proves it is coherent: the manifest loads and
/// validates, its `n` is one of the two legal states, the router
/// serves it, and a cross-shard query answers. Returns the observed
/// `n`.
fn assert_loadable(dir: &std::path::Path, legal_n: &[usize]) -> usize {
    let manifest = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
    manifest.validate().unwrap();
    assert!(
        legal_n.contains(&manifest.n),
        "manifest n = {} is neither old nor new ({legal_n:?})",
        manifest.n
    );
    let router = ShardRouter::open(dir, RouterConfig::default()).unwrap();
    assert_eq!(QueryBackend::meta(&router).n, manifest.n);
    // Fans out to every shard, so a missing or half-written live file
    // would surface here.
    let neighbors = router.top_k_similar(0, 5).unwrap();
    assert!(!neighbors.is_empty());
    router.embed_batch(&[0]).unwrap();
    manifest.n
}

/// Answers that must be bit-identical across every recovery path.
fn fingerprint(dir: &std::path::Path, probes: &[usize]) -> Vec<(usize, u64, Vec<u64>, Vec<u64>)> {
    let router = ShardRouter::open(dir, RouterConfig::default()).unwrap();
    probes
        .iter()
        .map(|&node| {
            let info = router.cluster_of(node).unwrap();
            let embed: Vec<u64> = router.embed_batch(&[node]).unwrap()[0]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let topk: Vec<u64> = router
                .top_k_similar(node, 6)
                .unwrap()
                .iter()
                .flat_map(|nb| [nb.node as u64, nb.score.to_bits()])
                .collect();
            (info.cluster, info.centroid_dist.to_bits(), embed, topk)
        })
        .collect()
}

/// The budget sweep: 0, 1, 2, an even stride across the run, and the
/// last few operations before (and at) the full cost.
fn budgets(cost: usize) -> Vec<usize> {
    let mut budgets: Vec<usize> = (0..cost).step_by((cost / 24).max(1)).collect();
    budgets.extend([
        1,
        2,
        cost.saturating_sub(2),
        cost.saturating_sub(1),
        cost,
        cost + 10,
    ]);
    budgets.sort_unstable();
    budgets.dedup();
    budgets
}

#[test]
fn compaction_survives_a_kill_at_every_point() {
    // Measure the full cost and capture the committed reference state.
    let dir = layout("compact-ref");
    let mut probe = FailpointWriter::new(1 << 30);
    let stats = compact_sharded(&dir, &mut probe).unwrap();
    assert!(!probe.died());
    let cost = (1 << 30) - probe.remaining();
    assert!(stats.purged == DEAD.len() && cost > 4, "cost = {cost}");
    let new_n = N - DEAD.len();
    let probes = [0usize, 10, new_n - 1];
    let reference = fingerprint(&dir, &probes);
    std::fs::remove_dir_all(&dir).ok();

    for budget in budgets(cost) {
        let dir = layout(&format!("compact-{budget}"));
        let mut writer = FailpointWriter::new(budget);
        let result = compact_sharded(&dir, &mut writer);

        // Old-or-new, never a mix: the manifest rename is the one
        // commit point, so the result tells us exactly which side of
        // it the crash landed on.
        let n_now = assert_loadable(&dir, &[N, new_n]);
        if result.is_ok() {
            assert_eq!(n_now, new_n, "budget {budget}: Ok but old layout");
        } else {
            assert_eq!(n_now, N, "budget {budget}: Err but manifest committed");
        }

        // Recovery: a plain retry finishes the job (a no-op when the
        // crash hit the post-commit cleanup) and converges to answers
        // bit-identical to the uninterrupted run.
        compact_sharded(&dir, &mut FsWriter).unwrap();
        let manifest = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
        assert_eq!(manifest.n, new_n, "budget {budget}: recovery lost rows");
        assert_eq!(
            fingerprint(&dir, &probes),
            reference,
            "budget {budget}: recovered answers differ"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn tail_delta() -> MvagDelta {
    MvagDelta::append(
        2,
        vec![
            ViewDelta::Edges(vec![(N, 30, 1.0), (N + 1, N, 1.5), (N + 1, 32, 0.5)]),
            ViewDelta::Rows(DenseMatrix::zeros(2, 4)),
        ],
        None,
    )
}

#[test]
fn append_survives_a_kill_at_every_point() {
    let delta = tail_delta();
    let new_n = N + 2;

    let dir = layout("append-ref");
    let mut probe = FailpointWriter::new(1 << 30);
    let stats = append_sharded(&dir, &delta, &mut probe).unwrap();
    assert!(!probe.died());
    let cost = (1 << 30) - probe.remaining();
    assert!(stats.added == 2 && cost > 4, "cost = {cost}");
    let probes = [0usize, 20, N, N + 1];
    let reference = fingerprint(&dir, &probes);
    std::fs::remove_dir_all(&dir).ok();

    for budget in budgets(cost) {
        let dir = layout(&format!("append-{budget}"));
        let mut writer = FailpointWriter::new(budget);
        let result = append_sharded(&dir, &delta, &mut writer);

        let n_now = assert_loadable(&dir, &[N, new_n]);
        if result.is_ok() {
            assert_eq!(n_now, new_n, "budget {budget}: Ok but old layout");
        } else {
            assert_eq!(n_now, N, "budget {budget}: Err but manifest committed");
        }

        // Recovery for an append is replay-if-uncommitted: the failed
        // run left the old layout, so the delta applies exactly once.
        if result.is_err() {
            append_sharded(&dir, &delta, &mut FsWriter).unwrap();
        }
        let manifest = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
        assert_eq!(
            manifest.n, new_n,
            "budget {budget}: recovery lost the append"
        );
        assert_eq!(
            fingerprint(&dir, &probes),
            reference,
            "budget {budget}: recovered answers differ"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn reload_rolls_back_cleanly_after_a_torn_compaction() {
    let dir = layout("reload");
    let loader_dir = dir.clone();
    let loader: sgla_serve::BackendLoader = Box::new(move || {
        Ok(
            Arc::new(ShardRouter::open(&loader_dir, RouterConfig::default())?)
                as Arc<dyn QueryBackend>,
        )
    });
    let server_config = ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start_reloadable(loader, &server_config).unwrap();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    let meta = client.get("/artifact").unwrap();
    assert_eq!(meta.body.get("n").unwrap().as_usize(), Some(N));

    // A compaction torn on its very first shard write strands a
    // half-written generational file but never touches the committed
    // manifest: reload serves the old, untombstone-purged layout.
    let mut torn = FailpointWriter::new(1);
    assert!(compact_sharded(&dir, &mut torn).is_err());
    assert!(torn.died());
    let rolled_back = client.post("/reload", &Value::object(vec![])).unwrap();
    assert_eq!(rolled_back.status, 200);
    assert_eq!(rolled_back.body.get("n").unwrap().as_usize(), Some(N));
    // Tombstoned ids still answer NotFound-style 404s on the old state.
    assert_eq!(
        client.get(&format!("/cluster/{}", DEAD[0])).unwrap().status,
        404
    );

    // Finishing the compaction (the retry overwrites the torn file)
    // and reloading swaps the purged layout in.
    compact_sharded(&dir, &mut FsWriter).unwrap();
    let swapped = client.post("/reload", &Value::object(vec![])).unwrap();
    assert_eq!(swapped.status, 200);
    assert_eq!(
        swapped.body.get("n").unwrap().as_usize(),
        Some(N - DEAD.len())
    );
    assert_eq!(swapped.body.get("previous_n").unwrap().as_usize(), Some(N));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The golden artifact written as a *legacy v4* sharded layout: flat
/// packed shard bodies (no section table) and a manifest declaring
/// format version 4 — the state of a deployment that predates v5.
fn v4_layout(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sgla-crash-v4-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let golden = golden();
    let per = N / SHARDS;
    let mut entries = Vec::with_capacity(SHARDS);
    for i in 0..SHARDS {
        let (row_start, row_end) = (i * per, (i + 1) * per);
        let shard = golden.shard(row_start, row_end).unwrap();
        let encoded = shard.encode_v4().unwrap();
        let file = Artifact::shard_file_name(i);
        std::fs::write(dir.join(&file), encoded.as_ref()).unwrap();
        entries.push(ShardEntry {
            file,
            row_start,
            row_end,
            bytes: encoded.len() as u64,
            crc32: mvag_data::codec::crc32(encoded.as_ref()),
            tombstones: shard.tombstones.len(),
            ..Default::default()
        });
    }
    let manifest = ShardManifest {
        dataset: golden.meta.dataset.clone(),
        n: N,
        k: golden.meta.k,
        dim: golden.meta.dim,
        seed: golden.meta.seed,
        artifact_format_version: 4,
        update_count: golden.meta.update_count,
        compaction_count: golden.meta.compaction_count,
        id_map: None,
        shards: entries,
    };
    manifest.save(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
    dir
}

/// Compaction doubles as the v4 → v5 migration path: it reads legacy
/// shards owned and rewrites them as v5. A kill at any write boundary
/// must leave either the complete v4 layout or the complete v5 one —
/// and once committed, every shard file must serve memory-mapped.
#[test]
fn torn_compaction_migrates_v4_shards_to_v5_or_not_at_all() {
    use sgla_serve::store::{open_mapped, MmapMode};

    // Reference: an uninterrupted compaction of the v4 seed.
    let dir = v4_layout("ref");
    for i in 0..SHARDS {
        assert!(
            open_mapped(&dir.join(Artifact::shard_file_name(i))).is_err(),
            "v4 shard {i} must not be mappable"
        );
    }
    let mut probe = FailpointWriter::new(1 << 30);
    compact_sharded(&dir, &mut probe).unwrap();
    let cost = (1 << 30) - probe.remaining();
    let new_n = N - DEAD.len();
    let probes = [0usize, 10, new_n - 1];
    let reference = fingerprint(&dir, &probes);
    std::fs::remove_dir_all(&dir).ok();

    for budget in budgets(cost) {
        let dir = v4_layout(&format!("b{budget}"));
        let mut writer = FailpointWriter::new(budget);
        let result = compact_sharded(&dir, &mut writer);

        // Old-or-new holds across the *format* boundary too: the
        // wreckage loads as either the v4 or the v5 layout.
        let n_now = assert_loadable(&dir, &[N, new_n]);
        let manifest = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
        if result.is_ok() {
            assert_eq!(n_now, new_n, "budget {budget}: Ok but old layout");
        } else {
            assert_eq!(n_now, N, "budget {budget}: Err but manifest committed");
            assert_eq!(
                manifest.artifact_format_version, 4,
                "budget {budget}: version bumped without commit"
            );
        }

        // Retry converges; the committed layout is v5 through and
        // through: manifest version, per-file mapped opens, and a
        // router forced to `--mmap on` answering bit-identically to
        // the owned reference.
        compact_sharded(&dir, &mut FsWriter).unwrap();
        let manifest = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
        assert_eq!(manifest.artifact_format_version, 5, "budget {budget}");
        assert_eq!(fingerprint(&dir, &probes), reference, "budget {budget}");
        if sgla_serve::store::MMAP_SUPPORTED {
            for (i, entry) in manifest.shards.iter().enumerate() {
                assert!(
                    open_mapped(&dir.join(&entry.file)).is_ok(),
                    "budget {budget}: migrated shard {i} not mappable"
                );
            }
            let mapped = ShardRouter::open(
                &dir,
                RouterConfig {
                    mmap: MmapMode::On,
                    ..RouterConfig::default()
                },
            )
            .unwrap();
            let info = mapped.cluster_of(probes[1]).unwrap();
            assert_eq!(
                (info.cluster, info.centroid_dist.to_bits()),
                (reference[1].0, reference[1].1),
                "budget {budget}: mapped answers diverge after migration"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! End-to-end tests for the evented (epoll) backend: byte-identity
//! against the threaded oracle, idle/slowloris reaping, malformed and
//! torn requests, mid-write disconnects, load shedding at the
//! connection cap, pipelining, and concurrent keep-alive load — the
//! overload and failure behavior the readiness loop makes defined.

#![cfg(target_os = "linux")]

use mvag_data::json::Value;
use sgla_serve::{
    Artifact, EngineConfig, HttpClient, QueryEngine, ServeBackend, Server, ServerConfig,
    TrainConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn trained_artifact() -> Artifact {
    // Training dominates test wall-clock in debug builds; every test
    // serves clones of one shared artifact.
    static SHARED: std::sync::OnceLock<Artifact> = std::sync::OnceLock::new();
    SHARED
        .get_or_init(|| {
            let mvag = mvag_data::toy_mvag(90, 3, 19);
            let mut config = TrainConfig::default();
            config.embed.dim = 8;
            Artifact::train(&mvag, &config).unwrap()
        })
        .clone()
}

fn start(backend: ServeBackend, configure: impl FnOnce(&mut ServerConfig)) -> Server {
    let engine = Arc::new(QueryEngine::new(trained_artifact(), EngineConfig::default()).unwrap());
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        backend,
        workers: 4,
        ..ServerConfig::default()
    };
    configure(&mut config);
    Server::start(engine, &config).unwrap()
}

/// Reads exactly one HTTP response (head + `content-length` body) off
/// the stream, returning the raw bytes.
fn read_response(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("eof inside head after {} bytes", raw.len()),
                ))
            }
            _ => raw.push(byte[0]),
        }
    }
    let head = String::from_utf8_lossy(&raw).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(String::from)
        })
        .and_then(|v| v.parse().ok())
        .expect("response without content-length");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    raw.extend_from_slice(&body);
    Ok(raw)
}

/// One raw request/response round trip on a fresh connection.
fn raw_roundtrip(addr: SocketAddr, request: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request).unwrap();
    read_response(&mut stream).unwrap()
}

/// Blanks the value of the `x-request-id` header (the one legitimately
/// server-specific byte sequence) so responses can be compared
/// byte-for-byte across backends.
fn normalize_request_id(raw: &[u8]) -> Vec<u8> {
    let text = String::from_utf8_lossy(raw);
    let mut out = String::with_capacity(text.len());
    for (i, line) in text.split("\r\n").enumerate() {
        if i > 0 {
            out.push_str("\r\n");
        }
        if line.starts_with("x-request-id: req-") {
            out.push_str("x-request-id: req-<normalized>");
        } else {
            out.push_str(line);
        }
    }
    out.into_bytes()
}

/// `SO_LINGER { on, 0 }`: closing the socket sends RST instead of FIN
/// (std's `set_linger` is still unstable).
fn set_linger_zero(stream: &TcpStream) {
    use std::os::unix::io::AsRawFd;
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const std::ffi::c_void,
            len: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    let ret = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&raw const linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        )
    };
    assert_eq!(
        ret,
        0,
        "setsockopt(SO_LINGER): {}",
        std::io::Error::last_os_error()
    );
}

fn request_id_of(raw: &[u8]) -> Option<String> {
    String::from_utf8_lossy(raw)
        .split("\r\n")
        .find_map(|l| l.strip_prefix("x-request-id: ").map(String::from))
}

/// The tentpole's correctness bar: the two backends produce
/// byte-identical responses (modulo the request id) for the same
/// requests — success paths, error paths, and keep-alive semantics.
#[test]
fn evented_matches_threaded_byte_for_byte() {
    let threaded = start(ServeBackend::Threaded, |_| {});
    let evented = start(ServeBackend::Evented, |_| {});
    let requests: Vec<Vec<u8>> = vec![
        b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n".to_vec(),
        b"GET /artifact HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /cluster/17 HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /topk/44?k=7 HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /topk/3 HTTP/1.1\r\nconnection: close\r\n\r\n".to_vec(),
        b"GET /cluster/99999 HTTP/1.1\r\n\r\n".to_vec(), // out of range: 400
        b"GET /no/such/path HTTP/1.1\r\n\r\n".to_vec(),  // 404
        b"DELETE /healthz HTTP/1.1\r\n\r\n".to_vec(),    // 405
        {
            let body = Value::object(vec![("nodes", Value::from(vec![0usize, 5, 89]))])
                .to_string_compact();
            format!(
                "POST /embed HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            )
            .into_bytes()
        },
    ];
    for request in &requests {
        let from_threaded = raw_roundtrip(threaded.local_addr(), request);
        let from_evented = raw_roundtrip(evented.local_addr(), request);
        assert_eq!(
            normalize_request_id(&from_threaded),
            normalize_request_id(&from_evented),
            "backends disagree on {:?}",
            String::from_utf8_lossy(request)
        );
    }
    threaded.shutdown();
    evented.shutdown();
}

/// A client that connects and never sends a byte is reaped within the
/// idle timeout (plus one sweep interval) — the slowloris guard.
#[test]
fn silent_connection_is_reaped() {
    let server = start(ServeBackend::Evented, |c| {
        c.read_timeout = Duration::from_millis(300);
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let mut buf = [0u8; 64];
    // A silent idler gets no response bytes, just a close.
    let n = stream.read(&mut buf).unwrap();
    assert_eq!(n, 0, "expected a quiet close, got {:?}", &buf[..n]);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "reap took {:?}",
        started.elapsed()
    );
    server.shutdown();
}

/// A half-sent request gets a `408` with an `x-request-id` stamped,
/// then the connection closes.
#[test]
fn torn_request_gets_408_with_request_id() {
    let server = start(ServeBackend::Evented, |c| {
        c.read_timeout = Duration::from_millis(300);
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"GET /healthz HT").unwrap(); // torn mid-request-line
    let raw = read_response(&mut stream).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
        "{text}"
    );
    assert!(
        request_id_of(&raw).is_some_and(|id| id.starts_with("req-")),
        "{text}"
    );
    // After the 408 the server closes its end.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    server.shutdown();
}

/// A malformed request gets an immediate `400` with an `x-request-id`,
/// same contract as the threaded backend.
#[test]
fn malformed_request_gets_400_with_request_id() {
    let server = start(ServeBackend::Evented, |_| {});
    let raw = raw_roundtrip(server.local_addr(), b"nonsense\r\n\r\n");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 400 Bad Request\r\n"), "{text}");
    assert!(text.contains("malformed request line"), "{text}");
    assert!(request_id_of(&raw).is_some(), "{text}");
    server.shutdown();
}

/// The loop survives peers that vanish mid-exchange (RST / EPIPE /
/// ECONNRESET): later requests on fresh connections still work.
#[test]
fn loop_survives_abrupt_disconnects() {
    let server = start(ServeBackend::Evented, |_| {});
    for _ in 0..8 {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // SO_LINGER 0: closing sends RST instead of FIN, so the
        // server sees ECONNRESET on its next read/write.
        set_linger_zero(&stream);
        stream
            .write_all(b"GET /topk/10?k=5 HTTP/1.1\r\n\r\n")
            .unwrap();
        drop(stream); // RST while the request may still be computing
    }
    // The loop must still be serving.
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    server.shutdown();
}

/// Beyond `max_connections` open connections, new accepts are shed
/// with a best-effort `503` and closed; capacity frees up again when
/// an occupant leaves.
#[test]
fn connection_cap_sheds_with_503() {
    let server = start(ServeBackend::Evented, |c| {
        c.max_connections = 2;
    });
    // Two occupants, verified live with a request each.
    let mut occupants = Vec::new();
    for _ in 0..2 {
        let mut c = HttpClient::connect(server.local_addr()).unwrap();
        assert_eq!(c.get("/healthz").unwrap().status, 200);
        occupants.push(c);
    }
    // The third connection is shed.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let raw = read_response(&mut stream).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
        "{text}"
    );
    assert!(text.contains("connection capacity"), "{text}");
    // Shedding is visible on /stats via an occupant's connection.
    let stats = occupants[0].get("/stats").unwrap();
    let conns = stats.body.get("connections").unwrap();
    assert!(conns.get("shed").unwrap().as_usize().unwrap() >= 1);
    assert_eq!(conns.get("open").unwrap().as_usize(), Some(2));
    // An occupant leaving frees a slot.
    drop(occupants.pop());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut c = HttpClient::connect(server.local_addr()).unwrap();
        match c.get("/healthz") {
            Ok(r) if r.status == 200 => break,
            _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            other => panic!("slot never freed: {other:?}"),
        }
    }
    server.shutdown();
}

/// Two requests written in one packet come back as two in-order
/// responses on the same connection (pipelining via the leftover
/// re-parse after each response).
#[test]
fn pipelined_requests_answer_in_order() {
    let server = start(ServeBackend::Evented, |_| {});
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /cluster/1 HTTP/1.1\r\n\r\nGET /cluster/2 HTTP/1.1\r\n\r\n")
        .unwrap();
    let first = read_response(&mut stream).unwrap();
    let second = read_response(&mut stream).unwrap();
    let first_id = request_id_of(&first).unwrap();
    let second_id = request_id_of(&second).unwrap();
    assert_ne!(
        first_id, second_id,
        "each pipelined request gets its own id"
    );
    assert!(String::from_utf8_lossy(&first).starts_with("HTTP/1.1 200 OK\r\n"));
    assert!(String::from_utf8_lossy(&second).starts_with("HTTP/1.1 200 OK\r\n"));
    server.shutdown();
}

/// Many keep-alive clients at once — far more connections than
/// executor threads — all served correctly, with the open-connection
/// gauge seeing them and every answer matching the direct engine call.
#[test]
fn concurrent_keep_alive_clients() {
    const CLIENTS: usize = 48;
    const ROUNDS: usize = 4;
    let engine = Arc::new(QueryEngine::new(trained_artifact(), EngineConfig::default()).unwrap());
    let config = ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        backend: ServeBackend::Evented,
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &config).unwrap();
    let addr = server.local_addr();
    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                barrier.wait();
                for round in 0..ROUNDS {
                    let node = (i * 7 + round * 13) % 90;
                    let res = client.get(&format!("/topk/{node}?k=5")).unwrap();
                    assert_eq!(res.status, 200);
                    let direct = engine.top_k_similar(node, 5).unwrap();
                    let wire = res.body.get("neighbors").unwrap().as_array().unwrap();
                    assert_eq!(wire.len(), direct.len());
                    for (got, want) in wire.iter().zip(&direct) {
                        assert_eq!(got.get("node").unwrap().as_usize(), Some(want.node));
                    }
                }
                // Every client holds its connection across this
                // barrier, so one of them can observe all of them on
                // the open-connections gauge.
                barrier.wait();
                if i == 0 {
                    let stats = client.get("/stats").unwrap();
                    let open = stats
                        .body
                        .get("connections")
                        .unwrap()
                        .get("open")
                        .unwrap()
                        .as_usize()
                        .unwrap();
                    assert!(open >= CLIENTS, "only {open} connections open");
                }
                barrier.wait(); // nobody disconnects before the check
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}

/// `/metrics` carries the `sgla_conn_*` families and the whole page
/// still passes the Prometheus conformance check.
#[test]
fn conn_metrics_render_and_validate() {
    let server = start(ServeBackend::Evented, |_| {});
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    let (status, page) = client.get_text("/metrics").unwrap();
    assert_eq!(status, 200);
    for family in [
        "sgla_conn_open",
        "sgla_conn_accepts_total",
        "sgla_conn_timeouts_total",
        "sgla_conn_shed_total",
        "sgla_conn_read_buf_hwm_bytes",
        "sgla_conn_write_buf_hwm_bytes",
    ] {
        assert!(page.contains(&format!("# HELP {family} ")), "{family}");
        assert!(page.contains(&format!("\n{family} ")), "{family}");
    }
    sgla_serve::metrics::validate_prometheus(&page).unwrap();
    // The read-buffer high-water mark saw our requests.
    let conns_open: Vec<&str> = page
        .lines()
        .filter(|l| l.starts_with("sgla_conn_open "))
        .collect();
    assert_eq!(conns_open.len(), 1);
    server.shutdown();
}

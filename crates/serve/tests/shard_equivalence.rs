//! Property test: the sharded serving path is **bit-identical** to the
//! monolithic one.
//!
//! One artifact is trained once; each proptest case picks a shard
//! count, a residency budget, and a query mix, saves the sharded
//! layout, opens a [`ShardRouter`] over it, and checks every answer —
//! neighbour ids, `f64` score bits, cluster assignments, embedding
//! rows — against the monolithic [`QueryEngine`] on the very same
//! artifact. This is the exact-equivalence guarantee the fan-out/merge
//! logic is built around: row-range sharding must be invisible to
//! clients.

use proptest::prelude::*;
use sgla_serve::{Artifact, EngineConfig, QueryEngine, RouterConfig, ShardRouter, TrainConfig};
use std::sync::{Arc, OnceLock};

const N: usize = 72;

/// Training dominates wall-clock; every case reuses one artifact and
/// one monolithic reference engine.
fn reference() -> &'static (Artifact, QueryEngine) {
    static SHARED: OnceLock<(Artifact, QueryEngine)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let mvag = mvag_data::toy_mvag(N, 3, 23);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        let artifact = Artifact::train(&mvag, &config).unwrap();
        let engine = QueryEngine::new(artifact.clone(), EngineConfig::default()).unwrap();
        (artifact, engine)
    })
}

/// A router over a fresh sharded copy of the reference artifact.
fn router_with(shards: usize, max_resident: usize, case: u64) -> (ShardRouter, std::path::PathBuf) {
    let (artifact, _) = reference();
    let dir = std::env::temp_dir().join(format!(
        "sgla-shard-equiv-{shards}-{max_resident}-{case}-{:?}",
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    artifact.save_sharded(&dir, shards).unwrap();
    let router = ShardRouter::open(
        &dir,
        RouterConfig {
            max_resident,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    (router, dir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_topk_bit_identical_to_monolithic(
        shards in 1usize..8,
        max_resident in 0usize..4,
        queries in proptest::collection::vec((0usize..N, 1usize..20), 1..12),
        case in 0u64..u64::MAX,
    ) {
        let (_, engine) = reference();
        let (router, dir) = router_with(shards, max_resident, case);

        // Batch path.
        let direct = engine.top_k_batch(&queries);
        let routed = router.top_k_batch(&queries);
        for ((d, r), &(node, k)) in direct.iter().zip(&routed).zip(&queries) {
            let d = d.as_ref().unwrap();
            let r = r.as_ref().unwrap();
            prop_assert_eq!(d.len(), r.len(), "len for query ({}, {})", node, k);
            for (dn, rn) in d.iter().zip(r) {
                prop_assert_eq!(dn.node, rn.node, "node order for query ({}, {})", node, k);
                prop_assert_eq!(
                    dn.score.to_bits(), rn.score.to_bits(),
                    "score bits for query ({}, {})", node, k
                );
            }
        }
        // Single-query path (exercises the router cache on repeats).
        for &(node, k) in queries.iter().take(4) {
            let d = engine.top_k_similar(node, k).unwrap();
            let r = router.top_k_similar(node, k).unwrap();
            prop_assert_eq!(d, r);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_point_queries_identical_to_monolithic(
        shards in 1usize..8,
        nodes in proptest::collection::vec(0usize..N, 1..10),
        case in 0u64..u64::MAX,
    ) {
        let (_, engine) = reference();
        let (router, dir) = router_with(shards, 0, case.wrapping_add(1));
        for &node in &nodes {
            prop_assert_eq!(
                engine.cluster_of(node).unwrap(),
                router.cluster_of(node).unwrap()
            );
        }
        prop_assert_eq!(
            engine.embed_batch(&nodes).unwrap(),
            router.embed_batch(&nodes).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Non-proptest smoke check that a v1-era monolithic file and the v2
/// sharded layout of the same artifact serve identical answers over a
/// shared `Arc<dyn QueryBackend>` (the HTTP server's view of both).
#[test]
fn backend_trait_view_is_equivalent() {
    use sgla_serve::QueryBackend;

    let (artifact, _) = reference();
    let (router, dir) = router_with(3, 0, u64::MAX);
    let engine = Arc::new(QueryEngine::new(artifact.clone(), EngineConfig::default()).unwrap());
    let backends: Vec<Arc<dyn QueryBackend>> = vec![engine, Arc::new(router)];
    let answers: Vec<_> = backends
        .iter()
        .map(|b| {
            (
                b.meta().clone(),
                b.weights().to_vec(),
                b.top_k_batch(&[(5, 6), (66, 3)]),
                b.embed_batch(&[0, 44]).unwrap(),
            )
        })
        .collect();
    assert_eq!(answers[0].0, answers[1].0);
    assert_eq!(answers[0].1, answers[1].1);
    assert_eq!(answers[0].3, answers[1].3);
    for (a, b) in answers[0].2.iter().zip(&answers[1].2) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }
    assert_eq!(backends[0].shard_count(), 1);
    assert_eq!(backends[1].shard_count(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

//! Property tests: memory-mapped serving is bit-identical to owned.
//!
//! The `EmbeddingStore` seam promises that a v5 artifact served
//! zero-copy out of the page cache answers every query with exactly
//! the bits the heap-owned decode of the same file produces — across
//! monolithic and sharded layouts, with and without tombstones, and
//! through both the exact scan and the IVF index. These properties
//! drive randomly shaped artifacts (rows, dimension, shard count,
//! tombstone sets) through both stores and compare raw `f64` bit
//! patterns, never approximate equality: the mapped path reads the
//! same bytes the encoder wrote, so there is nothing to round.
//!
//! Mapped serving only exists on little-endian Linux
//! ([`sgla_serve::store::MMAP_SUPPORTED`]); elsewhere this whole suite
//! compiles away.

#![cfg(all(target_os = "linux", target_endian = "little"))]

use proptest::prelude::*;
use sgla_serve::store::{open_mapped, MmapMode};
use sgla_serve::{
    Artifact, EngineConfig, IvfConfig, QueryBackend, QueryEngine, RouterConfig, ShardRouter,
    TrainConfig,
};
use std::path::PathBuf;

/// A randomly shaped serving workload: artifact geometry plus the
/// tombstone set and probe nodes derived from it.
#[derive(Debug, Clone)]
struct Workload {
    n: usize,
    dim: usize,
    seed: u64,
    shards: usize,
    tombstones: Vec<usize>,
    probes: Vec<usize>,
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (24usize..=60, 4usize..=8, 0u64..1000, 1usize..=4).prop_flat_map(|(n, dim, seed, shards)| {
        (collection::vec(0..n, 0..4), collection::vec(0..n, 2..6)).prop_map(
            move |(mut tombstones, probes)| {
                // Tombstone ids are strictly increasing in the codec.
                tombstones.sort_unstable();
                tombstones.dedup();
                Workload {
                    n,
                    dim,
                    seed,
                    shards,
                    tombstones,
                    probes,
                }
            },
        )
    })
}

/// Trains a small artifact for the workload and stamps its tombstones.
fn trained(w: &Workload) -> Artifact {
    let mvag = mvag_graph::toy::toy_mvag(w.n, 3, w.seed.wrapping_add(7));
    let mut config = TrainConfig::default();
    config.embed.dim = w.dim;
    let mut artifact = Artifact::train(&mvag, &config).unwrap();
    artifact.tombstones = w.tombstones.clone();
    artifact
}

fn scratch(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sgla-store-eq-{tag}-{seed}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// One backend's answers for the probe set, as raw bits. `k` is large
/// enough to rank every live row, so a single divergent score anywhere
/// in the scan shows up.
fn answers(backend: &dyn QueryBackend, probes: &[usize], n: usize) -> Vec<Vec<u64>> {
    probes
        .iter()
        .map(|&node| {
            let mut bits = Vec::new();
            match backend.cluster_of(node) {
                Ok(info) => {
                    bits.extend([1, info.cluster as u64, info.centroid_dist.to_bits()]);
                }
                // Tombstoned probes must fail identically, not just
                // somehow, on both stores.
                Err(e) => bits.extend([0, e.to_string().len() as u64]),
            }
            for result in backend.top_k_batch(&[(node, n)]) {
                match result {
                    Ok(neighbors) => {
                        for nb in neighbors {
                            bits.extend([nb.node as u64, nb.score.to_bits()]);
                        }
                    }
                    Err(e) => bits.extend([0, e.to_string().len() as u64]),
                }
            }
            match backend.embed_batch(&[node]) {
                Ok(rows) => bits.extend(rows[0].iter().map(|v| v.to_bits())),
                Err(e) => bits.extend([0, e.to_string().len() as u64]),
            }
            bits
        })
        .collect()
}

proptest! {
    // Each case trains an eigensolver run, so the suite trades case
    // count for case size (shape and tombstones vary per case).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Monolithic: `QueryEngine::from_mapped` over the saved v5 file
    /// answers bit-identically to the owned decode of the same file.
    #[test]
    fn monolithic_mapped_matches_owned(w in workload_strategy()) {
        let artifact = trained(&w);
        let dir = scratch("mono", w.seed);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.sgla");
        artifact.save(&path).unwrap();

        let (owned_artifact, norms) = Artifact::load_with_norms(&path).unwrap();
        let owned =
            QueryEngine::new_with_norms(owned_artifact, EngineConfig::default(), norms).unwrap();
        let mapped =
            QueryEngine::from_mapped(open_mapped(&path).unwrap(), EngineConfig::default(), None)
                .unwrap();
        prop_assert!(mapped.store().is_mapped());
        prop_assert!(!owned.store().is_mapped());
        prop_assert_eq!(
            answers(&owned, &w.probes, w.n),
            answers(&mapped, &w.probes, w.n)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Monolithic + IVF: the same prebuilt index attached to both
    /// stores yields bit-identical approximate answers (same probe
    /// lists, same exact rescoring over the same row bytes).
    #[test]
    fn mapped_ivf_matches_owned_ivf(w in workload_strategy()) {
        let artifact = trained(&w);
        let dir = scratch("ivf", w.seed);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.sgla");
        artifact.save(&path).unwrap();
        let index = artifact
            .build_ivf(&IvfConfig { nlist: 4, seed: w.seed })
            .unwrap();

        let (owned_artifact, norms) = Artifact::load_with_norms(&path).unwrap();
        let owned = QueryEngine::with_index_and_norms(
            owned_artifact,
            EngineConfig::default(),
            index.clone(),
            norms,
        )
        .unwrap();
        let mapped = QueryEngine::from_mapped(
            open_mapped(&path).unwrap(),
            EngineConfig::default(),
            Some(index),
        )
        .unwrap();
        for &node in &w.probes {
            for nprobe in [1, 2, 4] {
                let o = owned.top_k_approx(node, 8, nprobe);
                let m = mapped.top_k_approx(node, 8, nprobe);
                match (o, m) {
                    (Ok(o), Ok(m)) => {
                        let o: Vec<(usize, u64)> =
                            o.iter().map(|nb| (nb.node, nb.score.to_bits())).collect();
                        let m: Vec<(usize, u64)> =
                            m.iter().map(|nb| (nb.node, nb.score.to_bits())).collect();
                        prop_assert_eq!(o, m, "node {} nprobe {}", node, nprobe);
                    }
                    (Err(_), Err(_)) => {}
                    (o, m) => panic!("node {node} nprobe {nprobe}: owned {o:?} vs mapped {m:?}"),
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Sharded: a router forced to map every shard (`--mmap on`)
    /// answers bit-identically to the same layout decoded owned.
    #[test]
    fn sharded_mapped_router_matches_owned(w in workload_strategy()) {
        let artifact = trained(&w);
        let dir = scratch("shard", w.seed);
        artifact.save_sharded(&dir, w.shards).unwrap();

        let owned = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        let mapped = ShardRouter::open(
            &dir,
            RouterConfig {
                mmap: MmapMode::On,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let reference = answers(&owned, &w.probes, w.n);
        prop_assert_eq!(reference, answers(&mapped, &w.probes, w.n));
        // The mapped router really mapped: force every shard resident,
        // then check what the stores report.
        let all: Vec<usize> = (0..w.n).filter(|i| !w.tombstones.contains(i)).collect();
        mapped.embed_batch(&all).unwrap();
        prop_assert!(mapped
            .store_memory()
            .stores
            .iter()
            .all(|s| s == "mapped"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

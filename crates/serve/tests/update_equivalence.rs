//! Property tests for the incremental-update subsystem.
//!
//! Two guarantees:
//!
//! 1. **Update ≈ retrain.** `Artifact::update` over a random append
//!    delta must agree with a from-scratch `Artifact::train` of the
//!    updated graph: identical labels after Hungarian-style alignment,
//!    and an embedding whose column span lies within a small principal
//!    angle of the retrained one. (Exact equality is impossible — the
//!    retrain re-optimizes the view weights and cold-starts its
//!    eigensolves — but on a well-clustered graph the partition and
//!    subspace must survive.)
//! 2. **Hot swap = fresh load.** A [`HotSwapBackend`] that swaps from
//!    the old artifact to the updated one must answer every query
//!    *bit-identically* to a freshly constructed backend over the
//!    updated artifact — monolithic engine and shard router alike.

use proptest::prelude::*;
use sgla_serve::{
    Artifact, EngineConfig, HotSwapBackend, QueryBackend, QueryEngine, RouterConfig, ShardRouter,
    TrainConfig,
};
use std::sync::{Arc, OnceLock};

const N: usize = 72;
const K: usize = 3;

fn config() -> TrainConfig {
    let mut config = TrainConfig::default();
    config.embed.dim = 8;
    config.sgla.seed = 23;
    config
}

/// A cleanly separated base MVAG: fully informative SBM views plus a
/// well-separated Gaussian attribute view. The update-vs-retrain
/// guarantee is about the *pipeline* (reused weights + warm starts
/// must land on the same partition a cold retrain finds), so the
/// fixture must not carry borderline nodes that flip on any
/// infinitesimal weight change.
fn separated_mvag() -> mvag_graph::Mvag {
    use mvag_graph::generators::{balanced_labels, gaussian_attributes, sbm, SbmConfig};
    use mvag_graph::{Mvag, View};
    let labels = balanced_labels(N, K).unwrap();
    let g1 = sbm(
        &labels,
        &SbmConfig {
            p_in: 0.45,
            p_out: 0.02,
            ..Default::default()
        },
        5,
    )
    .unwrap();
    let g2 = sbm(
        &labels,
        &SbmConfig {
            p_in: 0.4,
            p_out: 0.03,
            ..Default::default()
        },
        6,
    )
    .unwrap();
    let x = gaussian_attributes(
        &labels,
        &mvag_graph::generators::GaussianAttrConfig {
            dim: 12,
            separation: 3.0,
            noise: 0.8,
            informative_fraction: 1.0,
        },
        7,
    )
    .unwrap();
    Mvag::new(
        "update-equiv",
        vec![View::Graph(g1), View::Graph(g2), View::Attributes(x)],
        Some(labels),
        K,
    )
    .unwrap()
}

/// Training dominates wall-clock; every case reuses one base.
fn base() -> &'static (mvag_graph::Mvag, Artifact, sgla_core::views::ViewLaplacians) {
    static SHARED: OnceLock<(mvag_graph::Mvag, Artifact, sgla_core::views::ViewLaplacians)> =
        OnceLock::new();
    SHARED.get_or_init(|| {
        let mvag = separated_mvag();
        let (artifact, views) = Artifact::train_with_views(&mvag, &config()).unwrap();
        (mvag, artifact, views)
    })
}

/// Exact label agreement up to a cluster-relabeling permutation
/// (brute force over k! permutations — k is 3 here).
fn labels_match_aligned(a: &[usize], b: &[usize], k: usize) -> bool {
    fn permutations(k: usize) -> Vec<Vec<usize>> {
        if k == 1 {
            return vec![vec![0]];
        }
        let mut out = Vec::new();
        for rest in permutations(k - 1) {
            for pos in 0..k {
                let mut p = rest.clone();
                p.insert(pos, k - 1);
                out.push(p);
            }
        }
        out
    }
    permutations(k)
        .into_iter()
        .any(|p| a.iter().zip(b).all(|(&x, &y)| p[x] == y))
}

/// Subspace-agreement metric shared with `update_bench` (one
/// implementation, in `mvag_sparse::qr`).
fn subspace_residual(e: &mvag_sparse::DenseMatrix, basis_of: &mvag_sparse::DenseMatrix) -> f64 {
    mvag_sparse::qr::subspace_residual(e, basis_of).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn update_matches_from_scratch_retrain(
        added in 1usize..6,
        delta_seed in 0u64..1000,
    ) {
        let (mvag, artifact, views) = base();
        let delta = mvag_graph::generators::random_append_delta(
            mvag,
            &mvag_graph::generators::AppendConfig {
                added_nodes: added,
                edges_per_node: 10,
                within_cluster: 0.95,
                seed: delta_seed,
                ..Default::default()
            },
        )
        .unwrap();
        let outcome = artifact.update(views, mvag, &delta, &config()).unwrap();
        let updated = outcome.artifact;
        let retrained = Artifact::train(&outcome.mvag, &config()).unwrap();

        prop_assert_eq!(updated.meta.n, N + added);
        prop_assert_eq!(updated.meta.update_count, 1);
        prop_assert_eq!(retrained.meta.update_count, 0);
        // Labels identical after cluster-relabeling alignment.
        prop_assert!(
            labels_match_aligned(&updated.labels, &retrained.labels, K),
            "update labels {:?} vs retrain {:?}",
            &updated.labels,
            &retrained.labels
        );
        // Embedding subspace within tolerance of the retrained one.
        let residual = subspace_residual(&updated.embedding, &retrained.embedding);
        prop_assert!(
            residual < 0.35,
            "embedding subspace residual {residual} (added {added}, seed {delta_seed})"
        );
    }

    #[test]
    fn hot_swap_is_bit_identical_to_fresh_load(
        added in 1usize..5,
        shards in 2usize..5,
        queries in proptest::collection::vec((0usize..N, 1usize..15), 1..10),
        case in 0u64..u64::MAX,
    ) {
        let (mvag, artifact, views) = base();
        let delta = mvag_graph::generators::random_append_delta(
            mvag,
            &mvag_graph::generators::AppendConfig {
                added_nodes: added,
                seed: case,
                ..Default::default()
            },
        )
        .unwrap();
        let updated = artifact.update(views, mvag, &delta, &config()).unwrap().artifact;

        // --- Monolithic: swap old -> updated engine. ---
        let old_engine: Arc<dyn QueryBackend> = Arc::new(
            QueryEngine::new(artifact.clone(), EngineConfig::default()).unwrap(),
        );
        let swap = HotSwapBackend::new(old_engine);
        prop_assert_eq!(QueryBackend::meta(&swap).n, N);
        swap.swap(Arc::new(
            QueryEngine::new(updated.clone(), EngineConfig::default()).unwrap(),
        ));
        let fresh = QueryEngine::new(updated.clone(), EngineConfig::default()).unwrap();
        prop_assert_eq!(QueryBackend::meta(&swap).n, N + added);
        for (swapped, direct) in swap
            .top_k_batch(&queries)
            .into_iter()
            .zip(fresh.top_k_batch(&queries))
        {
            let (s, d) = (swapped.unwrap(), direct.unwrap());
            prop_assert_eq!(s.len(), d.len());
            for (a, b) in s.iter().zip(&d) {
                prop_assert_eq!(a.node, b.node);
                prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        for &(node, _) in &queries {
            prop_assert_eq!(
                swap.cluster_of(node).unwrap(),
                fresh.cluster_of(node).unwrap()
            );
        }
        // Appended nodes are servable post-swap.
        prop_assert!(swap.cluster_of(N + added - 1).is_ok());

        // --- Sharded: swap the monolithic engine for a router over a
        // sharded layout of the updated artifact. ---
        let dir = std::env::temp_dir().join(format!(
            "sgla-update-swap-{shards}-{case}-{:?}",
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        updated.save_sharded(&dir, shards).unwrap();
        swap.swap(Arc::new(
            ShardRouter::open(&dir, RouterConfig::default()).unwrap(),
        ));
        let fresh_router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        prop_assert_eq!(swap.shard_count(), shards.min(N + added));
        prop_assert_eq!(QueryBackend::meta(&swap).update_count, 1);
        for (swapped, direct) in swap
            .top_k_batch(&queries)
            .into_iter()
            .zip(fresh_router.top_k_batch(&queries))
        {
            let (s, d) = (swapped.unwrap(), direct.unwrap());
            prop_assert_eq!(s.len(), d.len());
            for (a, b) in s.iter().zip(&d) {
                prop_assert_eq!(a.node, b.node);
                prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        let nodes: Vec<usize> = queries.iter().map(|&(node, _)| node).collect();
        prop_assert_eq!(
            swap.embed_batch(&nodes).unwrap(),
            fresh_router.embed_batch(&nodes).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

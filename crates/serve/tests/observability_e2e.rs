//! End-to-end tests for the per-query observability layer: EXPLAIN
//! cost profiles (`?explain=1`) must splice onto *byte-identical*
//! answers on every backend shape, the slow-query ring must capture
//! over-threshold requests and survive concurrent drains, `/health`
//! must walk ok → degraded/unhealthy → ok as objectives are violated
//! and relaxed, client `X-Request-Id`s must echo end to end, and
//! `/version` + `/metrics` must expose the build/observability
//! surface the operations docs promise.

use mvag_data::json::{self, Value};
use proptest::prelude::*;
use sgla_serve::{
    Artifact, EngineConfig, HttpClient, IvfConfig, QueryEngine, RouterConfig, Server, ServerConfig,
    ShardRouter, TrainConfig,
};
use std::net::SocketAddr;
use std::sync::{Arc, OnceLock};

const N: usize = 90;

fn trained_artifact() -> Artifact {
    // Training dominates test wall-clock in debug builds; every test
    // serves clones of one shared artifact.
    static SHARED: OnceLock<Artifact> = OnceLock::new();
    SHARED
        .get_or_init(|| {
            let mvag = mvag_data::toy_mvag(N, 3, 23);
            let mut config = TrainConfig::default();
            config.embed.dim = 8;
            Artifact::train(&mvag, &config).unwrap()
        })
        .clone()
}

fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        workers: 4,
        ..ServerConfig::default()
    }
}

fn start_monolithic(config: &ServerConfig) -> Server {
    let engine = QueryEngine::new(trained_artifact(), EngineConfig::default()).unwrap();
    Server::start(Arc::new(engine), config).unwrap()
}

/// Three long-lived servers — monolithic exact, monolithic with an
/// IVF index, and a shard router with per-shard indexes — shared by
/// the bit-identity proptest so cases reuse connections instead of
/// re-training and re-binding per case.
fn explain_servers() -> &'static [(&'static str, SocketAddr)] {
    type Fleet = (Vec<(&'static str, SocketAddr)>, Vec<Server>);
    static SERVERS: OnceLock<Fleet> = OnceLock::new();
    &SERVERS
        .get_or_init(|| {
            let artifact = trained_artifact();
            let mono = Server::start(
                Arc::new(QueryEngine::new(artifact.clone(), EngineConfig::default()).unwrap()),
                &base_config(),
            )
            .unwrap();
            let indexed = Server::start(
                Arc::new(
                    QueryEngine::new(
                        artifact.clone(),
                        EngineConfig {
                            index: Some(IvfConfig { nlist: 8, seed: 5 }),
                            ..EngineConfig::default()
                        },
                    )
                    .unwrap(),
                ),
                &base_config(),
            )
            .unwrap();
            let dir =
                std::env::temp_dir().join(format!("sgla-obs-e2e-explain-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            artifact.save_sharded(&dir, 3).unwrap();
            let router = ShardRouter::open(
                &dir,
                RouterConfig {
                    engine: EngineConfig {
                        index: Some(IvfConfig { nlist: 8, seed: 5 }),
                        ..EngineConfig::default()
                    },
                    ..RouterConfig::default()
                },
            )
            .unwrap();
            let sharded = Server::start_backend(Arc::new(router), &base_config()).unwrap();
            let addrs = vec![
                ("monolithic", mono.local_addr()),
                ("indexed", indexed.local_addr()),
                ("sharded", sharded.local_addr()),
            ];
            (addrs, vec![mono, indexed, sharded])
        })
        .0
}

/// Fetches `plain_path` and `explained_path`, asserts the explained
/// body is exactly the plain bytes with `,"cost":{...}` spliced before
/// the final brace, and that the cost object is well-formed.
fn assert_bit_identical(plain: &(u16, String), explained: &(u16, String), context: &str) {
    assert_eq!(plain.0, 200, "{context}: plain status");
    assert_eq!(explained.0, 200, "{context}: explained status");
    let body = &explained.1;
    let idx = body
        .rfind(",\"cost\":{")
        .unwrap_or_else(|| panic!("{context}: no cost splice in {body}"));
    assert!(
        body.ends_with("}}"),
        "{context}: splice must close both objects"
    );
    let reconstructed = format!("{}}}", &body[..idx]);
    assert_eq!(
        reconstructed, plain.1,
        "{context}: answer bytes must be identical with and without explain"
    );
    let parsed = json::parse(body).unwrap();
    let cost = parsed.get("cost").unwrap();
    let path = cost.get("path").unwrap().as_str().unwrap();
    assert!(matches!(path, "exact" | "ivf"), "{context}: path {path}");
    assert_eq!(
        cost.get("response_bytes").unwrap().as_usize(),
        Some(plain.1.len()),
        "{context}: response_bytes reports the plain body length"
    );
    assert!(cost.get("rows_scanned").is_some(), "{context}: cost shape");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `?explain=1` never perturbs an answer: for random nodes, k, and
    /// nprobe, on all three backend shapes, the explained body minus
    /// the splice is byte-identical to the plain body — for /cluster,
    /// /topk exact, /topk approx (indexed backends), and /embed.
    #[test]
    fn explain_is_bit_identical(node in 0usize..N, k in 1usize..12, nprobe in 1usize..8) {
        for &(label, addr) in explain_servers() {
            let mut client = HttpClient::connect(addr).unwrap();
            let plain = client.get_text(&format!("/cluster/{node}")).unwrap();
            let explained = client.get_text(&format!("/cluster/{node}?explain=1")).unwrap();
            assert_bit_identical(&plain, &explained, &format!("{label} /cluster/{node}"));

            let plain = client.get_text(&format!("/topk/{node}?k={k}")).unwrap();
            let explained = client.get_text(&format!("/topk/{node}?k={k}&explain=1")).unwrap();
            assert_bit_identical(&plain, &explained, &format!("{label} /topk/{node}?k={k}"));

            if label != "monolithic" {
                let q = format!("/topk/{node}?k={k}&mode=approx&nprobe={nprobe}");
                let plain = client.get_text(&q).unwrap();
                let explained = client.get_text(&format!("{q}&explain=1")).unwrap();
                assert_bit_identical(&plain, &explained, &format!("{label} {q}"));
            }

            let body = Value::object(vec![("nodes", Value::from(vec![node, node / 2]))]);
            let plain = client.post_text("/embed", &body).unwrap();
            let explained = client.post_text("/embed?explain=1", &body).unwrap();
            assert_bit_identical(&plain, &explained, &format!("{label} /embed [{node}]"));
        }
    }
}

#[test]
fn slow_ring_captures_and_survives_concurrent_drains() {
    let server = Server::start(
        Arc::new(QueryEngine::new(trained_artifact(), EngineConfig::default()).unwrap()),
        &ServerConfig {
            slow_query_us: 1, // every request is "slow"
            ..base_config()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let mut client = HttpClient::connect(addr).unwrap();

    // Deliberately slow (relative to a 1 µs threshold) queries are
    // captured with their cost profiles.
    for node in 0..10 {
        client.get(&format!("/topk/{node}?k=5")).unwrap();
    }
    let res = client.get("/debug/slow_queries").unwrap();
    assert_eq!(res.status, 200);
    let entries = res.body.get("slow_queries").unwrap().as_array().unwrap();
    assert!(entries.len() >= 10, "all 10 topk queries captured");
    let topk_entry = entries
        .iter()
        .find(|e| e.get("endpoint").unwrap().as_str() == Some("topk"))
        .expect("a topk entry");
    assert!(topk_entry.get("wall_us").unwrap().as_usize().unwrap() >= 1);
    let cost = topk_entry.get("cost").unwrap();
    assert_eq!(cost.get("path").unwrap().as_str(), Some("exact"));

    // Live-tune the threshold up: captures stop (nothing here takes
    // 100 s); the already-captured entries stay until drained.
    let res = client
        .put(
            "/debug/slow_threshold",
            &Value::object(vec![("threshold_us", Value::from(100_000_000usize))]),
        )
        .unwrap();
    assert_eq!(res.status, 200);
    let captured_before = slow_counter(&mut client, "captured_total");
    client.get("/topk/3?k=5").unwrap();
    assert_eq!(slow_counter(&mut client, "captured_total"), captured_before);

    // Back to capture-everything, then hammer the ring from writer
    // threads while drain threads race it: every captured entry is
    // either drained exactly once, still held, or counted dropped.
    client
        .put(
            "/debug/slow_threshold",
            &Value::object(vec![("threshold_us", Value::from(1usize))]),
        )
        .unwrap();
    let writers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).unwrap();
                for node in 0..50 {
                    c.get(&format!("/topk/{node}?k=3")).unwrap();
                }
            })
        })
        .collect();
    let drainers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).unwrap();
                let mut drained = 0usize;
                for _ in 0..10 {
                    let res = c.get("/debug/slow_queries?drain=1").unwrap();
                    drained += res.body.get("count").unwrap().as_usize().unwrap();
                    std::thread::yield_now();
                }
                drained
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    let drained: usize = drainers.into_iter().map(|d| d.join().unwrap()).sum();
    // Quiesce: the drain requests themselves may still be captured, so
    // read the counters and the final drain from one last request pair
    // and allow for the entries those two requests add.
    let res = client.get("/debug/slow_queries?drain=1").unwrap();
    let final_drained = res.body.get("count").unwrap().as_usize().unwrap();
    let captured = res.body.get("captured_total").unwrap().as_usize().unwrap();
    let dropped = res.body.get("dropped_total").unwrap().as_usize().unwrap();
    let accounted = drained + final_drained + dropped;
    assert!(
        accounted <= captured && captured - accounted <= 2,
        "every capture drained or dropped: drained {drained} + final {final_drained} \
         + dropped {dropped} vs captured {captured}"
    );
    server.shutdown();
}

fn slow_counter(client: &mut HttpClient, field: &str) -> usize {
    client
        .get("/debug/slow_queries")
        .unwrap()
        .body
        .get(field)
        .unwrap()
        .as_usize()
        .unwrap()
}

#[test]
fn health_walks_ok_degraded_ok_under_injected_objective() {
    let server = Server::start(
        Arc::new(QueryEngine::new(trained_artifact(), EngineConfig::default()).unwrap()),
        &ServerConfig {
            slo_p99_us: 1, // unmeetable: every request violates it
            ..base_config()
        },
    )
    .unwrap();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // No traffic yet: windows have fewer than MIN_SAMPLES, so the
    // unmeetable objective cannot fire.
    let res = client.get("/health").unwrap();
    assert_eq!(res.status, 200);
    assert_eq!(res.body.get("status").unwrap().as_str(), Some("ok"));

    // Enough violating traffic to fill the evaluation windows.
    for node in 0..40 {
        client.get(&format!("/topk/{}?k=5", node % N)).unwrap();
    }
    let res = client.get("/health").unwrap();
    let status = res.body.get("status").unwrap().as_str().unwrap();
    assert_ne!(status, "ok", "unmeetable p99 objective must fire");
    let reasons = res.body.get("reasons").unwrap().as_array().unwrap();
    assert!(!reasons.is_empty(), "a firing objective names its reason");
    if status == "unhealthy" {
        assert_eq!(res.status, 503, "unhealthy is load-balancer visible");
    } else {
        assert_eq!(res.status, 200);
    }

    // Live-relax the objective: recovery is immediate (burn rates are
    // computed from objectives, not sticky state).
    let res = client
        .put(
            "/debug/slo",
            &Value::object(vec![("p99_us", Value::from(0usize))]),
        )
        .unwrap();
    assert_eq!(res.status, 200);
    let res = client.get("/health").unwrap();
    assert_eq!(res.status, 200);
    assert_eq!(res.body.get("status").unwrap().as_str(), Some("ok"));
    server.shutdown();
}

#[test]
fn client_request_ids_echo_and_gate_malformed() {
    let server = start_monolithic(&base_config());
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // Well-formed ids echo back verbatim.
    let res = client
        .get_with_headers("/healthz", &[("x-request-id", "abc-123.z_7")])
        .unwrap();
    assert_eq!(res.status, 200);
    assert_eq!(res.request_id.as_deref(), Some("abc-123.z_7"));

    // Malformed or oversized ids are replaced by minted ones, not
    // truncated or echoed.
    let long = "x".repeat(65);
    for bad in ["bad id", "quote\"inject", long.as_str()] {
        let res = client
            .get_with_headers("/healthz", &[("x-request-id", bad)])
            .unwrap();
        let echoed = res.request_id.expect("every response carries an id");
        assert!(
            echoed.starts_with("req-"),
            "minted for {bad:?}, got {echoed}"
        );
    }

    // No header: minted.
    let res = client.get("/healthz").unwrap();
    assert!(res.request_id.unwrap().starts_with("req-"));
    server.shutdown();

    // Same contract on the evented transport.
    #[cfg(target_os = "linux")]
    {
        let server = Server::start(
            Arc::new(QueryEngine::new(trained_artifact(), EngineConfig::default()).unwrap()),
            &ServerConfig {
                backend: sgla_serve::ServeBackend::Evented,
                ..base_config()
            },
        )
        .unwrap();
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let res = client
            .get_with_headers("/topk/3?k=4", &[("x-request-id", "evented.7")])
            .unwrap();
        assert_eq!(res.status, 200);
        assert_eq!(res.request_id.as_deref(), Some("evented.7"));
        server.shutdown();
    }
}

#[test]
fn version_build_block_and_metrics_families() {
    let server = start_monolithic(&base_config());
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    let res = client.get("/version").unwrap();
    assert_eq!(res.status, 200);
    let build = res.body.get("build").unwrap();
    assert_eq!(
        build.get("crate_version").unwrap().as_str(),
        Some(env!("CARGO_PKG_VERSION"))
    );
    let formats: Vec<usize> = build
        .get("artifact_formats_supported")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_usize().unwrap())
        .collect();
    assert_eq!(formats, vec![1, 2, 3, 4, 5]);
    assert!(build
        .get("delta_formats_supported")
        .unwrap()
        .as_array()
        .is_some());
    assert!(build.get("index_format").unwrap().as_usize().is_some());
    assert!(build.get("uptime_secs").unwrap().as_f64().is_some());

    // /stats carries the same build block.
    let stats = client.get("/stats").unwrap();
    assert_eq!(
        stats
            .body
            .get("build")
            .unwrap()
            .get("crate_version")
            .unwrap()
            .as_str(),
        Some(env!("CARGO_PKG_VERSION"))
    );

    // ... and the embedding-store memory block: a monolithic engine
    // loaded owned pins heap bytes and maps nothing.
    let memory = stats.body.get("memory").unwrap();
    assert!(memory.get("store_owned_bytes").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(
        memory.get("store_mapped_bytes").unwrap().as_f64().unwrap(),
        0.0
    );
    assert_eq!(memory.get("resident_hint").unwrap().as_str(), Some("none"));
    let stores = memory.get("stores").unwrap().as_array().unwrap();
    assert_eq!(stores.len(), 1);
    assert_eq!(stores[0].as_str(), Some("owned"));

    // The metrics page validates and carries every new family.
    let (status, page) = client.get_text("/metrics").unwrap();
    assert_eq!(status, 200);
    sgla_serve::metrics::validate_prometheus(&page).unwrap();
    for series in [
        "sgla_slow_query_captured_total",
        "sgla_slo_objective_p99_us",
        "sgla_compact_duration_us_bucket",
        "sgla_compact_write_amplification",
        "sgla_store_owned_bytes",
        "sgla_store_mapped_bytes",
        "sgla_store_mapped_stores",
        "sgla_store_owned_stores",
    ] {
        assert!(page.contains(series), "missing {series} on /metrics");
    }
    assert!(
        page.contains("sgla_store_owned_stores 1"),
        "monolithic owned load should report one owned store"
    );
    server.shutdown();
}

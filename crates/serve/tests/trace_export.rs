//! Tracing end to end: the Chrome trace-event export of a full
//! training run (every phase present, correctly nested), the
//! `/traces` request-span tree over HTTP, and Prometheus conformance
//! of the `/metrics` page with stage histograms populated.

use mvag_data::json::Value;
use sgla_serve::{Artifact, RouterConfig, Server, ServerConfig, ShardRouter, TrainConfig};
use std::sync::{Arc, Mutex};

/// Tracing state (enable flag, ring buffer) is process-global; tests
/// in this binary serialize around it.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// `(ts, dur, depth)` of every event named `name`.
fn windows(events: &[Value], name: &str) -> Vec<(u64, u64, u64)> {
    events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some(name))
        .map(|e| {
            let ts = e.get("ts").unwrap().as_f64().unwrap() as u64;
            let dur = e.get("dur").unwrap().as_f64().unwrap() as u64;
            let depth = e
                .get("args")
                .unwrap()
                .get("depth")
                .unwrap()
                .as_f64()
                .unwrap() as u64;
            (ts, dur, depth)
        })
        .collect()
}

/// Every `child` window must sit inside some `parent` window that is
/// strictly shallower (smaller depth).
fn assert_nested(events: &[Value], child: &str, parent: &str) {
    let children = windows(events, child);
    let parents = windows(events, parent);
    assert!(!children.is_empty(), "no {child} events");
    assert!(!parents.is_empty(), "no {parent} events");
    for &(ts, dur, depth) in &children {
        assert!(
            parents
                .iter()
                .any(|&(pts, pdur, pdepth)| pts <= ts && ts + dur <= pts + pdur && pdepth < depth),
            "{child} [{ts}, +{dur}] depth {depth} not nested in any {parent} window: {parents:?}"
        );
    }
}

#[test]
fn train_trace_exports_valid_chrome_json_with_nested_phases() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    mvag_obs::set_enabled(true);
    mvag_obs::clear();

    let mvag = mvag_data::toy_mvag(60, 2, 7);
    let mut config = TrainConfig::default();
    config.embed.dim = 6;
    let trace_id = mvag_obs::next_request_id();
    mvag_obs::with_trace(trace_id, || Artifact::train(&mvag, &config)).unwrap();

    let records = mvag_obs::drain();
    mvag_obs::set_enabled(false);
    let json = mvag_obs::chrome_trace_json(&records);

    // The export is a valid JSON document in Chrome trace-event
    // format: complete ("ph": "X") events with microsecond ts/dur.
    let parsed = mvag_data::json::parse(&json).unwrap();
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty());
    for event in events {
        assert_eq!(event.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(event.get("cat").and_then(Value::as_str), Some("sgla"));
        assert!(event.get("ts").unwrap().as_f64().is_some());
        assert!(event.get("dur").unwrap().as_f64().is_some());
        // Everything recorded under with_trace carries the trace id.
        assert_eq!(
            event.get("args").unwrap().get("trace").unwrap().as_f64(),
            Some(trace_id as f64)
        );
    }

    // Every training phase shows up.
    for phase in [
        "train.views",
        "train.view_laplacian",
        "train.integrate",
        "train.surrogate",
        "train.eigensolve",
        "train.aggregate",
        "train.spectral",
        "train.kmeans",
        "train.embed",
    ] {
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Value::as_str) == Some(phase)),
            "missing phase {phase} in trace export"
        );
    }

    // Phase nesting: per-view work inside the views phase; objective
    // eigensolves, the surrogate optimization, and weight aggregation
    // inside the integration phase; k-means rounding inside the
    // spectral phase.
    assert_nested(events, "train.view_laplacian", "train.views");
    assert_nested(events, "train.eigensolve", "train.integrate");
    assert_nested(events, "train.surrogate", "train.integrate");
    assert_nested(events, "train.aggregate", "train.integrate");
    assert_nested(events, "train.kmeans", "train.spectral");

    // Eigensolve spans carry the solver's convergence counters.
    let eig = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("train.eigensolve"))
        .unwrap();
    let args = eig.get("args").unwrap();
    assert!(args.get("matvecs").unwrap().as_f64().unwrap() > 0.0);
    assert!(args.get("rounds").is_some());
    assert!(args.get("restarts").is_some());
    assert!(args.get("reortho_sweeps").is_some());
}

#[test]
fn http_traces_expose_request_span_tree() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    let mvag = mvag_data::toy_mvag(90, 3, 19);
    let mut config = TrainConfig::default();
    config.embed.dim = 8;
    let artifact = Artifact::train(&mvag, &config).unwrap();
    let dir = std::env::temp_dir().join(format!("sgla-e2e-traces-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    artifact.save_sharded(&dir, 3).unwrap();

    let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
    let server_config = ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        workers: 4,
        trace: true,
        ..ServerConfig::default()
    };
    let server = Server::start_backend(Arc::new(router), &server_config).unwrap();
    assert!(mvag_obs::enabled(), "serve --trace on must enable tracing");
    mvag_obs::clear();

    let mut client = sgla_serve::HttpClient::connect(server.local_addr()).unwrap();
    let res = client.get("/topk/5?k=4").unwrap();
    assert_eq!(res.status, 200);
    let request_id = res.request_id.clone().expect("missing x-request-id");
    assert!(request_id.starts_with("req-"), "got {request_id}");

    // The span tree for that exact request id is retrievable.
    let traces = client.get("/traces?n=16").unwrap();
    assert_eq!(traces.status, 200);
    assert_eq!(traces.body.get("enabled").unwrap().as_bool(), Some(true));
    let list = traces.body.get("traces").unwrap().as_array().unwrap();
    let trace = list
        .iter()
        .find(|t| t.get("request_id").and_then(Value::as_str) == Some(&request_id))
        .unwrap_or_else(|| panic!("no trace for {request_id} in {list:?}"));

    let spans = trace.get("spans").unwrap().as_array().unwrap();
    let names: Vec<&str> = spans
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    // Root, queue wait, the shared backend pass, the shard fan-out,
    // per-shard scans, and the merge all hang off one request.
    for stage in [
        "serve.request",
        "serve.queue_wait",
        "serve.backend",
        "serve.fan_out",
        "serve.scan",
        "serve.merge",
    ] {
        assert!(names.contains(&stage), "missing {stage} in {names:?}");
    }
    // The router loads shards lazily; the first query pays for it and
    // its trace shows it.
    assert!(names.contains(&"serve.shard_load"), "got {names:?}");
    // One scan per shard, attributed to this request even though they
    // ran on pool threads.
    assert_eq!(names.iter().filter(|n| **n == "serve.scan").count(), 3);
    let root = spans
        .iter()
        .find(|s| s.get("name").unwrap().as_str() == Some("serve.request"))
        .unwrap();
    assert_eq!(root.get("depth").unwrap().as_usize(), Some(0));
    assert_eq!(
        root.get("counters")
            .unwrap()
            .get("status")
            .unwrap()
            .as_usize(),
        Some(200)
    );

    // The slow filter keeps the request at threshold 0 and drops it at
    // an absurd one.
    let slow = client.get("/traces/slow?threshold_us=0").unwrap();
    assert_eq!(slow.status, 200);
    let slow_list = slow.body.get("traces").unwrap().as_array().unwrap();
    assert!(slow_list
        .iter()
        .any(|t| t.get("request_id").and_then(Value::as_str) == Some(&request_id)));
    let fast = client.get("/traces/slow?threshold_us=600000000").unwrap();
    let fast_list = fast.body.get("traces").unwrap().as_array().unwrap();
    assert!(!fast_list
        .iter()
        .any(|t| t.get("request_id").and_then(Value::as_str) == Some(&request_id)));

    // With stages populated, the full /metrics page is conformant
    // Prometheus text format, including the sgla_stage_* histograms
    // and pool gauges.
    let (status, page) = client.get_text("/metrics").unwrap();
    assert_eq!(status, 200);
    sgla_serve::metrics::validate_prometheus(&page)
        .unwrap_or_else(|e| panic!("/metrics not conformant: {e}\n{page}"));
    assert!(page.contains("sgla_stage_duration_us_bucket{stage=\"serve.request\""));
    assert!(page.contains("# TYPE sgla_stage_duration_us histogram"));
    assert!(page.contains("# TYPE sgla_pool_threads gauge"));

    // /stats reports the resolved worker-pool configuration and the
    // tracing flag.
    let stats = client.get("/stats").unwrap().body;
    let pool = stats.get("pool").unwrap();
    assert!(pool.get("threads").unwrap().as_usize().unwrap() >= 1);
    let kind = pool.get("kind").unwrap().as_str().unwrap();
    assert!(["inline", "static", "steal"].contains(&kind), "{kind}");
    assert!(pool.get("jobs").unwrap().as_f64().is_some());
    assert_eq!(stats.get("tracing").unwrap().as_bool(), Some(true));

    mvag_obs::set_enabled(false);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

//! The trained-artifact store: versioned, checksummed binary
//! persistence for everything SGLA learns about one MVAG.
//!
//! An [`Artifact`] bundles the learned view weights `w*`, the
//! integrated Laplacian in CSR form, the cluster assignment and
//! per-cluster centroids, and the node embedding matrix — the complete
//! state the query engine needs, so serving never re-touches the
//! training pipeline. The codec extends the hand-rolled `bytes` format
//! of `mvag_data::io`: a magic header and format-version field up
//! front, a CRC-32 of the body, and overflow-safe bounds checks so
//! hostile or truncated input surfaces as a typed
//! [`ServeError::Corrupt`], never a panic or huge allocation.
//!
//! Three on-disk layouts share the codec (see `docs/ARCHITECTURE.md`
//! for the byte-level specification):
//!
//! * **v1 (monolithic, legacy)** — one file holding the whole artifact.
//!   Still loadable; decoding normalizes it to a full-range artifact
//!   covering rows `0..n`.
//! * **v2 (row-ranged, legacy)** — the same layout plus an explicit
//!   `[row_start, row_end)` global row range. A *full* artifact covers
//!   `0..n`; a *shard* produced by [`Artifact::shard`] covers a slice
//!   of the rows (its labels, embedding rows, and Laplacian rows are
//!   restricted to the range, while view weights and centroids — both
//!   small and global — are carried in every shard).
//!   [`Artifact::save_sharded`] writes a directory of shard files plus
//!   a [`ShardManifest`] that a
//!   [`ShardRouter`](crate::router::ShardRouter) can serve without
//!   ever holding the whole embedding in memory.
//! * **v3 (lineage)** — v2 plus the update-lineage header (`parent_seed`
//!   of the root training run, `update_count` of incremental updates
//!   applied since), with every length field a uniform `u64`.
//!   v1/v2 files still decode, gaining a fresh lineage.
//! * **v4 (deltas, legacy)** — v3 plus the compaction counter and the
//!   tombstone section (sorted global ids of deleted-but-unpurged
//!   rows), one flat big-endian body.
//! * **v5 (sectioned, current)** — the same information restructured
//!   for out-of-core serving: the body carries a section table, each
//!   section starts at a 64-byte-aligned file offset with its own
//!   CRC-32, per-row embedding norms are precomputed into their own
//!   section, and the norms/embedding sections are raw little-endian
//!   `f64`s — so [`crate::store::EmbeddingStore`] can serve rows
//!   zero-copy straight out of a memory map.

use crate::{Result, ServeError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mvag_data::codec::{
    align_up, f64s_from_le, get_f64s, get_str, get_u32s, get_u64s, put_f64s_le, put_str,
    SECTION_ALIGN,
};
use mvag_data::manifest::{ShardEntry, ShardManifest};
use mvag_graph::{Mvag, MvagDelta};
use mvag_sparse::{vecops, CsrMatrix, DenseMatrix};
use sgla_core::clustering::{label_indicator_init, spectral_clustering_with, SpectralParams};
use sgla_core::embedding::{embed, embed_warm, EmbedParams};
use sgla_core::sgla::SglaParams;
use sgla_core::sgla_plus::SglaPlus;
use sgla_core::views::{KnnParams, ViewLaplacians};
use std::fs;
use std::path::Path;

/// `"SGLA"` in ASCII.
const MAGIC: u32 = 0x5347_4C41;
/// Current format: v5 restructures the body into a section table of
/// alignment-padded sections. The per-row embedding norms are
/// precomputed at save time into their own section, and the norms and
/// embedding sections are raw little-endian `f64`s starting at
/// 64-byte-aligned file offsets — so a mapped file can lend out
/// `&[f64]` rows without copying or byte-swapping. Encoders always
/// write this version.
pub const FORMAT_VERSION: u16 = 5;
/// The flat (unaligned, big-endian) layout with the compaction counter
/// and tombstone section; still decodable.
pub const FORMAT_VERSION_V4: u16 = 4;
/// The lineage layout (parent seed + update counter, uniform `u64`
/// length fields) without tombstones; still decodable.
pub const FORMAT_VERSION_V3: u16 = 3;
/// The row-ranged layout without lineage; still decodable.
pub const FORMAT_VERSION_V2: u16 = 2;
/// The legacy monolithic layout (no row range); still decodable.
pub const FORMAT_VERSION_V1: u16 = 1;

/// Fixed container header length: magic (4) + version (2) +
/// body length (8) + body CRC-32 (4).
pub(crate) const HEADER_LEN: usize = 18;

/// v5 section ids, in file order.
const SECTION_LAPLACIAN: u32 = 1;
const SECTION_LABELS: u32 = 2;
const SECTION_CENTROIDS: u32 = 3;
const SECTION_NORMS: u32 = 4;
const SECTION_EMBEDDING: u32 = 5;
/// Number of sections in a v5 artifact.
const SECTION_COUNT: usize = 5;
/// Bytes per section-table entry: id (4) + reserved (4) + offset (8) +
/// length (8) + CRC-32 (4) + reserved (4).
const SECTION_ENTRY_LEN: usize = 32;

/// One entry of the v5 section table: where a section's payload lives
/// in the file, its exact length, and a standalone CRC-32 — so a
/// mapped reader can verify small sections eagerly without faulting
/// the pages of the big ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactSection {
    /// Section id (1 = laplacian, 2 = labels, 3 = centroids,
    /// 4 = norms, 5 = embedding).
    pub id: u32,
    /// Absolute file offset of the payload; always a multiple of
    /// [`mvag_data::codec::SECTION_ALIGN`].
    pub offset: usize,
    /// Payload length in bytes (inter-section padding excluded).
    pub len: usize,
    /// CRC-32 of the payload bytes alone.
    pub crc32: u32,
}

impl ArtifactSection {
    /// Human-readable section name.
    pub fn name(&self) -> &'static str {
        match self.id {
            SECTION_LAPLACIAN => "laplacian",
            SECTION_LABELS => "labels",
            SECTION_CENTROIDS => "centroids",
            SECTION_NORMS => "norms",
            SECTION_EMBEDDING => "embedding",
            _ => "unknown",
        }
    }
}

/// Codec-level facts about an artifact file, read without decoding
/// the payload (see [`Artifact::read_file_info`]).
#[derive(Debug, Clone)]
pub struct ArtifactFileInfo {
    /// On-disk format version (1–5).
    pub version: u16,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// The v5 section table; `None` for pre-v5 files, which have no
    /// sections (one flat packed body).
    pub sections: Option<Vec<ArtifactSection>>,
}

/// The parsed v5 head: everything before the first aligned section
/// (meta, weights, tombstones, section table). Shared by the owned
/// decoder and the mapped open path in [`crate::store`].
#[derive(Debug, Clone)]
pub(crate) struct V5Head {
    pub meta: ArtifactMeta,
    pub weights: Vec<f64>,
    pub tombstones: Vec<usize>,
    pub sections: [ArtifactSection; SECTION_COUNT],
    /// CRC-32 the file claims for the head bytes (`[HEADER_LEN`,
    /// `head_end - 4)`); the owned path relies on the whole-body CRC
    /// instead, the mapped path verifies this one.
    pub head_crc: u32,
    /// Absolute offset one past the head (including the head CRC).
    pub head_end: usize,
}

/// Descriptive header of a trained artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Name of the dataset the artifact was trained on.
    pub dataset: String,
    /// Node count `n` of the *whole* graph (not just this shard).
    pub n: usize,
    /// Cluster count `k`.
    pub k: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Seed the training run used (for provenance).
    pub seed: u64,
    /// First global row covered by this artifact, inclusive. A full
    /// artifact has `row_start == 0`.
    pub row_start: usize,
    /// One past the last global row covered. A full artifact has
    /// `row_end == n`.
    pub row_end: usize,
    /// Update lineage: the seed of the *root* training run this
    /// artifact descends from. A freshly trained artifact has
    /// `parent_seed == seed`; [`Artifact::update`] carries it through,
    /// so any artifact can be traced back to the cold-start run that
    /// anchored its chain.
    pub parent_seed: u64,
    /// Number of incremental updates applied since the root training
    /// run (`0` for a fresh artifact).
    pub update_count: u64,
    /// Number of compactions (tombstone purges) this artifact has been
    /// through since the root training run. Bumped by
    /// [`Artifact::compact`]; `parent_seed` is preserved, so the
    /// lineage chain survives re-basing.
    pub compaction_count: u64,
}

impl ArtifactMeta {
    /// Rows this artifact actually holds (`row_end - row_start`).
    pub fn rows(&self) -> usize {
        self.row_end.saturating_sub(self.row_start)
    }

    /// Whether this artifact covers the whole graph (`0..n`).
    pub fn is_full(&self) -> bool {
        self.row_start == 0 && self.row_end == self.n
    }
}

/// Everything SGLA learned about one MVAG, ready to serve.
///
/// Per-node state (labels, embedding rows, Laplacian rows) covers the
/// meta's `[row_start, row_end)` global row range; global state (view
/// weights, centroids) is always complete. A freshly trained artifact
/// is *full* (covers `0..n`); [`Artifact::shard`] slices out row
/// ranges for the sharded layout.
///
/// ```
/// use sgla_serve::{Artifact, TrainConfig};
///
/// let mvag = mvag_data::toy_mvag(40, 2, 7);
/// let mut config = TrainConfig::default();
/// config.embed.dim = 4;
/// let artifact = Artifact::train(&mvag, &config).unwrap();
/// assert!(artifact.meta.is_full());
///
/// // The binary codec round-trips bit-exactly.
/// let back = Artifact::decode(artifact.encode().unwrap()).unwrap();
/// assert_eq!(artifact, back);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Descriptive header.
    pub meta: ArtifactMeta,
    /// Learned view weights `w*` on the probability simplex.
    pub weights: Vec<f64>,
    /// Integrated Laplacian `L = Σ wᵢ* Lᵢ` (CSR); rows restricted to
    /// the meta's row range (`rows × n`).
    pub laplacian: CsrMatrix,
    /// Cluster label per node in the row range, in `0..k`.
    pub labels: Vec<usize>,
    /// Per-cluster centroids in embedding space (`k × dim`).
    pub centroids: DenseMatrix,
    /// Embedding rows for the row range (`rows × dim`).
    pub embedding: DenseMatrix,
    /// Tombstoned rows: sorted global node ids inside
    /// `[row_start, row_end)` that have been deleted but not yet
    /// purged by a compaction. Their label/embedding rows are dead
    /// weight — queries answer `NotFound` for them and they are
    /// excluded from centroid math — but keeping the rows in place
    /// preserves every surviving node's id until compaction rewrites
    /// the artifact.
    pub tombstones: Vec<usize>,
}

/// Everything [`Artifact::update`] produces: the refreshed artifact
/// plus the state a caller needs to chain further updates (the updated
/// MVAG and its per-view Laplacians).
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// The updated artifact (lineage header bumped).
    pub artifact: Artifact,
    /// Refreshed per-view Laplacians — pass these to the next
    /// [`Artifact::update`] call.
    pub views: ViewLaplacians,
    /// The updated MVAG (`base.apply_delta(delta)`).
    pub mvag: Mvag,
}

/// Training configuration for [`Artifact::train`].
#[derive(Debug, Clone, Default)]
pub struct TrainConfig {
    /// SGLA/SGLA+ parameters.
    pub sgla: SglaParams,
    /// View-Laplacian construction parameters.
    pub knn: KnnParams,
    /// Embedding parameters ([`EmbedParams::dim`] is clamped to `n - 2`
    /// for tiny inputs).
    pub embed: EmbedParams,
    /// Spectral clustering restarts/seed come from here.
    pub spectral: SpectralParams,
}

impl Artifact {
    /// Runs the full training pipeline on `mvag`: view Laplacians →
    /// SGLA+ integration → spectral clustering → embedding → centroids.
    ///
    /// # Errors
    /// Propagates pipeline failures as [`ServeError::Train`]; rejects
    /// untrainable tiny graphs (`n <= 2`) up front.
    pub fn train(mvag: &Mvag, config: &TrainConfig) -> Result<Artifact> {
        Ok(Artifact::train_with_views(mvag, config)?.0)
    }

    /// [`Artifact::train`], additionally returning the per-view
    /// Laplacians the run built. A long-lived trainer keeps them: they
    /// are the reusable half of the pipeline's state, and handing them
    /// back to [`Artifact::update`] lets an append-only graph change
    /// skip the KNN searches for untouched attribute views entirely.
    ///
    /// # Errors
    /// See [`Artifact::train`].
    pub fn train_with_views(
        mvag: &Mvag,
        config: &TrainConfig,
    ) -> Result<(Artifact, ViewLaplacians)> {
        check_trainable(mvag.n())?;
        let views = ViewLaplacians::build(mvag, &config.knn)?;
        let outcome = SglaPlus::new(config.sgla.clone()).integrate(&views, mvag.k())?;
        let spectral = spectral_clustering_with(&outcome.laplacian, mvag.k(), &config.spectral)?;
        let embed_params = clamp_embed_params(config, mvag.n());
        let embedding = embed(&outcome.laplacian, &embed_params)?;
        let centroids = centroids_of(&embedding, &spectral.labels, mvag.k())?;
        let artifact = Artifact {
            meta: ArtifactMeta {
                dataset: mvag.name.clone(),
                n: mvag.n(),
                k: mvag.k(),
                dim: embedding.ncols(),
                seed: config.sgla.seed,
                row_start: 0,
                row_end: mvag.n(),
                parent_seed: config.sgla.seed,
                update_count: 0,
                compaction_count: 0,
            },
            weights: outcome.weights,
            laplacian: outcome.laplacian,
            labels: spectral.labels,
            centroids,
            embedding,
            tombstones: Vec::new(),
        };
        Ok((artifact, views))
    }

    /// Incrementally updates this (full) artifact for an append-only
    /// graph change, without re-running the expensive cold-start
    /// pipeline:
    ///
    /// 1. the delta is applied to `base` and the per-view Laplacians
    ///    are refreshed only where the graph actually changed
    ///    ([`ViewLaplacians::update`] — untouched views are extended,
    ///    not recomputed);
    /// 2. the learned view weights `w*` are **reused** — under small
    ///    perturbations the integrated objective changes smoothly, so
    ///    the previous simplex optimum stays near-optimal and the
    ///    `r + 1` eigensolves of a fresh SGLA+ run are skipped; the
    ///    integrated operator is refreshed through the fused-sum
    ///    machinery ([`mvag_sparse::FusedSumOp`]) at `O(Σ nnz)`;
    /// 3. spectral clustering and the embedding are **warm-started**
    ///    from the previous artifact (cluster-indicator seed for the
    ///    clustering eigensolve; the previous embedding block — padded
    ///    with each appended node's cluster centroid — for the
    ///    embedding solver), so both converge in a fraction of their
    ///    cold iteration counts;
    /// 4. labels, centroids, and the lineage header are refreshed
    ///    (`update_count + 1`, `parent_seed` carried through).
    ///
    /// `base_views` are the per-view Laplacians of `base` (from
    /// [`Artifact::train_with_views`] or a previous update's outcome).
    /// The updated artifact stays verifiable: `update_bench` and the
    /// serve proptests check labels (after Hungarian alignment) and
    /// the embedding subspace against a from-scratch retrain of the
    /// updated graph.
    ///
    /// # Errors
    /// [`ServeError::InvalidArgument`] when the artifact, views, and
    /// base do not describe the same graph or the artifact is not
    /// full; [`ServeError::Train`] for pipeline failures.
    pub fn update(
        &self,
        base_views: &ViewLaplacians,
        base: &Mvag,
        delta: &MvagDelta,
        config: &TrainConfig,
    ) -> Result<UpdateOutcome> {
        if !self.meta.is_full() {
            return Err(ServeError::InvalidArgument(
                "can only update a full artifact (update shards via their full parent)".into(),
            ));
        }
        let m = &self.meta;
        if m.n != base.n() || m.k != base.k() || m.dataset != base.name {
            return Err(ServeError::InvalidArgument(format!(
                "artifact was trained on '{}' (n = {}, k = {}), base is '{}' (n = {}, k = {})",
                m.dataset,
                m.n,
                m.k,
                base.name,
                base.n(),
                base.k()
            )));
        }
        if base_views.n() != base.n() || base_views.r() != base.r() {
            return Err(ServeError::InvalidArgument(format!(
                "base views cover {} nodes / {} views, base MVAG has {} / {}",
                base_views.n(),
                base_views.r(),
                base.n(),
                base.r()
            )));
        }
        if self.weights.len() != base.r() {
            return Err(ServeError::InvalidArgument(format!(
                "{} learned weights for {} views",
                self.weights.len(),
                base.r()
            )));
        }
        // Deltas must not touch rows that are already dead: removing a
        // tombstoned node twice, editing it, or wiring an appended
        // node to it would silently resurrect a deleted row.
        self.check_no_tombstone_conflict(delta)?;
        let updated = base
            .apply_delta(delta)
            .map_err(|e| ServeError::InvalidArgument(format!("applying delta: {e}")))?;
        let n_new = updated.n();
        check_trainable(n_new)?;
        let changed = delta
            .changed_views(base)
            .map_err(|e| ServeError::InvalidArgument(format!("delta views: {e}")))?;
        let views = base_views.update(&updated, &config.knn, &changed)?;

        // Reuse w*: refresh the integrated operator through the fused
        // scratch-CSR (one pattern analysis + one set_weights-style
        // value scatter — no optimizer, no objective eigensolves).
        let fused = views.fused_op(&self.weights)?;
        let laplacian = fused.fused_matrix().clone();

        // Warm-started spectral clustering: the previous labels'
        // indicator matrix seeds the eigensolver (appended rows get a
        // flat membership).
        let mut spectral_params = config.spectral.clone();
        spectral_params.init = Some(label_indicator_init(&self.labels, m.k, n_new)?);
        let spectral = spectral_clustering_with(&laplacian, m.k, &spectral_params)?;

        // Warm-started embedding: previous embedding rows, appended
        // rows approximated by their cluster's centroid (`embed_warm`
        // truncates the guess if the target dimension shrank).
        let embed_params = clamp_embed_params(config, n_new);
        let warm = {
            let mut block = DenseMatrix::zeros(n_new, m.dim);
            let rows = m.rows();
            block.data_mut()[..rows * m.dim].copy_from_slice(self.embedding.data());
            for i in rows..n_new {
                let centroid = self.centroids.row(spectral.labels[i].min(m.k - 1));
                block.row_mut(i).copy_from_slice(centroid);
            }
            block
        };
        let embedding = embed_warm(&laplacian, &embed_params, Some(&warm))?;

        // Tombstones accumulate: previous ones plus this delta's
        // removals (both sorted, disjoint by the conflict check above).
        let mut tombstones = merge_sorted(&self.tombstones, &delta.removed_nodes);
        tombstones.dedup();
        let centroids = centroids_of_masked(&embedding, &spectral.labels, m.k, &tombstones)?;

        let artifact = Artifact {
            meta: ArtifactMeta {
                dataset: updated.name.clone(),
                n: n_new,
                k: m.k,
                dim: embedding.ncols(),
                seed: m.seed,
                row_start: 0,
                row_end: n_new,
                parent_seed: m.parent_seed,
                update_count: m.update_count + 1,
                compaction_count: m.compaction_count,
            },
            weights: self.weights.clone(),
            laplacian,
            labels: spectral.labels,
            centroids,
            embedding,
            tombstones,
        };
        artifact.validate()?;
        Ok(UpdateOutcome {
            artifact,
            views,
            mvag: updated,
        })
    }

    /// Rejects deltas that reference rows this artifact has already
    /// tombstoned (see the call in [`Artifact::update`]).
    fn check_no_tombstone_conflict(&self, delta: &MvagDelta) -> Result<()> {
        if self.tombstones.is_empty() {
            return Ok(());
        }
        let dead = |node: usize| self.tombstones.binary_search(&node).is_ok();
        let fail = |what: String| {
            Err(ServeError::InvalidArgument(format!(
                "{what} references a tombstoned (deleted) node"
            )))
        };
        if let Some(&r) = delta.removed_nodes.iter().find(|&&r| dead(r)) {
            return fail(format!("removal of node {r}"));
        }
        for edit in &delta.edits {
            match edit {
                mvag_graph::DeltaEdit::EdgeWeight { u, v, .. } => {
                    if dead(*u) || dead(*v) {
                        return fail(format!("edge edit ({u}, {v})"));
                    }
                }
                mvag_graph::DeltaEdit::AttrRow { node, .. } => {
                    if dead(*node) {
                        return fail(format!("row edit of node {node}"));
                    }
                }
            }
        }
        for view in &delta.views {
            if let mvag_graph::ViewDelta::Edges(edges) = view {
                if let Some(&(u, v, _)) = edges.iter().find(|&&(u, v, _)| dead(u) || dead(v)) {
                    return fail(format!("appended edge ({u}, {v})"));
                }
            }
        }
        Ok(())
    }

    /// Purges this (full) artifact's tombstones: every surviving row
    /// is slid down so ids are dense again, the Laplacian is restricted
    /// to its live principal submatrix, and the meta is re-based
    /// (`n` shrinks, `compaction_count` is bumped, `parent_seed` and
    /// `update_count` are preserved). Returns the compacted artifact
    /// and the [`mvag_data::IdMap`] describing the id shift — the sharded layout
    /// persists it as a sidecar so unrewritten shard files can be
    /// rebased at load time.
    ///
    /// Queries are unaffected by construction: cluster/top-k/embed
    /// answers read only labels, centroids, and embedding rows, all of
    /// which are carried over verbatim for live rows (the learned
    /// weights are reused, nothing is retrained).
    ///
    /// # Errors
    /// [`ServeError::InvalidArgument`] if the artifact is not full or
    /// compaction would leave it untrainable (fewer than 3 live rows).
    pub fn compact(&self) -> Result<(Artifact, mvag_data::IdMap)> {
        if !self.meta.is_full() {
            return Err(ServeError::InvalidArgument(
                "can only compact a full artifact (sharded layouts compact via their manifest)"
                    .into(),
            ));
        }
        let id_map = mvag_data::IdMap::new(self.meta.n, self.tombstones.clone())
            .map_err(|e| ServeError::InvalidArgument(e.to_string()))?;
        check_trainable(id_map.new_n)?;
        let dim = self.meta.dim;
        let live: Vec<usize> = (0..self.meta.n)
            .filter(|&i| id_map.map(i).is_some())
            .collect();
        let mut labels = Vec::with_capacity(live.len());
        let mut embedding = DenseMatrix::zeros(live.len(), dim);
        for (new, &old) in live.iter().enumerate() {
            labels.push(self.labels[old]);
            embedding
                .row_mut(new)
                .copy_from_slice(self.embedding.row(old));
        }
        let laplacian = compact_csr(&self.laplacian, &live, &id_map)?;
        let artifact = Artifact {
            meta: ArtifactMeta {
                dataset: self.meta.dataset.clone(),
                n: id_map.new_n,
                k: self.meta.k,
                dim,
                seed: self.meta.seed,
                row_start: 0,
                row_end: id_map.new_n,
                parent_seed: self.meta.parent_seed,
                update_count: self.meta.update_count,
                compaction_count: self.meta.compaction_count + 1,
            },
            weights: self.weights.clone(),
            laplacian,
            labels,
            centroids: self.centroids.clone(),
            embedding,
            tombstones: Vec::new(),
        };
        artifact.validate()?;
        Ok((artifact, id_map))
    }

    /// Encodes the artifact into the versioned, checksummed binary
    /// format (always the current v5 layout: lineage header, tombstone
    /// section, then a section table of alignment-padded sections —
    /// laplacian, labels, centroids, per-row norms, embedding). The
    /// norms and embedding sections are raw little-endian `f64`s at
    /// 64-byte-aligned file offsets so a mapped reader can borrow
    /// `&[f64]` rows without copying; the norms are computed here, at
    /// save time, so loads skip the `O(n·dim)` norm pass entirely.
    ///
    /// # Errors
    /// [`ServeError::InvalidArgument`] if a label cannot be
    /// represented on the wire (`> u32::MAX` — labels are stored as
    /// `u32`; any valid artifact has `label < k`, so this only fires
    /// on hand-built inconsistent state that would otherwise be
    /// silently truncated).
    pub fn encode(&self) -> Result<Bytes> {
        // Head: everything before the first aligned section.
        let mut head = BytesMut::with_capacity(1 << 12);
        put_str(&mut head, &self.meta.dataset);
        head.put_u64(self.meta.n as u64);
        head.put_u64(self.meta.k as u64);
        head.put_u64(self.meta.dim as u64);
        head.put_u64(self.meta.seed);
        head.put_u64(self.meta.row_start as u64);
        head.put_u64(self.meta.row_end as u64);
        head.put_u64(self.meta.parent_seed);
        head.put_u64(self.meta.update_count);
        head.put_u64(self.meta.compaction_count);
        head.put_u64(self.tombstones.len() as u64);
        for &t in &self.tombstones {
            head.put_u64(t as u64);
        }
        head.put_u64(self.weights.len() as u64);
        for &w in &self.weights {
            head.put_f64(w);
        }
        head.put_u64(SECTION_COUNT as u64);

        // Section payloads (padding is added during assembly).
        let mut lap = BytesMut::with_capacity(1 << 12);
        put_csr(&mut lap, &self.laplacian);
        let mut labels = BytesMut::with_capacity(8 + self.labels.len() * 4);
        labels.put_u64(self.labels.len() as u64);
        for (i, &l) in self.labels.iter().enumerate() {
            let wire = u32::try_from(l).map_err(|_| {
                ServeError::InvalidArgument(format!(
                    "label {l} at row {i} exceeds u32::MAX and cannot be encoded"
                ))
            })?;
            labels.put_u32(wire);
        }
        let mut centroids = BytesMut::with_capacity(16 + self.centroids.data().len() * 8);
        put_dense(&mut centroids, &self.centroids);
        let rows = self.embedding.nrows();
        let mut norms = BytesMut::with_capacity(rows * 8);
        let norm_vals: Vec<f64> = (0..rows)
            .map(|r| vecops::norm2(self.embedding.row(r)))
            .collect();
        put_f64s_le(&mut norms, &norm_vals);
        let mut embedding = BytesMut::with_capacity(self.embedding.data().len() * 8);
        put_f64s_le(&mut embedding, self.embedding.data());
        let payloads = [
            lap.freeze(),
            labels.freeze(),
            centroids.freeze(),
            norms.freeze(),
            embedding.freeze(),
        ];

        // Absolute section offsets: the head (table and head CRC
        // included), then each payload at the next 64-byte boundary.
        let head_len = head.len() + SECTION_COUNT * SECTION_ENTRY_LEN + 4;
        let fail_overflow = || ServeError::InvalidArgument("artifact too large to encode".into());
        let mut offset =
            align_up(HEADER_LEN + head_len, SECTION_ALIGN).ok_or_else(fail_overflow)?;
        let mut sections = Vec::with_capacity(SECTION_COUNT);
        for (i, payload) in payloads.iter().enumerate() {
            sections.push(ArtifactSection {
                id: i as u32 + 1,
                offset,
                len: payload.len(),
                crc32: crc32(payload.as_ref()),
            });
            let end = offset
                .checked_add(payload.len())
                .ok_or_else(fail_overflow)?;
            offset = if i + 1 < SECTION_COUNT {
                align_up(end, SECTION_ALIGN).ok_or_else(fail_overflow)?
            } else {
                end
            };
        }
        for s in &sections {
            head.put_u32(s.id);
            head.put_u32(0);
            head.put_u64(s.offset as u64);
            head.put_u64(s.len as u64);
            head.put_u32(s.crc32);
            head.put_u32(0);
        }
        head.put_u32(crc32(head.as_ref()));
        debug_assert_eq!(head.len(), head_len);

        let total = offset; // one past the embedding section
        let mut body = BytesMut::with_capacity(total - HEADER_LEN);
        body.put_slice(head.as_ref());
        for (s, payload) in sections.iter().zip(&payloads) {
            while HEADER_LEN + body.len() < s.offset {
                body.put_u8(0);
            }
            body.put_slice(payload.as_ref());
        }
        let body = body.freeze();

        let mut out = BytesMut::with_capacity(body.len() + HEADER_LEN);
        out.put_u32(MAGIC);
        out.put_u16(FORMAT_VERSION);
        out.put_u64(body.len() as u64);
        out.put_u32(crc32(body.as_ref()));
        out.put_slice(body.as_ref());
        Ok(out.freeze())
    }

    /// Encodes the legacy v4 layout (flat big-endian body, no section
    /// table). Production code always writes v5; this writer exists so
    /// tests can manufacture real pre-v5 files for the compatibility
    /// and migration batteries.
    #[doc(hidden)]
    pub fn encode_v4(&self) -> Result<Bytes> {
        let mut body = BytesMut::with_capacity(1 << 16);
        put_str(&mut body, &self.meta.dataset);
        body.put_u64(self.meta.n as u64);
        body.put_u64(self.meta.k as u64);
        body.put_u64(self.meta.dim as u64);
        body.put_u64(self.meta.seed);
        body.put_u64(self.meta.row_start as u64);
        body.put_u64(self.meta.row_end as u64);
        body.put_u64(self.meta.parent_seed);
        body.put_u64(self.meta.update_count);
        body.put_u64(self.meta.compaction_count);
        body.put_u64(self.tombstones.len() as u64);
        for &t in &self.tombstones {
            body.put_u64(t as u64);
        }
        body.put_u64(self.weights.len() as u64);
        for &w in &self.weights {
            body.put_f64(w);
        }
        put_csr(&mut body, &self.laplacian);
        body.put_u64(self.labels.len() as u64);
        for (i, &l) in self.labels.iter().enumerate() {
            let wire = u32::try_from(l).map_err(|_| {
                ServeError::InvalidArgument(format!(
                    "label {l} at row {i} exceeds u32::MAX and cannot be encoded"
                ))
            })?;
            body.put_u32(wire);
        }
        put_dense(&mut body, &self.centroids);
        put_dense(&mut body, &self.embedding);
        let body = body.freeze();

        let mut out = BytesMut::with_capacity(body.len() + HEADER_LEN);
        out.put_u32(MAGIC);
        out.put_u16(FORMAT_VERSION_V4);
        out.put_u64(body.len() as u64);
        out.put_u32(crc32(body.as_ref()));
        out.put_slice(body.as_ref());
        Ok(out.freeze())
    }

    /// Decodes an artifact (v1–v5), verifying magic, version, length,
    /// and checksum before touching the payload. Older versions are
    /// normalized in memory: a v1 artifact becomes a full-range
    /// artifact, v1/v2 artifacts get a fresh lineage header
    /// (`parent_seed = seed`, `update_count = 0`), and pre-v4
    /// artifacts have no tombstones and a zero compaction count.
    ///
    /// # Errors
    /// [`ServeError::Corrupt`] on any structural problem — including
    /// length fields that do not fit the remaining body (a corrupt
    /// count errors instead of mis-framing the sections after it).
    pub fn decode(bytes: Bytes) -> Result<Artifact> {
        Ok(Self::decode_with_norms(bytes)?.0)
    }

    /// [`Artifact::decode`], additionally returning the persisted
    /// per-row embedding norms when the file carries them (v5 —
    /// `Some`, one Euclidean norm per row in range) so engine assembly
    /// can skip its `O(n·dim)` norm pass. Pre-v5 files return `None`
    /// and the caller computes.
    ///
    /// # Errors
    /// See [`Artifact::decode`].
    pub fn decode_with_norms(mut bytes: Bytes) -> Result<(Artifact, Option<Vec<f64>>)> {
        let full = bytes.clone();
        let fail = |msg: &str| ServeError::Corrupt(msg.to_string());
        if bytes.remaining() < HEADER_LEN {
            return Err(fail("shorter than the fixed header"));
        }
        if bytes.get_u32() != MAGIC {
            return Err(fail("bad magic (not an SGLA artifact)"));
        }
        let version = bytes.get_u16();
        if !(FORMAT_VERSION_V1..=FORMAT_VERSION).contains(&version) {
            return Err(fail(&format!(
                "unsupported format version {version} (expected {FORMAT_VERSION_V1} through \
                 {FORMAT_VERSION})"
            )));
        }
        let body_len = bytes.get_u64();
        let expect_crc = bytes.get_u32();
        if bytes.remaining() as u64 != body_len {
            return Err(fail(&format!(
                "body length mismatch: header says {body_len}, got {}",
                bytes.remaining()
            )));
        }
        if crc32(bytes.as_ref()) != expect_crc {
            return Err(fail("checksum mismatch (artifact bytes were altered)"));
        }
        if version == FORMAT_VERSION {
            // v5: sectioned body. The whole-body CRC above already
            // vouches for every byte (head, padding, payloads), so the
            // owned path skips the per-section CRCs — they exist for
            // the mapped open path, which never reads most of the file.
            let (artifact, norms) = Self::decode_v5(&full)?;
            return Ok((artifact, Some(norms)));
        }

        let dataset = get_str(&mut bytes).ok_or_else(|| fail("truncated dataset name"))?;
        if bytes.remaining() < 32 + 4 {
            return Err(fail("truncated meta"));
        }
        let n = bytes.get_u64() as usize;
        let k = bytes.get_u64() as usize;
        let dim = bytes.get_u64() as usize;
        let seed = bytes.get_u64();
        // v1 has no row-range fields: it is a full artifact by
        // definition.
        let (row_start, row_end) = if version == FORMAT_VERSION_V1 {
            (0, n)
        } else {
            if bytes.remaining() < 16 {
                return Err(fail("truncated row range"));
            }
            (bytes.get_u64() as usize, bytes.get_u64() as usize)
        };
        // v3 adds the update-lineage header; older files get a fresh
        // one anchored at their own seed.
        let (parent_seed, update_count) = if version >= FORMAT_VERSION_V3 {
            if bytes.remaining() < 16 {
                return Err(fail("truncated lineage header"));
            }
            (bytes.get_u64(), bytes.get_u64())
        } else {
            (seed, 0)
        };
        // v4 adds the compaction counter and the tombstone id list.
        let (compaction_count, tombstones) = if version >= FORMAT_VERSION_V4 {
            if bytes.remaining() < 16 {
                return Err(fail("truncated compaction header"));
            }
            let compactions = bytes.get_u64();
            let count = bytes.get_u64() as usize;
            let ids = get_u64s(&mut bytes, count).ok_or_else(|| fail("truncated tombstone ids"))?;
            (compactions, ids)
        } else {
            (0, Vec::new())
        };
        // v1/v2 wrote the weight count as u32 (the one non-u64 length
        // field of those layouts); v3+ is uniformly u64. Either way the
        // count must fit the remaining body before any allocation.
        let num_weights = if version >= FORMAT_VERSION_V3 {
            if bytes.remaining() < 8 {
                return Err(fail("truncated weight count"));
            }
            let raw = bytes.get_u64();
            usize::try_from(raw).map_err(|_| fail("weight count overflows usize"))?
        } else {
            if bytes.remaining() < 4 {
                return Err(fail("truncated weight count"));
            }
            bytes.get_u32() as usize
        };
        if num_weights
            .checked_mul(8)
            .is_none_or(|bytes_needed| bytes_needed > bytes.remaining())
        {
            return Err(fail(&format!(
                "weight count {num_weights} exceeds the remaining body"
            )));
        }
        let weights = get_f64s(&mut bytes, num_weights).ok_or_else(|| fail("truncated weights"))?;
        let laplacian = get_csr(&mut bytes)?;
        if bytes.remaining() < 8 {
            return Err(fail("truncated label count"));
        }
        let num_labels = bytes.get_u64() as usize;
        if num_labels
            .checked_mul(4)
            .is_none_or(|bytes_needed| bytes_needed > bytes.remaining())
        {
            return Err(fail(&format!(
                "label count {num_labels} exceeds the remaining body"
            )));
        }
        let labels = get_u32s(&mut bytes, num_labels).ok_or_else(|| fail("truncated labels"))?;
        // Label range (`l < k`) is enforced by the validate() call
        // below, along with every other cross-field invariant.
        let centroids = get_dense(&mut bytes)?;
        let embedding = get_dense(&mut bytes)?;
        if bytes.remaining() != 0 {
            return Err(fail("trailing bytes after payload"));
        }

        let artifact = Artifact {
            meta: ArtifactMeta {
                dataset,
                n,
                k,
                dim,
                seed,
                row_start,
                row_end,
                parent_seed,
                update_count,
                compaction_count,
            },
            weights,
            laplacian,
            labels,
            centroids,
            embedding,
            tombstones,
        };
        artifact.validate()?;
        Ok((artifact, None))
    }

    /// Decodes a v5 sectioned body from the full file bytes (header
    /// included; header fields and the whole-body CRC already
    /// verified). Returns the artifact plus its persisted norms.
    fn decode_v5(raw: &Bytes) -> Result<(Artifact, Vec<f64>)> {
        let fail = |msg: &str| ServeError::Corrupt(msg.to_string());
        let head = parse_v5_head(raw.as_ref())?;
        let rows = head.meta.rows();
        let section = |id: u32| head.sections[(id - 1) as usize];
        let slice = |s: ArtifactSection| raw.slice(s.offset..s.offset + s.len);

        let mut lap = slice(section(SECTION_LAPLACIAN));
        let laplacian = get_csr(&mut lap)?;
        if lap.remaining() != 0 {
            return Err(fail("trailing bytes in the laplacian section"));
        }

        let mut lab = slice(section(SECTION_LABELS));
        if lab.remaining() < 8 {
            return Err(fail("truncated label count"));
        }
        let num_labels = lab.get_u64() as usize;
        let labels = get_u32s(&mut lab, num_labels).ok_or_else(|| fail("truncated labels"))?;
        if lab.remaining() != 0 {
            return Err(fail("trailing bytes in the label section"));
        }

        let mut cen = slice(section(SECTION_CENTROIDS));
        let centroids = get_dense(&mut cen)?;
        if cen.remaining() != 0 {
            return Err(fail("trailing bytes in the centroid section"));
        }

        let norms_section = section(SECTION_NORMS);
        let norms = f64s_from_le(slice(norms_section).as_ref(), rows)
            .ok_or_else(|| fail("norms section length does not match the row count"))?;

        let emb_section = section(SECTION_EMBEDDING);
        let count = rows
            .checked_mul(head.meta.dim)
            .ok_or_else(|| fail("embedding shape overflow"))?;
        let data = f64s_from_le(slice(emb_section).as_ref(), count)
            .ok_or_else(|| fail("embedding section length does not match rows × dim"))?;
        let embedding = DenseMatrix::from_vec(rows, head.meta.dim, data)
            .map_err(|e| fail(&format!("embedding: {e}")))?;

        let artifact = Artifact {
            meta: head.meta,
            weights: head.weights,
            laplacian,
            labels,
            centroids,
            embedding,
            tombstones: head.tombstones,
        };
        artifact.validate()?;
        Ok((artifact, norms))
    }

    /// Cross-field consistency checks (shapes line up with the meta).
    ///
    /// # Errors
    /// [`ServeError::Corrupt`] describing the first inconsistency.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(ServeError::Corrupt(msg));
        let m = &self.meta;
        if m.row_start > m.row_end || m.row_end > m.n {
            return fail(format!(
                "row range {}..{} outside 0..{}",
                m.row_start, m.row_end, m.n
            ));
        }
        let rows = m.rows();
        if self.labels.len() != rows {
            return fail(format!(
                "{} labels for {} rows in range",
                self.labels.len(),
                rows
            ));
        }
        if let Some(&bad) = self.labels.iter().find(|&&l| l >= m.k) {
            return fail(format!("label {bad} >= k = {}", m.k));
        }
        if self.laplacian.nrows() != rows || self.laplacian.ncols() != m.n {
            return fail(format!(
                "laplacian is {}x{} for {} rows in range, n = {}",
                self.laplacian.nrows(),
                self.laplacian.ncols(),
                rows,
                m.n
            ));
        }
        if self.embedding.nrows() != rows || self.embedding.ncols() != m.dim {
            return fail(format!(
                "embedding is {}x{} for {} rows in range, dim = {}",
                self.embedding.nrows(),
                self.embedding.ncols(),
                rows,
                m.dim
            ));
        }
        if self.centroids.nrows() != m.k || self.centroids.ncols() != m.dim {
            return fail(format!(
                "centroids are {}x{} for k = {}, dim = {}",
                self.centroids.nrows(),
                self.centroids.ncols(),
                m.k,
                m.dim
            ));
        }
        if self.weights.is_empty() {
            return fail("no view weights".to_string());
        }
        for pair in self.tombstones.windows(2) {
            if pair[0] >= pair[1] {
                return fail(format!(
                    "tombstones not strictly increasing ({} then {})",
                    pair[0], pair[1]
                ));
            }
        }
        if let (Some(&first), Some(&last)) = (self.tombstones.first(), self.tombstones.last()) {
            if first < m.row_start || last >= m.row_end {
                return fail(format!(
                    "tombstones {first}..={last} outside the row range {}..{}",
                    m.row_start, m.row_end
                ));
            }
        }
        Ok(())
    }

    /// Number of tombstoned (deleted, unpurged) rows in this artifact.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// True when global row `node` is tombstoned in this artifact.
    pub fn is_tombstoned(&self, node: usize) -> bool {
        self.tombstones.binary_search(&node).is_ok()
    }

    /// Saves the artifact to `path`.
    ///
    /// # Errors
    /// I/O failures.
    pub fn save(&self, path: &Path) -> Result<()> {
        fs::write(path, self.encode()?)?;
        Ok(())
    }

    /// Loads and verifies an artifact from `path`.
    ///
    /// # Errors
    /// I/O failures and [`ServeError::Corrupt`].
    pub fn load(path: &Path) -> Result<Artifact> {
        let data = fs::read(path)?;
        Artifact::decode(Bytes::from(data))
    }

    /// [`Artifact::load`] plus the persisted per-row norms when the
    /// file is v5 (see [`Artifact::decode_with_norms`]).
    ///
    /// # Errors
    /// I/O failures and [`ServeError::Corrupt`].
    pub fn load_with_norms(path: &Path) -> Result<(Artifact, Option<Vec<f64>>)> {
        let data = fs::read(path)?;
        Artifact::decode_with_norms(Bytes::from(data))
    }

    /// Reads codec-level facts about an artifact file without decoding
    /// the payload: format version, file size, and — for v5 — the
    /// section table with per-section byte sizes. Pre-v5 files have no
    /// section table (`sections = None`).
    ///
    /// # Errors
    /// I/O failures; [`ServeError::Corrupt`] for non-SGLA files or a
    /// malformed v5 head.
    pub fn read_file_info(path: &Path) -> Result<ArtifactFileInfo> {
        let raw = fs::read(path)?;
        let fail = |msg: &str| ServeError::Corrupt(msg.to_string());
        if raw.len() < HEADER_LEN {
            return Err(fail("shorter than the fixed header"));
        }
        let magic = u32::from_be_bytes(raw[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(fail("bad magic (not an SGLA artifact)"));
        }
        let version = u16::from_be_bytes(raw[4..6].try_into().expect("2 bytes"));
        let sections = if version == FORMAT_VERSION {
            Some(parse_v5_head(&raw)?.sections.to_vec())
        } else {
            None
        };
        Ok(ArtifactFileInfo {
            version,
            file_bytes: raw.len() as u64,
            sections,
        })
    }

    /// Slices the global row range `[row_start, row_end)` out of a
    /// *full* artifact into a standalone shard artifact: labels,
    /// embedding rows, and Laplacian rows are restricted to the range;
    /// weights and centroids are carried whole.
    ///
    /// # Errors
    /// [`ServeError::InvalidArgument`] if this artifact is not full or
    /// the range is empty / out of bounds.
    pub fn shard(&self, row_start: usize, row_end: usize) -> Result<Artifact> {
        if !self.meta.is_full() {
            return Err(ServeError::InvalidArgument(
                "can only shard a full artifact".into(),
            ));
        }
        if row_start >= row_end || row_end > self.meta.n {
            return Err(ServeError::InvalidArgument(format!(
                "bad shard range {row_start}..{row_end} for n = {}",
                self.meta.n
            )));
        }
        let dim = self.meta.dim;
        let embedding = DenseMatrix::from_vec(
            row_end - row_start,
            dim,
            self.embedding.data()[row_start * dim..row_end * dim].to_vec(),
        )
        .map_err(|e| ServeError::InvalidArgument(format!("embedding slice: {e}")))?;
        // Tombstones keep their *global* ids; a shard carries the ones
        // falling inside its range.
        let lo = self.tombstones.partition_point(|&t| t < row_start);
        let hi = self.tombstones.partition_point(|&t| t < row_end);
        Ok(Artifact {
            meta: ArtifactMeta {
                row_start,
                row_end,
                ..self.meta.clone()
            },
            weights: self.weights.clone(),
            laplacian: slice_csr_rows(&self.laplacian, row_start, row_end)?,
            labels: self.labels[row_start..row_end].to_vec(),
            centroids: self.centroids.clone(),
            embedding,
            tombstones: self.tombstones[lo..hi].to_vec(),
        })
    }

    /// Conventional file name of shard `index` inside a sharded layout
    /// directory.
    pub fn shard_file_name(index: usize) -> String {
        format!("shard-{index:05}.sgla")
    }

    /// Conventional file name of the IVF index sidecar of shard
    /// `index` inside a sharded layout directory.
    pub fn shard_index_file_name(index: usize) -> String {
        format!("shard-{index:05}.ivf")
    }

    /// Sidecar index path of a monolithic artifact file: the artifact
    /// path with `.ivf` appended (`toy.sgla` → `toy.sgla.ivf`), so the
    /// pairing survives any artifact file name.
    pub fn index_sidecar_path(artifact_path: &Path) -> std::path::PathBuf {
        let mut s = artifact_path.as_os_str().to_os_string();
        s.push(".ivf");
        std::path::PathBuf::from(s)
    }

    /// Trains an IVF approximate top-k index over this artifact's
    /// embedding rows (full artifact or shard — the index covers
    /// whatever row range the artifact does).
    ///
    /// # Errors
    /// [`ServeError::InvalidArgument`] if index construction fails.
    pub fn build_ivf(&self, config: &mvag_index::IvfConfig) -> Result<mvag_index::IvfIndex> {
        mvag_index::IvfIndex::train(&self.embedding, self.meta.row_start, self.meta.n, config)
            .map_err(|e| ServeError::InvalidArgument(format!("building IVF index: {e}")))
    }

    /// Conventional manifest file name inside a sharded layout
    /// directory.
    pub const MANIFEST_FILE: &'static str = "manifest.json";

    /// Writes this (full) artifact as a sharded layout: `shards`
    /// balanced contiguous row-range shard files plus a
    /// `manifest.json`, all inside directory `dir` (created if
    /// missing). `shards` is clamped to `1..=n`. Returns the manifest.
    ///
    /// Every shard file is a self-contained v2 artifact; the manifest
    /// records each file's byte size and whole-file CRC-32 so a router
    /// can verify shards before decoding them.
    ///
    /// ```
    /// use sgla_serve::{Artifact, TrainConfig};
    ///
    /// let mvag = mvag_data::toy_mvag(40, 2, 7);
    /// let mut config = TrainConfig::default();
    /// config.embed.dim = 4;
    /// let artifact = Artifact::train(&mvag, &config).unwrap();
    ///
    /// let dir = std::env::temp_dir().join(format!("sgla-doc-sharded-{}", std::process::id()));
    /// let manifest = artifact.save_sharded(&dir, 3).unwrap();
    /// assert_eq!(manifest.shards.len(), 3);
    /// assert_eq!(manifest.shards.iter().map(|s| s.rows()).sum::<usize>(), 40);
    /// std::fs::remove_dir_all(&dir).ok();
    /// ```
    ///
    /// # Errors
    /// [`ServeError::InvalidArgument`] if this artifact is not full;
    /// I/O failures writing the files.
    pub fn save_sharded(&self, dir: &Path, shards: usize) -> Result<ShardManifest> {
        if !self.meta.is_full() {
            return Err(ServeError::InvalidArgument(
                "can only shard a full artifact".into(),
            ));
        }
        let n = self.meta.n;
        let shards = shards.clamp(1, n.max(1));
        fs::create_dir_all(dir)?;
        // Balanced split: the first `n % shards` shards get one extra
        // row, so sizes differ by at most one.
        let base = n / shards;
        let extra = n % shards;
        let mut entries = Vec::with_capacity(shards);
        let mut row_start = 0usize;
        for i in 0..shards {
            let rows = base + usize::from(i < extra);
            let row_end = row_start + rows;
            let shard = self.shard(row_start, row_end)?;
            let encoded = shard.encode()?;
            let file = Self::shard_file_name(i);
            fs::write(dir.join(&file), encoded.as_ref())?;
            entries.push(ShardEntry {
                file,
                row_start,
                row_end,
                bytes: encoded.len() as u64,
                crc32: crc32(encoded.as_ref()),
                tombstones: shard.tombstones.len(),
                ..Default::default()
            });
            row_start = row_end;
        }
        let manifest = ShardManifest {
            dataset: self.meta.dataset.clone(),
            n,
            k: self.meta.k,
            dim: self.meta.dim,
            seed: self.meta.seed,
            artifact_format_version: FORMAT_VERSION,
            update_count: self.meta.update_count,
            compaction_count: self.meta.compaction_count,
            id_map: None,
            shards: entries,
        };
        manifest
            .validate()
            .map_err(|e| ServeError::Corrupt(e.to_string()))?;
        manifest
            .save(&dir.join(Self::MANIFEST_FILE))
            .map_err(|e| ServeError::Server(format!("writing manifest: {e}")))?;
        Ok(manifest)
    }
}

/// Up-front trainability gate: with `n <= 2` the embedding dimension
/// cannot satisfy `dim + 1 < n` even after clamping (`dim >= 1`
/// always), so the eigensolver would fail deep inside the pipeline
/// with an opaque message. Reject early and clearly instead.
pub(crate) fn check_trainable(n: usize) -> Result<()> {
    if n <= 2 {
        return Err(ServeError::Train(sgla_core::SglaError::InvalidArgument(
            format!(
                "graph has n = {n} nodes; training needs n >= 3 (the embedding requires \
                 dim + 1 < n with dim >= 1)"
            ),
        )));
    }
    Ok(())
}

/// The embedding parameters actually used for an `n`-node graph: the
/// configured dimension clamped so tiny demo graphs stay embeddable
/// (`dim + 1 < n` must hold).
fn clamp_embed_params(config: &TrainConfig, n: usize) -> EmbedParams {
    let mut embed_params = config.embed.clone();
    embed_params.dim = embed_params.dim.min(n.saturating_sub(2)).max(1);
    embed_params
}

/// Extracts rows `[row_start, row_end)` of a CSR matrix as a new
/// `(row_end - row_start) × ncols` CSR matrix.
fn slice_csr_rows(m: &CsrMatrix, row_start: usize, row_end: usize) -> Result<CsrMatrix> {
    // A contiguous row range of a CSR matrix is two contiguous slices.
    let base = m.indptr()[row_start];
    let end = m.indptr()[row_end];
    let indptr: Vec<usize> = m.indptr()[row_start..=row_end]
        .iter()
        .map(|&p| p - base)
        .collect();
    CsrMatrix::from_raw_parts(
        row_end - row_start,
        m.ncols(),
        indptr,
        m.column_indices()[base..end].to_vec(),
        m.values()[base..end].to_vec(),
    )
    .map_err(|e| ServeError::InvalidArgument(format!("laplacian slice: {e}")))
}

/// Merges two sorted id lists into one sorted list.
fn merge_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// [`centroids_of`] with tombstoned rows excluded from the means, so a
/// deletion moves its cluster's centroid exactly as a purge would.
fn centroids_of_masked(
    embedding: &DenseMatrix,
    labels: &[usize],
    k: usize,
    tombstones: &[usize],
) -> Result<DenseMatrix> {
    if tombstones.is_empty() {
        return centroids_of(embedding, labels, k);
    }
    let dim = embedding.ncols();
    let live: Vec<usize> = {
        let mut dead = vec![false; labels.len()];
        for &t in tombstones {
            if t < dead.len() {
                dead[t] = true;
            }
        }
        (0..labels.len()).filter(|&i| !dead[i]).collect()
    };
    let mut filtered = DenseMatrix::zeros(live.len(), dim);
    let mut live_labels = Vec::with_capacity(live.len());
    for (new, &old) in live.iter().enumerate() {
        filtered.row_mut(new).copy_from_slice(embedding.row(old));
        live_labels.push(labels[old]);
    }
    centroids_of(&filtered, &live_labels, k)
}

/// The live principal submatrix of a full-artifact Laplacian: rows and
/// columns restricted to `live` (old ids), columns remapped through
/// `id_map` so the result is `new_n × new_n`.
pub(crate) fn compact_csr(
    m: &CsrMatrix,
    live: &[usize],
    id_map: &mvag_data::IdMap,
) -> Result<CsrMatrix> {
    let mut indptr = Vec::with_capacity(live.len() + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    indptr.push(0);
    for &old in live {
        for (&c, &v) in m.row_cols(old).iter().zip(m.row_vals(old)) {
            if let Some(new_c) = id_map.map(c) {
                cols.push(new_c);
                vals.push(v);
            }
        }
        indptr.push(cols.len());
    }
    CsrMatrix::from_raw_parts(live.len(), id_map.new_n, indptr, cols, vals)
        .map_err(|e| ServeError::InvalidArgument(format!("compacted laplacian: {e}")))
}

/// Mean embedding row per cluster.
fn centroids_of(embedding: &DenseMatrix, labels: &[usize], k: usize) -> Result<DenseMatrix> {
    let dim = embedding.ncols();
    let mut sums = DenseMatrix::zeros(k, dim);
    let mut counts = vec![0usize; k];
    for (i, &label) in labels.iter().enumerate() {
        if label >= k {
            return Err(ServeError::InvalidArgument(format!(
                "label {label} >= k = {k}"
            )));
        }
        counts[label] += 1;
        let row = embedding.row(i);
        let dst = sums.row_mut(label);
        for (d, &v) in row.iter().enumerate() {
            dst[d] += v;
        }
    }
    for (c, &count) in counts.iter().enumerate() {
        if count > 0 {
            let inv = 1.0 / count as f64;
            for v in sums.row_mut(c) {
                *v *= inv;
            }
        }
    }
    Ok(sums)
}

// ---------------------------------------------------------------------
// Codec helpers (same style as mvag_data::io, plus CRC-32).

pub use mvag_data::codec::crc32;

fn put_csr(buf: &mut BytesMut, m: &CsrMatrix) {
    buf.put_u64(m.nrows() as u64);
    buf.put_u64(m.ncols() as u64);
    buf.put_u64(m.nnz() as u64);
    for &p in m.indptr() {
        buf.put_u64(p as u64);
    }
    for r in 0..m.nrows() {
        for &c in m.row_cols(r) {
            buf.put_u64(c as u64);
        }
    }
    for r in 0..m.nrows() {
        for &v in m.row_vals(r) {
            buf.put_f64(v);
        }
    }
}

fn get_csr(bytes: &mut Bytes) -> Result<CsrMatrix> {
    let fail = |msg: &str| ServeError::Corrupt(format!("laplacian: {msg}"));
    if bytes.remaining() < 24 {
        return Err(fail("truncated header"));
    }
    let nrows = bytes.get_u64() as usize;
    let ncols = bytes.get_u64() as usize;
    let nnz = bytes.get_u64() as usize;
    let indptr = get_u64s(
        bytes,
        nrows.checked_add(1).ok_or_else(|| fail("bad nrows"))?,
    )
    .ok_or_else(|| fail("truncated indptr"))?;
    let cols = get_u64s(bytes, nnz).ok_or_else(|| fail("truncated column indices"))?;
    let vals = get_f64s(bytes, nnz).ok_or_else(|| fail("truncated values"))?;
    CsrMatrix::from_raw_parts(nrows, ncols, indptr, cols, vals)
        .map_err(|e| fail(&format!("invalid structure: {e}")))
}

fn put_dense(buf: &mut BytesMut, m: &DenseMatrix) {
    buf.put_u64(m.nrows() as u64);
    buf.put_u64(m.ncols() as u64);
    for &v in m.data() {
        buf.put_f64(v);
    }
}

fn get_dense(bytes: &mut Bytes) -> Result<DenseMatrix> {
    let fail = |msg: &str| ServeError::Corrupt(format!("dense matrix: {msg}"));
    if bytes.remaining() < 16 {
        return Err(fail("truncated header"));
    }
    let nrows = bytes.get_u64() as usize;
    let ncols = bytes.get_u64() as usize;
    let count = nrows
        .checked_mul(ncols)
        .ok_or_else(|| fail("shape overflow"))?;
    let data = get_f64s(bytes, count).ok_or_else(|| fail("truncated data"))?;
    DenseMatrix::from_vec(nrows, ncols, data).map_err(|e| fail(&format!("bad shape: {e}")))
}

/// Bounds-checked big-endian cursor over a *borrowed* byte slice. The
/// v5 head parser runs over memory-mapped files, where copying the
/// buffer into an owned `Bytes` would fault every page the map exists
/// to avoid — so the head is parsed in place.
struct SliceCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SliceCursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        SliceCursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_be_bytes(s.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_be_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_be_bytes(s.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let s = self.take(len)?;
        String::from_utf8(s.to_vec()).ok()
    }

    /// `count` u64s as usizes; `None` if fewer bytes remain
    /// (overflow-safe for hostile counts, like `codec::get_u64s`).
    fn u64s(&mut self, count: usize) -> Option<Vec<usize>> {
        if count
            .checked_mul(8)
            .is_none_or(|need| self.remaining() < need)
        {
            return None;
        }
        Some(
            (0..count)
                .map(|_| self.u64().expect("checked") as usize)
                .collect(),
        )
    }

    fn f64s(&mut self, count: usize) -> Option<Vec<f64>> {
        if count
            .checked_mul(8)
            .is_none_or(|need| self.remaining() < need)
        {
            return None;
        }
        Some((0..count).map(|_| self.f64().expect("checked")).collect())
    }
}

/// Parses the head of a v5 artifact from the full file bytes: the
/// fixed container header, meta, tombstones, weights, and the section
/// table — then structurally validates the table (exact in-order ids,
/// 64-byte-aligned offsets, minimal padding, no overlap, payloads end
/// exactly at end of file).
///
/// The head CRC is *returned*, not checked: the owned decoder's
/// whole-body CRC subsumes it, and the mapped open path verifies it
/// explicitly via [`V5Head::verify_head_crc`].
pub(crate) fn parse_v5_head(raw: &[u8]) -> Result<V5Head> {
    let fail = |msg: String| ServeError::Corrupt(msg);
    let fails = |msg: &str| ServeError::Corrupt(msg.to_string());
    let mut cur = SliceCursor::new(raw);
    if cur.remaining() < HEADER_LEN {
        return Err(fails("shorter than the fixed header"));
    }
    if cur.u32() != Some(MAGIC) {
        return Err(fails("bad magic (not an SGLA artifact)"));
    }
    let version = cur.u16().expect("header length checked");
    if version != FORMAT_VERSION {
        return Err(fail(format!(
            "not a v{FORMAT_VERSION} artifact (file is v{version})"
        )));
    }
    let body_len = cur.u64().expect("header length checked");
    let _body_crc = cur.u32().expect("header length checked");
    if cur.remaining() as u64 != body_len {
        return Err(fail(format!(
            "body length mismatch: header says {body_len}, got {}",
            cur.remaining()
        )));
    }

    let dataset = cur.str().ok_or_else(|| fails("truncated dataset name"))?;
    let mut meta_words = [0u64; 9];
    for w in &mut meta_words {
        *w = cur.u64().ok_or_else(|| fails("truncated meta"))?;
    }
    let [n, k, dim, seed, row_start, row_end, parent_seed, update_count, compaction_count] =
        meta_words;
    let tomb_count = cur
        .u64()
        .ok_or_else(|| fails("truncated compaction header"))? as usize;
    let tombstones = cur
        .u64s(tomb_count)
        .ok_or_else(|| fails("truncated tombstone ids"))?;
    let num_weights = cur.u64().ok_or_else(|| fails("truncated weight count"))? as usize;
    let weights = cur.f64s(num_weights).ok_or_else(|| {
        fail(format!(
            "weight count {num_weights} exceeds the remaining body"
        ))
    })?;
    let section_count = cur.u64().ok_or_else(|| fails("truncated section count"))? as usize;
    if section_count != SECTION_COUNT {
        return Err(fail(format!(
            "section count {section_count} (v{FORMAT_VERSION} has exactly {SECTION_COUNT})"
        )));
    }
    let mut sections = [ArtifactSection {
        id: 0,
        offset: 0,
        len: 0,
        crc32: 0,
    }; SECTION_COUNT];
    for (i, slot) in sections.iter_mut().enumerate() {
        if cur.remaining() < SECTION_ENTRY_LEN {
            return Err(fails("truncated section table"));
        }
        let id = cur.u32().expect("entry length checked");
        let _reserved = cur.u32().expect("entry length checked");
        let offset = cur.u64().expect("entry length checked") as usize;
        let len = cur.u64().expect("entry length checked") as usize;
        let crc = cur.u32().expect("entry length checked");
        let _reserved = cur.u32().expect("entry length checked");
        if id as usize != i + 1 {
            return Err(fail(format!(
                "section table out of order (entry {i} has id {id})"
            )));
        }
        *slot = ArtifactSection {
            id,
            offset,
            len,
            crc32: crc,
        };
    }
    let head_crc = cur.u32().ok_or_else(|| fails("truncated head checksum"))?;
    let head_end = cur.pos;

    // Table geometry: each section starts at the first 64-byte
    // boundary after its predecessor (so padding is bounded and no
    // bytes can hide between sections) and the last ends exactly at
    // end of file.
    let mut prev_end = head_end;
    for s in &sections {
        if s.offset % SECTION_ALIGN != 0 {
            return Err(fail(format!(
                "{} section offset {} is not {SECTION_ALIGN}-byte aligned",
                s.name(),
                s.offset
            )));
        }
        let expected =
            align_up(prev_end, SECTION_ALIGN).ok_or_else(|| fails("section offset overflow"))?;
        if s.offset != expected {
            return Err(fail(format!(
                "{} section at offset {} (expected {expected})",
                s.name(),
                s.offset
            )));
        }
        prev_end = s
            .offset
            .checked_add(s.len)
            .ok_or_else(|| fails("section length overflow"))?;
        if prev_end > raw.len() {
            return Err(fail(format!(
                "{} section extends past end of file",
                s.name()
            )));
        }
    }
    if prev_end != raw.len() {
        return Err(fails("trailing bytes after the last section"));
    }

    Ok(V5Head {
        meta: ArtifactMeta {
            dataset,
            n: n as usize,
            k: k as usize,
            dim: dim as usize,
            seed,
            row_start: row_start as usize,
            row_end: row_end as usize,
            parent_seed,
            update_count,
            compaction_count,
        },
        weights,
        tombstones,
        sections,
        head_crc,
        head_end,
    })
}

impl V5Head {
    /// Verifies the head CRC against the file bytes it was parsed
    /// from. The mapped open path calls this (plus the per-section
    /// CRCs of the sections it actually decodes) instead of the
    /// whole-body CRC, which would fault every page of the file.
    ///
    /// # Errors
    /// [`ServeError::Corrupt`] on mismatch.
    pub(crate) fn verify_head_crc(&self, raw: &[u8]) -> Result<()> {
        let got = crc32(&raw[HEADER_LEN..self.head_end - 4]);
        if got != self.head_crc {
            return Err(ServeError::Corrupt(
                "head checksum mismatch (artifact head bytes were altered)".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvag_graph::toy::toy_mvag;

    fn small_artifact() -> Artifact {
        let mvag = toy_mvag(60, 2, 11);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        Artifact::train(&mvag, &config).unwrap()
    }

    #[test]
    fn train_produces_consistent_shapes() {
        let a = small_artifact();
        assert_eq!(a.meta.n, 60);
        assert_eq!(a.meta.k, 2);
        assert_eq!(a.meta.dim, 8);
        assert_eq!(a.weights.len(), 3);
        a.validate().unwrap();
        let sum: f64 = a.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "weights sum {sum}");
    }

    #[test]
    fn encode_decode_bit_exact() {
        let a = small_artifact();
        let bytes = a.encode().unwrap();
        let back = Artifact::decode(bytes).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn file_roundtrip() {
        let a = small_artifact();
        let dir = std::env::temp_dir().join("sgla-artifact-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.sgla");
        a.save(&path).unwrap();
        let back = Artifact::load(&path).unwrap();
        assert_eq!(a, back);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let a = small_artifact();
        let raw = a.encode().unwrap().to_vec();
        // Flip one byte somewhere in the body (after the 18-byte header).
        for &pos in &[18, raw.len() / 2, raw.len() - 1] {
            let mut bad = raw.clone();
            bad[pos] ^= 0x01;
            let err = Artifact::decode(Bytes::from(bad)).unwrap_err();
            assert!(
                matches!(err, ServeError::Corrupt(_)),
                "pos {pos}: unexpected {err}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let a = small_artifact();
        let raw = a.encode().unwrap().to_vec();
        let mut bad = raw.clone();
        bad[0] = b'X';
        assert!(matches!(
            Artifact::decode(Bytes::from(bad)).unwrap_err(),
            ServeError::Corrupt(_)
        ));
        let mut bad = raw.clone();
        bad[4] = 0xff; // version hi byte
        let err = Artifact::decode(Bytes::from(bad)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let a = small_artifact();
        let raw = a.encode().unwrap().to_vec();
        // Every 97th prefix plus all short ones: exhaustive is slow at
        // this size, strided catches the same class of bounds bugs.
        for len in (0..raw.len()).step_by(97).chain(0..32) {
            let prefix = Bytes::from(raw[..len].to_vec());
            assert!(Artifact::decode(prefix).is_err(), "prefix of {len} decoded");
        }
    }

    /// Byte-for-byte replica of the PR-1 era (v1) encoder: the same
    /// body layout minus the row-range fields. Kept in tests as the
    /// backward-compatibility oracle.
    fn encode_v1(a: &Artifact) -> Bytes {
        assert!(a.meta.is_full(), "v1 can only describe full artifacts");
        let mut body = BytesMut::with_capacity(1 << 16);
        put_str(&mut body, &a.meta.dataset);
        body.put_u64(a.meta.n as u64);
        body.put_u64(a.meta.k as u64);
        body.put_u64(a.meta.dim as u64);
        body.put_u64(a.meta.seed);
        body.put_u32(a.weights.len() as u32);
        for &w in &a.weights {
            body.put_f64(w);
        }
        put_csr(&mut body, &a.laplacian);
        body.put_u64(a.labels.len() as u64);
        for &l in &a.labels {
            body.put_u32(l as u32);
        }
        put_dense(&mut body, &a.centroids);
        put_dense(&mut body, &a.embedding);
        let body = body.freeze();
        let mut out = BytesMut::with_capacity(body.len() + 18);
        out.put_u32(MAGIC);
        out.put_u16(FORMAT_VERSION_V1);
        out.put_u64(body.len() as u64);
        out.put_u32(crc32(body.as_ref()));
        out.put_slice(body.as_ref());
        out.freeze()
    }

    #[test]
    fn v1_artifact_still_decodes_bit_exactly() {
        let a = small_artifact();
        let back = Artifact::decode(encode_v1(&a)).unwrap();
        // A v1 file is normalized to a full-range v2 artifact equal in
        // every field to the artifact that produced it.
        assert_eq!(a, back);
        assert!(back.meta.is_full());
        // Truncations of the v1 stream still fail cleanly.
        let raw = encode_v1(&a).to_vec();
        for len in (0..raw.len()).step_by(131).chain(0..24) {
            assert!(
                Artifact::decode(Bytes::from(raw[..len].to_vec())).is_err(),
                "v1 prefix of {len} decoded"
            );
        }
    }

    /// Byte-for-byte replica of the PR-3 era (v2) encoder: row-range
    /// fields, `u32` weight count, no lineage header. Kept in tests as
    /// the second backward-compatibility oracle.
    fn encode_v2(a: &Artifact) -> Bytes {
        let mut body = BytesMut::with_capacity(1 << 16);
        put_str(&mut body, &a.meta.dataset);
        body.put_u64(a.meta.n as u64);
        body.put_u64(a.meta.k as u64);
        body.put_u64(a.meta.dim as u64);
        body.put_u64(a.meta.seed);
        body.put_u64(a.meta.row_start as u64);
        body.put_u64(a.meta.row_end as u64);
        body.put_u32(a.weights.len() as u32);
        for &w in &a.weights {
            body.put_f64(w);
        }
        put_csr(&mut body, &a.laplacian);
        body.put_u64(a.labels.len() as u64);
        for &l in &a.labels {
            body.put_u32(l as u32);
        }
        put_dense(&mut body, &a.centroids);
        put_dense(&mut body, &a.embedding);
        let body = body.freeze();
        let mut out = BytesMut::with_capacity(body.len() + 18);
        out.put_u32(MAGIC);
        out.put_u16(FORMAT_VERSION_V2);
        out.put_u64(body.len() as u64);
        out.put_u32(crc32(body.as_ref()));
        out.put_slice(body.as_ref());
        out.freeze()
    }

    #[test]
    fn v2_artifact_still_decodes_bit_exactly() {
        let a = small_artifact();
        let back = Artifact::decode(encode_v2(&a)).unwrap();
        // A fresh artifact's lineage is exactly what v2 normalization
        // synthesizes (parent_seed = seed, update_count = 0), so the
        // round-trip is equal in every field — shards included.
        assert_eq!(a, back);
        let shard = a.shard(5, 30).unwrap();
        assert_eq!(shard, Artifact::decode(encode_v2(&shard)).unwrap());
        // Truncations of the v2 stream still fail cleanly.
        let raw = encode_v2(&a).to_vec();
        for len in (0..raw.len()).step_by(131).chain(0..24) {
            assert!(
                Artifact::decode(Bytes::from(raw[..len].to_vec())).is_err(),
                "v2 prefix of {len} decoded"
            );
        }
    }

    /// Byte-for-byte replica of the PR-5 era (v3) encoder: lineage
    /// header, uniform `u64` lengths, no compaction/tombstone section.
    /// Kept in tests as the third backward-compatibility oracle.
    fn encode_v3(a: &Artifact) -> Bytes {
        assert!(
            a.tombstones.is_empty() && a.meta.compaction_count == 0,
            "v3 cannot carry tombstones or a compaction count"
        );
        let mut body = BytesMut::with_capacity(1 << 16);
        put_str(&mut body, &a.meta.dataset);
        body.put_u64(a.meta.n as u64);
        body.put_u64(a.meta.k as u64);
        body.put_u64(a.meta.dim as u64);
        body.put_u64(a.meta.seed);
        body.put_u64(a.meta.row_start as u64);
        body.put_u64(a.meta.row_end as u64);
        body.put_u64(a.meta.parent_seed);
        body.put_u64(a.meta.update_count);
        body.put_u64(a.weights.len() as u64);
        for &w in &a.weights {
            body.put_f64(w);
        }
        put_csr(&mut body, &a.laplacian);
        body.put_u64(a.labels.len() as u64);
        for &l in &a.labels {
            body.put_u32(l as u32);
        }
        put_dense(&mut body, &a.centroids);
        put_dense(&mut body, &a.embedding);
        let body = body.freeze();
        let mut out = BytesMut::with_capacity(body.len() + 18);
        out.put_u32(MAGIC);
        out.put_u16(FORMAT_VERSION_V3);
        out.put_u64(body.len() as u64);
        out.put_u32(crc32(body.as_ref()));
        out.put_slice(body.as_ref());
        out.freeze()
    }

    #[test]
    fn v3_artifact_still_decodes_bit_exactly() {
        let mut a = small_artifact();
        a.meta.parent_seed = 99;
        a.meta.update_count = 4;
        let back = Artifact::decode(encode_v3(&a)).unwrap();
        assert_eq!(a, back);
        assert!(back.tombstones.is_empty());
        assert_eq!(back.meta.compaction_count, 0);
        let shard = a.shard(5, 30).unwrap();
        assert_eq!(shard, Artifact::decode(encode_v3(&shard)).unwrap());
        // Truncations of the v3 stream still fail cleanly.
        let raw = encode_v3(&a).to_vec();
        for len in (0..raw.len()).step_by(131).chain(0..24) {
            assert!(
                Artifact::decode(Bytes::from(raw[..len].to_vec())).is_err(),
                "v3 prefix of {len} decoded"
            );
        }
    }

    #[test]
    fn tombstones_roundtrip_and_validate() {
        let mut a = small_artifact();
        a.tombstones = vec![3, 17, 42];
        a.meta.compaction_count = 2;
        a.validate().unwrap();
        let back = Artifact::decode(a.encode().unwrap()).unwrap();
        assert_eq!(a, back);
        assert_eq!(back.tombstone_count(), 3);
        assert!(back.is_tombstoned(17) && !back.is_tombstoned(16));
        // Shards carry the tombstones inside their range, global ids.
        let shard = a.shard(10, 50).unwrap();
        assert_eq!(shard.tombstones, vec![17, 42]);
        assert_eq!(shard, Artifact::decode(shard.encode().unwrap()).unwrap());
        // Unsorted or out-of-range tombstones are rejected.
        let mut bad = a.clone();
        bad.tombstones = vec![17, 3];
        assert!(bad.validate().is_err());
        let mut bad = a.clone();
        bad.tombstones = vec![a.meta.n];
        assert!(bad.validate().is_err());
    }

    #[test]
    fn compact_purges_tombstones_and_preserves_answers() {
        let mut a = small_artifact();
        a.tombstones = vec![0, 25, 59];
        let (compacted, id_map) = a.compact().unwrap();
        compacted.validate().unwrap();
        assert_eq!(compacted.meta.n, 57);
        assert_eq!(compacted.meta.compaction_count, 1);
        assert_eq!(compacted.meta.update_count, a.meta.update_count);
        assert_eq!(compacted.meta.parent_seed, a.meta.parent_seed);
        assert!(compacted.tombstones.is_empty());
        assert_eq!(compacted.weights, a.weights);
        assert_eq!(compacted.centroids, a.centroids);
        assert_eq!(id_map.old_n, 60);
        assert_eq!(id_map.new_n, 57);
        // Every live row's label and embedding carried over verbatim.
        for old in 0..a.meta.n {
            if let Some(new) = id_map.map(old) {
                assert_eq!(compacted.labels[new], a.labels[old]);
                assert_eq!(compacted.embedding.row(new), a.embedding.row(old));
            }
        }
        // The Laplacian is the live principal submatrix.
        for old in 1..25 {
            let new = id_map.map(old).unwrap();
            let expect: Vec<(usize, f64)> = a
                .laplacian
                .row_cols(old)
                .iter()
                .zip(a.laplacian.row_vals(old))
                .filter_map(|(&c, &v)| id_map.map(c).map(|nc| (nc, v)))
                .collect();
            let got: Vec<(usize, f64)> = compacted
                .laplacian
                .row_cols(new)
                .iter()
                .zip(compacted.laplacian.row_vals(new))
                .map(|(&c, &v)| (c, v))
                .collect();
            assert_eq!(got, expect, "row {old}");
        }
        // Compacting a clean artifact is the identity plus the bump.
        let (idem, map2) = compacted.compact().unwrap();
        assert_eq!(idem.meta.compaction_count, 2);
        assert_eq!(idem.labels, compacted.labels);
        assert_eq!(idem.embedding, compacted.embedding);
        assert!(map2.purged.is_empty());
        // Shards cannot be compacted directly.
        assert!(a.shard(0, 10).unwrap().compact().is_err());
    }

    #[test]
    fn update_rejects_tombstone_conflicts() {
        use mvag_graph::DeltaEdit;
        let mvag = toy_mvag(60, 2, 11);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        let (mut artifact, views) = Artifact::train_with_views(&mvag, &config).unwrap();
        artifact.tombstones = vec![7];
        // Detach node 7 in the base graph so it matches the artifact's
        // view of the world.
        let base = {
            let detach = MvagDelta {
                removed_nodes: vec![7],
                views: mvag
                    .views()
                    .iter()
                    .map(|v| match v {
                        mvag_graph::View::Graph(_) => mvag_graph::ViewDelta::Edges(vec![]),
                        mvag_graph::View::Attributes(x) => {
                            mvag_graph::ViewDelta::Rows(DenseMatrix::zeros(0, x.ncols()))
                        }
                    })
                    .collect(),
                added_labels: Some(vec![]),
                ..Default::default()
            };
            mvag.apply_delta(&detach).unwrap()
        };
        let reject = |delta: &MvagDelta| {
            let err = artifact.update(&views, &base, delta, &config).unwrap_err();
            assert!(err.to_string().contains("tombstoned"), "{err}");
        };
        let empty_views = |mvag: &Mvag| -> Vec<mvag_graph::ViewDelta> {
            mvag.views()
                .iter()
                .map(|v| match v {
                    mvag_graph::View::Graph(_) => mvag_graph::ViewDelta::Edges(vec![]),
                    mvag_graph::View::Attributes(x) => {
                        mvag_graph::ViewDelta::Rows(DenseMatrix::zeros(0, x.ncols()))
                    }
                })
                .collect()
        };
        // Re-removing a dead node.
        reject(&MvagDelta {
            removed_nodes: vec![7],
            views: empty_views(&base),
            ..Default::default()
        });
        // Editing an edge of a dead node.
        reject(&MvagDelta {
            views: empty_views(&base),
            edits: vec![DeltaEdit::EdgeWeight {
                view: 0,
                u: 7,
                v: 9,
                w: 1.0,
            }],
            ..Default::default()
        });
        // Appending an edge to a dead node (attr views get the one
        // appended row they need so only the tombstone check can fire).
        let mut views_delta = empty_views(&base);
        views_delta[0] = mvag_graph::ViewDelta::Edges(vec![(7, 60, 1.0)]);
        views_delta = views_delta
            .into_iter()
            .map(|v| match v {
                mvag_graph::ViewDelta::Rows(x) => {
                    mvag_graph::ViewDelta::Rows(DenseMatrix::zeros(1, x.ncols()))
                }
                other => other,
            })
            .collect();
        reject(&MvagDelta::append(1, views_delta, Some(vec![0])));
    }

    #[test]
    fn lineage_header_roundtrips_and_survives_sharding() {
        let mut a = small_artifact();
        assert_eq!(a.meta.parent_seed, a.meta.seed);
        assert_eq!(a.meta.update_count, 0);
        a.meta.parent_seed = 777;
        a.meta.update_count = 5;
        let back = Artifact::decode(a.encode().unwrap()).unwrap();
        assert_eq!(back.meta.parent_seed, 777);
        assert_eq!(back.meta.update_count, 5);
        let shard = a.shard(0, 10).unwrap();
        assert_eq!(shard.meta.parent_seed, 777);
        assert_eq!(shard.meta.update_count, 5);
    }

    #[test]
    fn label_overflow_is_a_typed_encode_error() {
        let mut a = small_artifact();
        // Hand-built inconsistent state: a label that cannot fit the
        // u32 wire format must error, not silently truncate to 1.
        a.labels[3] = (u32::MAX as usize) + 2;
        let err = a.encode().unwrap_err();
        assert!(
            matches!(err, ServeError::InvalidArgument(_)),
            "unexpected {err}"
        );
        assert!(err.to_string().contains("u32::MAX"), "{err}");
    }

    #[test]
    fn out_of_range_label_rejected_on_decode() {
        let a = small_artifact();
        let raw = a.encode().unwrap().to_vec();
        // Locate label 0 through the v5 section table (the label
        // section payload is a u64 count, then the u32 labels).
        let head = parse_v5_head(&raw).unwrap();
        let first_label_at = head.sections[1].offset + 8;
        let mut bad = raw.clone();
        // Overwrite label 0 with k (out of range) and re-stamp the CRC
        // so only the label check can reject it.
        bad[first_label_at..first_label_at + 4].copy_from_slice(&(a.meta.k as u32).to_be_bytes());
        let crc = crc32(&bad[18..]);
        bad[14..18].copy_from_slice(&crc.to_be_bytes());
        let err = Artifact::decode(Bytes::from(bad)).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(_)), "unexpected {err}");
        assert!(err.to_string().contains(">= k"), "{err}");
    }

    #[test]
    fn corrupt_length_fields_error_instead_of_misframing() {
        let a = small_artifact();
        let raw = a.encode().unwrap().to_vec();
        // The u64 weight count lives right after the fixed meta:
        // 18-byte container header, dataset string (4 + len), 9 meta
        // u64s, then the (empty) tombstone section's count u64.
        let weights_at = 18 + 4 + a.meta.dataset.len() + 8 * 10;
        for huge in [u64::MAX, (raw.len() as u64) * 2] {
            let mut bad = raw.clone();
            bad[weights_at..weights_at + 8].copy_from_slice(&huge.to_be_bytes());
            let crc = crc32(&bad[18..]);
            bad[14..18].copy_from_slice(&crc.to_be_bytes());
            let err = Artifact::decode(Bytes::from(bad)).unwrap_err();
            assert!(matches!(err, ServeError::Corrupt(_)), "unexpected {err}");
            assert!(err.to_string().contains("weight count"), "{err}");
        }
    }

    /// v4 files (the flat pre-section layout) produced by the retained
    /// legacy writer still decode bit-exactly, tombstones included.
    #[test]
    fn v4_artifact_still_decodes_bit_exactly() {
        let mut a = small_artifact();
        a.tombstones = vec![2, 9, 44];
        a.meta.compaction_count = 3;
        a.meta.update_count = 7;
        let encoded = a.encode_v4().unwrap();
        assert_eq!(encoded.as_ref()[4..6], FORMAT_VERSION_V4.to_be_bytes());
        let (back, norms) = Artifact::decode_with_norms(encoded).unwrap();
        assert_eq!(a, back);
        assert!(norms.is_none(), "v4 files carry no norms section");
        let shard = a.shard(5, 30).unwrap();
        assert_eq!(shard, Artifact::decode(shard.encode_v4().unwrap()).unwrap());
        // Truncations of the v4 stream still fail cleanly.
        let raw = a.encode_v4().unwrap().to_vec();
        for len in (0..raw.len()).step_by(131).chain(0..24) {
            assert!(
                Artifact::decode(Bytes::from(raw[..len].to_vec())).is_err(),
                "v4 prefix of {len} decoded"
            );
        }
    }

    /// The v5 norms section holds exactly the per-row Euclidean norms
    /// the engine would otherwise compute at load time.
    #[test]
    fn v5_persisted_norms_match_recomputation() {
        let mut a = small_artifact();
        a.tombstones = vec![7, 30];
        let (back, norms) = Artifact::decode_with_norms(a.encode().unwrap()).unwrap();
        assert_eq!(a, back);
        let norms = norms.expect("v5 persists norms");
        assert_eq!(norms.len(), a.meta.rows());
        for (r, &got) in norms.iter().enumerate() {
            let want = mvag_sparse::vecops::norm2(a.embedding.row(r));
            assert_eq!(got.to_bits(), want.to_bits(), "row {r}");
        }
    }

    /// The v5 section table is the load-bearing structure of the
    /// format: every offset is 64-byte aligned, sections are in order
    /// with minimal padding, and the layout is rejected wholesale when
    /// an offset is bent out of alignment.
    #[test]
    fn v5_section_table_is_aligned_and_rejects_misalignment() {
        let a = small_artifact();
        let raw = a.encode().unwrap().to_vec();
        let head = parse_v5_head(&raw).unwrap();
        let mut prev_end = head.head_end;
        for s in &head.sections {
            assert_eq!(s.offset % 64, 0, "{} section misaligned", s.name());
            assert!(s.offset >= prev_end && s.offset - prev_end < 64);
            assert_eq!(crc32(&raw[s.offset..s.offset + s.len]), s.crc32);
            prev_end = s.offset + s.len;
        }
        assert_eq!(prev_end, raw.len());
        head.verify_head_crc(&raw).unwrap();
        // Bend the embedding section's offset off alignment (+8) in
        // the table and re-stamp the body CRC: the geometry check must
        // reject it before any payload is touched.
        let table_at = head.head_end - 4 - 5 * 32;
        let emb_entry = table_at + 4 * 32;
        let mut bad = raw.clone();
        let off = u64::from_be_bytes(bad[emb_entry + 8..emb_entry + 16].try_into().unwrap());
        bad[emb_entry + 8..emb_entry + 16].copy_from_slice(&(off + 8).to_be_bytes());
        let crc = crc32(&bad[18..]);
        bad[14..18].copy_from_slice(&crc.to_be_bytes());
        let err = Artifact::decode(Bytes::from(bad)).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(_)), "unexpected {err}");
        // A flipped byte in inter-section padding fails the owned
        // path's whole-body CRC just like a payload flip does.
        let pad_at = head.sections[0].offset - 1;
        assert_eq!(raw[pad_at], 0, "expected padding before section 1");
        let mut bad = raw.clone();
        bad[pad_at] ^= 0x40;
        assert!(matches!(
            Artifact::decode(Bytes::from(bad)).unwrap_err(),
            ServeError::Corrupt(_)
        ));
    }

    #[test]
    fn tiny_graphs_rejected_up_front_n3_trains() {
        // n ∈ {1, 2}: a clear up-front error, not an eigensolver
        // failure from deep inside the pipeline.
        for n in [1usize, 2] {
            let views = vec![
                mvag_graph::View::Graph(mvag_graph::Graph::from_unweighted_edges(n, &[]).unwrap()),
                mvag_graph::View::Attributes(DenseMatrix::zeros(n, 2)),
            ];
            let mvag = Mvag::new(format!("tiny-{n}"), views, None, 2).unwrap();
            let err = Artifact::train(&mvag, &TrainConfig::default()).unwrap_err();
            assert!(matches!(err, ServeError::Train(_)), "n = {n}: {err}");
            assert!(err.to_string().contains("n >= 3"), "n = {n}: {err}");
        }
        // n = 3 is the smallest trainable graph: dim clamps to 1 and
        // the full pipeline must succeed.
        let views = vec![
            mvag_graph::View::Graph(
                mvag_graph::Graph::from_unweighted_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap(),
            ),
            mvag_graph::View::Attributes(
                DenseMatrix::from_vec(3, 2, vec![0.0, 0.1, 1.0, 0.9, 0.5, 0.4]).unwrap(),
            ),
        ];
        let mvag = Mvag::new("tiny-3", views, None, 2).unwrap();
        let artifact = Artifact::train(&mvag, &TrainConfig::default()).unwrap();
        assert_eq!(artifact.meta.n, 3);
        assert_eq!(artifact.meta.dim, 1);
        artifact.validate().unwrap();
    }

    #[test]
    fn update_refreshes_artifact_and_bumps_lineage() {
        use mvag_graph::generators::{random_append_delta, AppendConfig};
        let mvag = toy_mvag(60, 2, 11);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        let (artifact, views) = Artifact::train_with_views(&mvag, &config).unwrap();
        let delta = random_append_delta(
            &mvag,
            &AppendConfig {
                added_nodes: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let outcome = artifact.update(&views, &mvag, &delta, &config).unwrap();
        let updated = &outcome.artifact;
        updated.validate().unwrap();
        assert_eq!(updated.meta.n, 63);
        assert_eq!(updated.meta.update_count, 1);
        assert_eq!(updated.meta.parent_seed, artifact.meta.seed);
        assert_eq!(updated.meta.seed, artifact.meta.seed);
        assert_eq!(updated.weights, artifact.weights);
        assert_eq!(outcome.mvag.n(), 63);
        assert_eq!(outcome.views.n(), 63);
        // Chained update: the outcome feeds the next round.
        let delta2 = random_append_delta(
            &outcome.mvag,
            &AppendConfig {
                added_nodes: 2,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let outcome2 = updated
            .update(&outcome.views, &outcome.mvag, &delta2, &config)
            .unwrap();
        assert_eq!(outcome2.artifact.meta.n, 65);
        assert_eq!(outcome2.artifact.meta.update_count, 2);
        // The updated artifact round-trips through the v3 codec.
        let back = Artifact::decode(outcome2.artifact.encode().unwrap()).unwrap();
        assert_eq!(outcome2.artifact, back);
        // Mismatched inputs are rejected.
        let other = toy_mvag(50, 2, 12);
        assert!(artifact.update(&views, &other, &delta, &config).is_err());
        let shard = artifact.shard(0, 30).unwrap();
        assert!(shard.update(&views, &mvag, &delta, &config).is_err());
    }

    #[test]
    fn shard_slices_every_field_consistently() {
        let a = small_artifact();
        let s = a.shard(13, 41).unwrap();
        s.validate().unwrap();
        assert_eq!(s.meta.rows(), 28);
        assert_eq!(s.labels, a.labels[13..41]);
        assert_eq!(s.weights, a.weights);
        assert_eq!(s.centroids, a.centroids);
        for local in 0..28 {
            assert_eq!(s.embedding.row(local), a.embedding.row(13 + local));
            assert_eq!(
                s.laplacian.row_cols(local),
                a.laplacian.row_cols(13 + local)
            );
            assert_eq!(
                s.laplacian.row_vals(local),
                a.laplacian.row_vals(13 + local)
            );
        }
        // A shard is itself codec-roundtrippable.
        let back = Artifact::decode(s.encode().unwrap()).unwrap();
        assert_eq!(s, back);
        // Bad ranges and sharding a shard are rejected.
        assert!(a.shard(10, 10).is_err());
        assert!(a.shard(0, a.meta.n + 1).is_err());
        assert!(s.shard(0, 5).is_err());
    }

    #[test]
    fn save_sharded_writes_verifiable_layout() {
        let a = small_artifact();
        let dir =
            std::env::temp_dir().join(format!("sgla-artifact-sharded-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let manifest = a.save_sharded(&dir, 4).unwrap();
        assert_eq!(manifest.shards.len(), 4);
        assert_eq!(manifest.n, a.meta.n);
        assert_eq!(manifest.artifact_format_version, FORMAT_VERSION);
        // Reload via the manifest: per-file CRC and size match, and
        // concatenating shard rows reassembles the original artifact.
        let loaded = mvag_data::ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
        assert_eq!(loaded, manifest);
        let mut labels = Vec::new();
        let mut rows = 0usize;
        for entry in &manifest.shards {
            let raw = fs::read(dir.join(&entry.file)).unwrap();
            assert_eq!(raw.len() as u64, entry.bytes);
            assert_eq!(crc32(&raw), entry.crc32);
            let shard = Artifact::decode(Bytes::from(raw)).unwrap();
            assert_eq!(shard.meta.row_start, entry.row_start);
            assert_eq!(shard.meta.row_end, entry.row_end);
            labels.extend_from_slice(&shard.labels);
            rows += shard.meta.rows();
        }
        assert_eq!(rows, a.meta.n);
        assert_eq!(labels, a.labels);
        // Shard counts beyond n clamp instead of failing.
        let clamped = a.save_sharded(&dir, 10_000).unwrap();
        assert_eq!(clamped.shards.len(), a.meta.n);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn centroid_rows_are_cluster_means() {
        let a = small_artifact();
        for c in 0..a.meta.k {
            let members: Vec<usize> = (0..a.meta.n).filter(|&i| a.labels[i] == c).collect();
            assert!(!members.is_empty());
            for d in 0..a.meta.dim {
                let mean: f64 = members.iter().map(|&i| a.embedding.row(i)[d]).sum::<f64>()
                    / members.len() as f64;
                let got = a.centroids.row(c)[d];
                assert!((mean - got).abs() < 1e-12, "cluster {c} dim {d}");
            }
        }
    }
}

//! The trained-artifact store: versioned, checksummed binary
//! persistence for everything SGLA learns about one MVAG.
//!
//! An [`Artifact`] bundles the learned view weights `w*`, the
//! integrated Laplacian in CSR form, the cluster assignment and
//! per-cluster centroids, and the node embedding matrix — the complete
//! state the query engine needs, so serving never re-touches the
//! training pipeline. The codec extends the hand-rolled `bytes` format
//! of `mvag_data::io`: a magic header and format-version field up
//! front, a CRC-32 of the body, and overflow-safe bounds checks so
//! hostile or truncated input surfaces as a typed
//! [`ServeError::Corrupt`], never a panic or huge allocation.

use crate::{Result, ServeError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mvag_data::codec::{get_f64s, get_str, get_u32s, get_u64s, put_str};
use mvag_graph::Mvag;
use mvag_sparse::{CsrMatrix, DenseMatrix};
use sgla_core::clustering::{spectral_clustering_with, SpectralParams};
use sgla_core::embedding::{embed, EmbedParams};
use sgla_core::sgla::SglaParams;
use sgla_core::sgla_plus::SglaPlus;
use sgla_core::views::{KnnParams, ViewLaplacians};
use std::fs;
use std::path::Path;

/// `"SGLA"` in ASCII.
const MAGIC: u32 = 0x5347_4C41;
/// Bump on any layout change; decoders reject other versions.
pub const FORMAT_VERSION: u16 = 1;

/// Descriptive header of a trained artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Name of the dataset the artifact was trained on.
    pub dataset: String,
    /// Node count `n`.
    pub n: usize,
    /// Cluster count `k`.
    pub k: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Seed the training run used (for provenance).
    pub seed: u64,
}

/// Everything SGLA learned about one MVAG, ready to serve.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Descriptive header.
    pub meta: ArtifactMeta,
    /// Learned view weights `w*` on the probability simplex.
    pub weights: Vec<f64>,
    /// Integrated Laplacian `L = Σ wᵢ* Lᵢ` (CSR).
    pub laplacian: CsrMatrix,
    /// Cluster label per node, in `0..k`.
    pub labels: Vec<usize>,
    /// Per-cluster centroids in embedding space (`k × dim`).
    pub centroids: DenseMatrix,
    /// Node embedding matrix (`n × dim`).
    pub embedding: DenseMatrix,
}

/// Training configuration for [`Artifact::train`].
#[derive(Debug, Clone, Default)]
pub struct TrainConfig {
    /// SGLA/SGLA+ parameters.
    pub sgla: SglaParams,
    /// View-Laplacian construction parameters.
    pub knn: KnnParams,
    /// Embedding parameters ([`EmbedParams::dim`] is clamped to `n - 2`
    /// for tiny inputs).
    pub embed: EmbedParams,
    /// Spectral clustering restarts/seed come from here.
    pub spectral: SpectralParams,
}

impl Artifact {
    /// Runs the full training pipeline on `mvag`: view Laplacians →
    /// SGLA+ integration → spectral clustering → embedding → centroids.
    ///
    /// # Errors
    /// Propagates pipeline failures as [`ServeError::Train`].
    pub fn train(mvag: &Mvag, config: &TrainConfig) -> Result<Artifact> {
        let views = ViewLaplacians::build(mvag, &config.knn)?;
        let outcome = SglaPlus::new(config.sgla.clone()).integrate(&views, mvag.k())?;
        let spectral = spectral_clustering_with(&outcome.laplacian, mvag.k(), &config.spectral)?;
        let mut embed_params = config.embed.clone();
        // Keep tiny demo graphs embeddable: dim must satisfy dim+1 < n.
        embed_params.dim = embed_params.dim.min(mvag.n().saturating_sub(2)).max(1);
        let embedding = embed(&outcome.laplacian, &embed_params)?;
        let centroids = centroids_of(&embedding, &spectral.labels, mvag.k())?;
        Ok(Artifact {
            meta: ArtifactMeta {
                dataset: mvag.name.clone(),
                n: mvag.n(),
                k: mvag.k(),
                dim: embedding.ncols(),
                seed: config.sgla.seed,
            },
            weights: outcome.weights,
            laplacian: outcome.laplacian,
            labels: spectral.labels,
            centroids,
            embedding,
        })
    }

    /// Encodes the artifact into the versioned, checksummed binary
    /// format.
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::with_capacity(1 << 16);
        put_str(&mut body, &self.meta.dataset);
        body.put_u64(self.meta.n as u64);
        body.put_u64(self.meta.k as u64);
        body.put_u64(self.meta.dim as u64);
        body.put_u64(self.meta.seed);
        body.put_u32(self.weights.len() as u32);
        for &w in &self.weights {
            body.put_f64(w);
        }
        put_csr(&mut body, &self.laplacian);
        body.put_u64(self.labels.len() as u64);
        for &l in &self.labels {
            body.put_u32(l as u32);
        }
        put_dense(&mut body, &self.centroids);
        put_dense(&mut body, &self.embedding);
        let body = body.freeze();

        let mut out = BytesMut::with_capacity(body.len() + 18);
        out.put_u32(MAGIC);
        out.put_u16(FORMAT_VERSION);
        out.put_u64(body.len() as u64);
        out.put_u32(crc32(body.as_ref()));
        out.put_slice(body.as_ref());
        out.freeze()
    }

    /// Decodes an artifact, verifying magic, version, length, and
    /// checksum before touching the payload.
    ///
    /// # Errors
    /// [`ServeError::Corrupt`] on any structural problem.
    pub fn decode(mut bytes: Bytes) -> Result<Artifact> {
        let fail = |msg: &str| ServeError::Corrupt(msg.to_string());
        if bytes.remaining() < 18 {
            return Err(fail("shorter than the fixed header"));
        }
        if bytes.get_u32() != MAGIC {
            return Err(fail("bad magic (not an SGLA artifact)"));
        }
        let version = bytes.get_u16();
        if version != FORMAT_VERSION {
            return Err(fail(&format!(
                "unsupported format version {version} (expected {FORMAT_VERSION})"
            )));
        }
        let body_len = bytes.get_u64();
        let expect_crc = bytes.get_u32();
        if bytes.remaining() as u64 != body_len {
            return Err(fail(&format!(
                "body length mismatch: header says {body_len}, got {}",
                bytes.remaining()
            )));
        }
        if crc32(bytes.as_ref()) != expect_crc {
            return Err(fail("checksum mismatch (artifact bytes were altered)"));
        }

        let dataset = get_str(&mut bytes).ok_or_else(|| fail("truncated dataset name"))?;
        if bytes.remaining() < 32 + 4 {
            return Err(fail("truncated meta"));
        }
        let n = bytes.get_u64() as usize;
        let k = bytes.get_u64() as usize;
        let dim = bytes.get_u64() as usize;
        let seed = bytes.get_u64();
        let num_weights = bytes.get_u32() as usize;
        let weights = get_f64s(&mut bytes, num_weights).ok_or_else(|| fail("truncated weights"))?;
        let laplacian = get_csr(&mut bytes)?;
        if bytes.remaining() < 8 {
            return Err(fail("truncated label count"));
        }
        let num_labels = bytes.get_u64() as usize;
        let labels = get_u32s(&mut bytes, num_labels).ok_or_else(|| fail("truncated labels"))?;
        let centroids = get_dense(&mut bytes)?;
        let embedding = get_dense(&mut bytes)?;
        if bytes.remaining() != 0 {
            return Err(fail("trailing bytes after payload"));
        }

        let artifact = Artifact {
            meta: ArtifactMeta {
                dataset,
                n,
                k,
                dim,
                seed,
            },
            weights,
            laplacian,
            labels,
            centroids,
            embedding,
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Cross-field consistency checks (shapes line up with the meta).
    ///
    /// # Errors
    /// [`ServeError::Corrupt`] describing the first inconsistency.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(ServeError::Corrupt(msg));
        let m = &self.meta;
        if self.labels.len() != m.n {
            return fail(format!("{} labels for n = {}", self.labels.len(), m.n));
        }
        if let Some(&bad) = self.labels.iter().find(|&&l| l >= m.k) {
            return fail(format!("label {bad} >= k = {}", m.k));
        }
        if self.laplacian.nrows() != m.n || self.laplacian.ncols() != m.n {
            return fail(format!(
                "laplacian is {}x{} for n = {}",
                self.laplacian.nrows(),
                self.laplacian.ncols(),
                m.n
            ));
        }
        if self.embedding.nrows() != m.n || self.embedding.ncols() != m.dim {
            return fail(format!(
                "embedding is {}x{} for n = {}, dim = {}",
                self.embedding.nrows(),
                self.embedding.ncols(),
                m.n,
                m.dim
            ));
        }
        if self.centroids.nrows() != m.k || self.centroids.ncols() != m.dim {
            return fail(format!(
                "centroids are {}x{} for k = {}, dim = {}",
                self.centroids.nrows(),
                self.centroids.ncols(),
                m.k,
                m.dim
            ));
        }
        if self.weights.is_empty() {
            return fail("no view weights".to_string());
        }
        Ok(())
    }

    /// Saves the artifact to `path`.
    ///
    /// # Errors
    /// I/O failures.
    pub fn save(&self, path: &Path) -> Result<()> {
        fs::write(path, self.encode())?;
        Ok(())
    }

    /// Loads and verifies an artifact from `path`.
    ///
    /// # Errors
    /// I/O failures and [`ServeError::Corrupt`].
    pub fn load(path: &Path) -> Result<Artifact> {
        let data = fs::read(path)?;
        Artifact::decode(Bytes::from(data))
    }
}

/// Mean embedding row per cluster.
fn centroids_of(embedding: &DenseMatrix, labels: &[usize], k: usize) -> Result<DenseMatrix> {
    let dim = embedding.ncols();
    let mut sums = DenseMatrix::zeros(k, dim);
    let mut counts = vec![0usize; k];
    for (i, &label) in labels.iter().enumerate() {
        if label >= k {
            return Err(ServeError::InvalidArgument(format!(
                "label {label} >= k = {k}"
            )));
        }
        counts[label] += 1;
        let row = embedding.row(i);
        let dst = sums.row_mut(label);
        for (d, &v) in row.iter().enumerate() {
            dst[d] += v;
        }
    }
    for (c, &count) in counts.iter().enumerate() {
        if count > 0 {
            let inv = 1.0 / count as f64;
            for v in sums.row_mut(c) {
                *v *= inv;
            }
        }
    }
    Ok(sums)
}

// ---------------------------------------------------------------------
// Codec helpers (same style as mvag_data::io, plus CRC-32).

/// CRC-32 (IEEE 802.3), bitwise-reflected, no lookup table — artifact
/// bodies are read once at startup, so simplicity beats throughput.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn put_csr(buf: &mut BytesMut, m: &CsrMatrix) {
    buf.put_u64(m.nrows() as u64);
    buf.put_u64(m.ncols() as u64);
    buf.put_u64(m.nnz() as u64);
    for &p in m.indptr() {
        buf.put_u64(p as u64);
    }
    for r in 0..m.nrows() {
        for &c in m.row_cols(r) {
            buf.put_u64(c as u64);
        }
    }
    for r in 0..m.nrows() {
        for &v in m.row_vals(r) {
            buf.put_f64(v);
        }
    }
}

fn get_csr(bytes: &mut Bytes) -> Result<CsrMatrix> {
    let fail = |msg: &str| ServeError::Corrupt(format!("laplacian: {msg}"));
    if bytes.remaining() < 24 {
        return Err(fail("truncated header"));
    }
    let nrows = bytes.get_u64() as usize;
    let ncols = bytes.get_u64() as usize;
    let nnz = bytes.get_u64() as usize;
    let indptr = get_u64s(
        bytes,
        nrows.checked_add(1).ok_or_else(|| fail("bad nrows"))?,
    )
    .ok_or_else(|| fail("truncated indptr"))?;
    let cols = get_u64s(bytes, nnz).ok_or_else(|| fail("truncated column indices"))?;
    let vals = get_f64s(bytes, nnz).ok_or_else(|| fail("truncated values"))?;
    CsrMatrix::from_raw_parts(nrows, ncols, indptr, cols, vals)
        .map_err(|e| fail(&format!("invalid structure: {e}")))
}

fn put_dense(buf: &mut BytesMut, m: &DenseMatrix) {
    buf.put_u64(m.nrows() as u64);
    buf.put_u64(m.ncols() as u64);
    for &v in m.data() {
        buf.put_f64(v);
    }
}

fn get_dense(bytes: &mut Bytes) -> Result<DenseMatrix> {
    let fail = |msg: &str| ServeError::Corrupt(format!("dense matrix: {msg}"));
    if bytes.remaining() < 16 {
        return Err(fail("truncated header"));
    }
    let nrows = bytes.get_u64() as usize;
    let ncols = bytes.get_u64() as usize;
    let count = nrows
        .checked_mul(ncols)
        .ok_or_else(|| fail("shape overflow"))?;
    let data = get_f64s(bytes, count).ok_or_else(|| fail("truncated data"))?;
    DenseMatrix::from_vec(nrows, ncols, data).map_err(|e| fail(&format!("bad shape: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvag_graph::toy::toy_mvag;

    fn small_artifact() -> Artifact {
        let mvag = toy_mvag(60, 2, 11);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        Artifact::train(&mvag, &config).unwrap()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn train_produces_consistent_shapes() {
        let a = small_artifact();
        assert_eq!(a.meta.n, 60);
        assert_eq!(a.meta.k, 2);
        assert_eq!(a.meta.dim, 8);
        assert_eq!(a.weights.len(), 3);
        a.validate().unwrap();
        let sum: f64 = a.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "weights sum {sum}");
    }

    #[test]
    fn encode_decode_bit_exact() {
        let a = small_artifact();
        let bytes = a.encode();
        let back = Artifact::decode(bytes).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn file_roundtrip() {
        let a = small_artifact();
        let dir = std::env::temp_dir().join("sgla-artifact-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.sgla");
        a.save(&path).unwrap();
        let back = Artifact::load(&path).unwrap();
        assert_eq!(a, back);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let a = small_artifact();
        let raw = a.encode().to_vec();
        // Flip one byte somewhere in the body (after the 18-byte header).
        for &pos in &[18, raw.len() / 2, raw.len() - 1] {
            let mut bad = raw.clone();
            bad[pos] ^= 0x01;
            let err = Artifact::decode(Bytes::from(bad)).unwrap_err();
            assert!(
                matches!(err, ServeError::Corrupt(_)),
                "pos {pos}: unexpected {err}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let a = small_artifact();
        let raw = a.encode().to_vec();
        let mut bad = raw.clone();
        bad[0] = b'X';
        assert!(matches!(
            Artifact::decode(Bytes::from(bad)).unwrap_err(),
            ServeError::Corrupt(_)
        ));
        let mut bad = raw.clone();
        bad[4] = 0xff; // version hi byte
        let err = Artifact::decode(Bytes::from(bad)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let a = small_artifact();
        let raw = a.encode().to_vec();
        // Every 97th prefix plus all short ones: exhaustive is slow at
        // this size, strided catches the same class of bounds bugs.
        for len in (0..raw.len()).step_by(97).chain(0..32) {
            let prefix = Bytes::from(raw[..len].to_vec());
            assert!(Artifact::decode(prefix).is_err(), "prefix of {len} decoded");
        }
    }

    #[test]
    fn centroid_rows_are_cluster_means() {
        let a = small_artifact();
        for c in 0..a.meta.k {
            let members: Vec<usize> = (0..a.meta.n).filter(|&i| a.labels[i] == c).collect();
            assert!(!members.is_empty());
            for d in 0..a.meta.dim {
                let mean: f64 = members.iter().map(|&i| a.embedding.row(i)[d]).sum::<f64>()
                    / members.len() as f64;
                let got = a.centroids.row(c)[d];
                assert!((mean - got).abs() < 1e-12, "cluster {c} dim {d}");
            }
        }
    }
}

//! Evented HTTP backend: one epoll readiness loop owning all I/O.
//!
//! The thread-per-connection backend in [`crate::http`] caps
//! concurrent keep-alive clients at the worker count — an idle client
//! pins a worker. Here a single loop thread multiplexes every
//! connection over level-triggered epoll (see [`crate::sys`]), so
//! idle connections cost one registration and ~no memory, and the
//! achievable connection count is bounded by fds, not threads.
//!
//! Per-connection state machine:
//!
//! ```text
//!           EPOLLIN: read → parse_request
//!   ┌─────────┐ Complete  ┌──────┐ completion ┌─────────┐
//!   │ Reading ├──────────►│ Busy ├───────────►│ Writing │
//!   └─────────┘ (dispatch)└──────┘ (response  └────┬────┘
//!        ▲    Partial: keep interest,  queued)     │ write_buf drained
//!        │    Bad: stage 400 → Writing             │ (EPOLLOUT while full)
//!        └─────────────────────────────────────────┘
//!          keep-alive: re-parse leftover (pipelining), else close
//! ```
//!
//! Compute never runs on the loop thread: a `Busy` connection's
//! request is handed to a small executor pool (which calls the same
//! [`route`](crate::http)/[`Batcher`](crate::batch::Batcher) stack as
//! the threaded backend, spans and request ids included); finished
//! responses land on a mutex-protected completion queue and an
//! eventfd wakes the loop to stage them. Backpressure is structural:
//! a `Busy`/`Writing` connection has its `EPOLLIN` interest dropped,
//! so a client cannot buffer unbounded pipelined requests, and slow
//! readers hold their own response bytes, not a worker thread.
//!
//! Overload behavior is defined, not accidental: connections idle
//! past the configured timeout are reaped (silent close when nothing
//! was sent, `408` with a request id for a half-sent request — the
//! slowloris guard), and accepts beyond the connection cap get a
//! best-effort `503` and an immediate close ("shedding").

use crate::http::{self, ServerShared};
use crate::parser::{self, Parse, Request};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::{Result, ServeError};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token of the listening socket in the epoll registration.
const LISTENER_TOKEN: u64 = 0;
/// Token of the completion-queue eventfd.
const WAKER_TOKEN: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// Upper bound on readiness events drained per `epoll_wait`.
const EVENT_BATCH: usize = 256;

/// `epoll_wait` timeout: bounds both shutdown latency (the stop flag
/// is re-checked each wake) and idle-sweep granularity.
const WAIT_MS: i32 = 250;

/// How often the idle sweep walks the connection table.
const SWEEP_INTERVAL: Duration = Duration::from_millis(500);

/// Read chunk size per `read(2)` call on a ready connection.
const READ_CHUNK: usize = 16 << 10;

/// One request handed from the loop to the executor pool.
struct Job {
    token: u64,
    request: Request,
    request_id: u64,
    enqueued: Instant,
}

/// One finished response travelling back to the loop.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    keep_alive: bool,
}

/// What the loop is doing with a connection right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for (more of) a request; `EPOLLIN` armed.
    Reading,
    /// A request is with the executor pool; all interest dropped.
    Busy,
    /// A response is (partially) buffered; `EPOLLOUT` armed until the
    /// peer drains it.
    Writing,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    /// Keep the connection after the buffered response is flushed?
    keep_alive_after: bool,
    /// Currently-armed epoll interest mask.
    interest: u32,
    last_activity: Instant,
}

/// Handles to a running evented backend; created by
/// [`EventedRuntime::start`], stopped via the server's stop flag plus
/// [`EventedRuntime::wake`], then joined.
pub(crate) struct EventedRuntime {
    loop_handle: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    waker: Arc<EventFd>,
}

impl EventedRuntime {
    /// Spawns the event-loop thread and `executors` compute threads
    /// over an already-bound listener.
    pub(crate) fn start(
        listener: TcpListener,
        shared: Arc<ServerShared>,
        executors: usize,
        max_connections: usize,
        idle_timeout: Duration,
    ) -> Result<EventedRuntime> {
        let server_err = |what: &str, e: std::io::Error| ServeError::Server(format!("{what}: {e}"));
        listener
            .set_nonblocking(true)
            .map_err(|e| server_err("listener nonblocking", e))?;
        let epoll = Epoll::new().map_err(|e| server_err("epoll_create1", e))?;
        let waker = Arc::new(EventFd::new().map_err(|e| server_err("eventfd", e))?);
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut pool = Vec::with_capacity(executors.max(1));
        for i in 0..executors.max(1) {
            let rx = Arc::clone(&job_rx);
            let shared_ref = Arc::clone(&shared);
            let done = Arc::clone(&completions);
            let bell = Arc::clone(&waker);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("sgla-exec-{i}"))
                    .spawn(move || executor_loop(&rx, &shared_ref, &done, &bell))
                    .map_err(|e| ServeError::Server(format!("spawn executor: {e}")))?,
            );
        }
        let loop_waker = Arc::clone(&waker);
        let loop_handle = std::thread::Builder::new()
            .name("sgla-serve-loop".into())
            .spawn(move || {
                EventLoop {
                    epoll,
                    listener,
                    waker: loop_waker,
                    completions,
                    job_tx,
                    shared,
                    conns: HashMap::new(),
                    next_token: FIRST_CONN_TOKEN,
                    max_connections,
                    idle_timeout,
                }
                .run();
            })
            .map_err(|e| ServeError::Server(format!("spawn event loop: {e}")))?;
        Ok(EventedRuntime {
            loop_handle: Some(loop_handle),
            executors: pool,
            waker,
        })
    }

    /// Kicks the loop out of `epoll_wait` (shutdown path; the caller
    /// sets the stop flag first).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    /// Joins the loop thread, then the executors (the loop dropping
    /// its job sender is what releases them).
    pub(crate) fn join(&mut self) {
        if let Some(handle) = self.loop_handle.take() {
            let _ = handle.join();
        }
        for exec in self.executors.drain(..) {
            let _ = exec.join();
        }
    }
}

/// Executor thread: blocking half of the backend. Pulls parsed
/// requests, runs the shared route/batcher stack (span tree and
/// request id exactly as on the threaded path), and rings the loop's
/// doorbell with the rendered response.
fn executor_loop(
    rx: &Mutex<mpsc::Receiver<Job>>,
    shared: &ServerShared,
    completions: &Mutex<Vec<Completion>>,
    waker: &EventFd,
) {
    loop {
        let job = {
            let guard = rx.lock().expect("evented job queue lock");
            guard.recv()
        };
        let Ok(job) = job else {
            return; // loop thread gone: shutdown
        };
        let keep_alive = job.request.keep_alive && !shared.stop.load(Ordering::SeqCst);
        // Latency is measured from enqueue, so the recorded endpoint
        // metrics include executor queue wait — same meaning as the
        // threaded path's read-to-response clock.
        let bytes = http::process_request(
            &job.request,
            shared,
            job.request_id,
            job.enqueued,
            keep_alive,
        );
        completions
            .lock()
            .expect("completion queue lock")
            .push(Completion {
                token: job.token,
                bytes,
                keep_alive,
            });
        waker.wake();
    }
}

struct EventLoop {
    epoll: Epoll,
    listener: TcpListener,
    waker: Arc<EventFd>,
    completions: Arc<Mutex<Vec<Completion>>>,
    job_tx: mpsc::Sender<Job>,
    shared: Arc<ServerShared>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Open-connection cap (0 = unlimited); accepts beyond it shed.
    max_connections: usize,
    idle_timeout: Duration,
}

impl EventLoop {
    fn run(mut self) {
        if self
            .epoll
            .add(self.listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)
            .is_err()
        {
            return;
        }
        if self
            .epoll
            .add(self.waker.as_raw_fd(), EPOLLIN, WAKER_TOKEN)
            .is_err()
        {
            return;
        }
        let mut events = vec![EpollEvent::default(); EVENT_BATCH];
        let mut last_sweep = Instant::now();
        while !self.shared.stop.load(Ordering::SeqCst) {
            let Ok(n) = self.epoll.wait(&mut events, WAIT_MS) else {
                return; // a broken epoll fd is unrecoverable
            };
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            for ev in &events[..n] {
                // Copy out of the (packed) event before matching.
                let (token, mask) = (ev.token, ev.events);
                match token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.waker.drain(),
                    token => self.conn_ready(token, mask),
                }
            }
            self.drain_completions();
            if last_sweep.elapsed() >= SWEEP_INTERVAL {
                self.sweep_idle();
                last_sweep = Instant::now();
            }
        }
        // Dropping `self` closes every connection and the job sender;
        // executors drain in-flight jobs and exit on the closed queue.
    }

    /// Accepts until the backlog is dry; beyond the connection cap,
    /// sheds with a best-effort 503.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared.conns.accepted();
                    if self.max_connections > 0 && self.conns.len() >= self.max_connections {
                        self.shed(stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    // Through the fcntl binding rather than std: the
                    // loop owns raw-fd readiness either way.
                    if crate::sys::set_nonblocking(stream.as_raw_fd()).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    let interest = EPOLLIN | EPOLLRDHUP;
                    if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
                        continue;
                    }
                    self.shared.conns.opened();
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            state: ConnState::Reading,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            written: 0,
                            keep_alive_after: true,
                            interest,
                            last_activity: Instant::now(),
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return, // transient (ECONNABORTED etc.): retry on next readiness
            }
        }
    }

    /// Best-effort 503 to a connection over the cap, then close. The
    /// socket is fresh, so the single write almost always lands in
    /// the (empty) send buffer even nonblocking.
    fn shed(&self, stream: TcpStream) {
        self.shared.conns.shed();
        let _ = stream.set_nonblocking(true);
        let body = http::error_body(&format!(
            "server at connection capacity ({} open)",
            self.conns.len()
        ));
        let bytes = http::response_bytes(
            503,
            "Service Unavailable",
            "application/json",
            &body,
            false,
            mvag_obs::next_request_id(),
        );
        let mut stream = stream;
        let _ = stream.write(&bytes);
        // Dropped: closed.
    }

    fn conn_ready(&mut self, token: u64, mask: u32) {
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.close(token);
            return;
        }
        let Some(conn) = self.conns.get(&token) else {
            return; // stale event for an already-closed token
        };
        match conn.state {
            // RDHUP without IN still goes through the read path: it
            // drains anything buffered, then sees EOF and closes.
            ConnState::Reading if mask & (EPOLLIN | EPOLLRDHUP) != 0 => self.read_ready(token),
            ConnState::Writing if mask & EPOLLOUT != 0 => self.write_conn(token),
            _ => {}
        }
    }

    /// Reads until the socket is dry or a request completes. One
    /// request is in flight per connection at a time: a completed
    /// parse stops reading (interest drops), which is what bounds the
    /// read buffer under a pipelining flood.
    fn read_ready(&mut self, token: u64) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF: a partial request dies with the connection
                    // (there is no one left to answer).
                    self.close(token);
                    return;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    self.shared.conns.observe_read_buf(conn.read_buf.len());
                    if self.advance(token) {
                        return; // dispatched or staged a 400
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // ECONNRESET and friends: drop the connection,
                    // keep the loop alive.
                    self.close(token);
                    return;
                }
            }
        }
    }

    /// Tries to advance a `Reading` connection from buffered bytes:
    /// dispatches a complete request or stages a 400 for a malformed
    /// one. Returns `true` when the connection left `Reading`.
    fn advance(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return true;
        };
        match parser::parse_request(&conn.read_buf) {
            Parse::Complete(request, consumed) => {
                conn.read_buf.drain(..consumed);
                self.dispatch(token, request);
                true
            }
            Parse::Partial => {
                self.set_interest(token, EPOLLIN | EPOLLRDHUP);
                false
            }
            Parse::Bad(msg) => {
                // Same contract as the threaded path: a malformed
                // request gets a 400 with its own request id, then
                // the connection closes.
                let body = http::error_body(&msg);
                let bytes = http::response_bytes(
                    400,
                    "Bad Request",
                    "application/json",
                    &body,
                    false,
                    mvag_obs::next_request_id(),
                );
                self.stage_response(token, bytes, false);
                true
            }
        }
    }

    /// Hands a parsed request to the executor pool and parks the
    /// connection in `Busy` with no epoll interest.
    fn dispatch(&mut self, token: u64, request: Request) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.state = ConnState::Busy;
        // Client-supplied X-Request-Ids hash into the trace id, same
        // as the threaded path (error short-circuits keep minting).
        let request_id = http::trace_id_for(&request);
        let job = Job {
            token,
            request,
            request_id,
            enqueued: Instant::now(),
        };
        if self.job_tx.send(job).is_err() {
            // Executors are gone (shutdown race): nothing can answer.
            self.close(token);
            return;
        }
        self.set_interest(token, 0);
    }

    /// Moves finished responses from the completion queue onto their
    /// connections' write buffers and starts flushing immediately.
    fn drain_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut guard = self.completions.lock().expect("completion queue lock");
            std::mem::take(&mut *guard)
        };
        for completion in done {
            // The connection may have died (reset, error) while its
            // request was computing; the response is simply dropped.
            if self.conns.contains_key(&completion.token) {
                self.stage_response(completion.token, completion.bytes, completion.keep_alive);
            }
        }
    }

    /// Queues `bytes` as the connection's response and writes as much
    /// as the socket accepts now; the rest waits on `EPOLLOUT`.
    fn stage_response(&mut self, token: u64, bytes: Vec<u8>, keep_alive: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        self.shared.conns.observe_write_buf(bytes.len());
        conn.state = ConnState::Writing;
        conn.write_buf = bytes;
        conn.written = 0;
        conn.keep_alive_after = keep_alive;
        conn.last_activity = Instant::now();
        self.write_conn(token);
    }

    /// Flushes the write buffer as far as the socket allows. Write
    /// errors mid-response (EPIPE, ECONNRESET) close the connection
    /// and nothing else.
    fn write_conn(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.written >= conn.write_buf.len() {
                self.finish_write(token);
                return;
            }
            match conn.stream.write(&conn.write_buf[conn.written..]) {
                Ok(0) => {
                    self.close(token);
                    return;
                }
                Ok(n) => {
                    conn.written += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Peer's receive window is full: backpressure.
                    // Park until EPOLLOUT; the idle sweep reaps peers
                    // that never drain.
                    self.set_interest(token, EPOLLOUT);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
    }

    /// A response went out in full: close, or return to `Reading` —
    /// first re-parsing any pipelined bytes that arrived alongside
    /// the previous request.
    fn finish_write(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !conn.keep_alive_after {
            self.close(token);
            return;
        }
        conn.write_buf = Vec::new();
        conn.written = 0;
        conn.state = ConnState::Reading;
        conn.last_activity = Instant::now();
        self.advance(token);
    }

    /// The slowloris guard: reaps connections idle past the timeout.
    /// Silent idlers close quietly; a half-sent request is answered
    /// `408` (with a request id) before closing; a peer that stopped
    /// draining its response is cut off. `Busy` connections are
    /// exempt — the server owes them an answer.
    fn sweep_idle(&mut self) {
        let mut silent = Vec::new();
        let mut half_sent = Vec::new();
        for (&token, conn) in &self.conns {
            if conn.last_activity.elapsed() < self.idle_timeout {
                continue;
            }
            match conn.state {
                ConnState::Busy => {}
                ConnState::Reading if conn.read_buf.is_empty() => silent.push(token),
                ConnState::Reading => half_sent.push(token),
                ConnState::Writing => silent.push(token),
            }
        }
        for token in silent {
            self.shared.conns.timed_out();
            self.close(token);
        }
        for token in half_sent {
            self.shared.conns.timed_out();
            let body = http::error_body("request timed out");
            let bytes = http::response_bytes(
                408,
                "Request Timeout",
                "application/json",
                &body,
                false,
                mvag_obs::next_request_id(),
            );
            self.stage_response(token, bytes, false);
        }
    }

    /// Re-arms the epoll interest if it changed.
    fn set_interest(&mut self, token: u64, events: u32) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.interest == events {
            return;
        }
        if self
            .epoll
            .modify(conn.stream.as_raw_fd(), events, token)
            .is_ok()
        {
            conn.interest = events;
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.shared.conns.closed();
        }
    }
}

//! A minimal blocking HTTP/1.1 client for the serve API.
//!
//! Speaks just enough HTTP to drive [`crate::http::Server`] over a
//! keep-alive connection — used by the integration tests, the
//! `serve_bench` load driver, and the examples, so none of them need
//! an external HTTP dependency.

use crate::{Result, ServeError};
use mvag_data::json::{self, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One keep-alive connection to a serve endpoint.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
}

/// A decoded response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Parsed JSON body.
    pub body: Value,
    /// The `x-request-id` header the server stamped on the response,
    /// if present.
    pub request_id: Option<String>,
}

impl HttpClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: SocketAddr) -> Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient {
            reader,
            writer: stream,
            addr,
        })
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Overrides the default 30 s read timeout — tests waiting on a
    /// server-side idle reap (or `None` to block indefinitely).
    ///
    /// # Errors
    /// Socket option failures.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// `GET path` → parsed response.
    ///
    /// # Errors
    /// Transport or JSON failures.
    pub fn get(&mut self, path: &str) -> Result<HttpResponse> {
        self.request("GET", path, None)
    }

    /// `GET path` → `(status, raw body)` without JSON parsing — for
    /// text endpoints like `/metrics`.
    ///
    /// # Errors
    /// Transport failures.
    pub fn get_text(&mut self, path: &str) -> Result<(u16, String)> {
        let head = format!(
            "GET {path} HTTP/1.1\r\nhost: sgla\r\ncontent-length: 0\r\nconnection: keep-alive\r\n\r\n"
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.flush()?;
        let (status, text, _) = self.read_raw()?;
        Ok((status, text))
    }

    /// `POST path` with a JSON body → parsed response.
    ///
    /// # Errors
    /// Transport or JSON failures.
    pub fn post(&mut self, path: &str, body: &Value) -> Result<HttpResponse> {
        self.request("POST", path, Some(body.to_string_compact()))
    }

    /// `POST path` with a JSON body → `(status, raw body)` without
    /// JSON parsing — for byte-level response comparisons.
    ///
    /// # Errors
    /// Transport failures.
    pub fn post_text(&mut self, path: &str, body: &Value) -> Result<(u16, String)> {
        let body = body.to_string_compact();
        let head = format!(
            "POST {path} HTTP/1.1\r\nhost: sgla\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        let (status, text, _) = self.read_raw()?;
        Ok((status, text))
    }

    /// `PUT path` with a JSON body → parsed response (the live-tuning
    /// endpoints: `/debug/slow_threshold`, `/debug/slo`).
    ///
    /// # Errors
    /// Transport or JSON failures.
    pub fn put(&mut self, path: &str, body: &Value) -> Result<HttpResponse> {
        self.request("PUT", path, Some(body.to_string_compact()))
    }

    /// `GET path` carrying extra request headers — e.g.
    /// `("x-request-id", "abc-123")` to exercise the id-echo contract.
    ///
    /// # Errors
    /// Transport or JSON failures.
    pub fn get_with_headers(
        &mut self,
        path: &str,
        headers: &[(&str, &str)],
    ) -> Result<HttpResponse> {
        self.request_with_headers("GET", path, None, headers)
    }

    fn request(&mut self, method: &str, path: &str, body: Option<String>) -> Result<HttpResponse> {
        self.request_with_headers(method, path, body, &[])
    }

    fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<String>,
        headers: &[(&str, &str)],
    ) -> Result<HttpResponse> {
        let body = body.unwrap_or_default();
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: sgla\r\ncontent-length: {}\r\nconnection: keep-alive\r\n",
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<HttpResponse> {
        let bad = |msg: &str| ServeError::Server(format!("bad response: {msg}"));
        let (status, text, request_id) = self.read_raw()?;
        let body = json::parse(&text).map_err(|e| bad(&format!("body not JSON: {e}")))?;
        Ok(HttpResponse {
            status,
            body,
            request_id,
        })
    }

    fn read_raw(&mut self) -> Result<(u16, String, Option<String>)> {
        let bad = |msg: &str| ServeError::Server(format!("bad response: {msg}"));
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        let mut request_id = None;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(bad("eof in headers"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad content-length"))?;
                } else if name.eq_ignore_ascii_case("x-request-id") {
                    request_id = Some(value.trim().to_string());
                }
            }
        }
        let mut raw = vec![0u8; content_length];
        self.reader.read_exact(&mut raw)?;
        let text = String::from_utf8(raw).map_err(|_| bad("body not UTF-8"))?;
        Ok((status, text, request_id))
    }
}

//! Background compaction and in-place append for sharded layouts.
//!
//! A sharded layout accumulates garbage two ways: tombstoned rows
//! (deletions applied by [`Artifact::update`](crate::Artifact::update)
//! and re-sharded) and *stale* shard files — files whose coordinates
//! predate a later compaction or append and are rebased at load time
//! via the manifest's per-entry file coordinates (see
//! [`ShardEntry`]). This module turns the layout into a small storage
//! engine:
//!
//! * [`compact_sharded`] purges every tombstone from a layout,
//!   rewriting only the *dirty* shards (tombstoned or stale) and
//!   re-pointing the untouched ones through a persisted
//!   [`IdMap`] sidecar — bounding write amplification to the dirty
//!   bytes plus the (tiny) manifest and id map. Compacting a layout
//!   saved by an older release (format v4 or earlier) rewrites every
//!   shard, migrating the whole layout to the current v5 format so the
//!   result can serve memory-mapped.
//! * [`append_sharded`] routes a pure-append delta to the tail shard:
//!   exactly one shard file plus the manifest are rewritten, every
//!   other shard file stays byte-identical (its manifest entry merely
//!   gains a `file_n` so the router grows its Laplacian at load).
//! * [`compact_monolithic`] is the single-file analogue used by the
//!   `sgla-serve compact` CLI and `serve --auto-compact`.
//! * `read_shard` / `rebase_shard` are the shared (crate-internal)
//!   load path: the
//!   [`ShardRouter`](crate::router::ShardRouter) and the compactor
//!   both verify a shard file against its manifest entry and rebase
//!   stale files into the manifest's current coordinate system.
//!
//! # Crash consistency
//!
//! Every multi-file mutation follows the same commit protocol, driven
//! through a [`LayoutWriter`] so tests can inject torn writes at any
//! byte ([`mvag_data::FailpointWriter`]):
//!
//! 1. new shard files are written under *generational* names
//!    (`shard-00002.g0007.sgla`) that no committed manifest references
//!    — a crash mid-write leaves unreferenced garbage, never a corrupt
//!    live file;
//! 2. the id-map sidecar (if any) is written under a generational name
//!    too;
//! 3. the new manifest is written to `manifest.json.tmp` and committed
//!    with one atomic rename over `manifest.json`;
//! 4. old files are unlinked best-effort *after* the commit — a crash
//!    here strands garbage but the committed layout is fully loadable.
//!
//! Before the rename readers see the old layout, after it the new one;
//! there is no interleaving where a manifest references a missing or
//! half-written file. `tests/crash_consistency.rs` kills the writer at
//! every byte budget and proves exactly that.

use crate::artifact::{
    check_trainable, compact_csr, crc32, Artifact, ArtifactMeta, FORMAT_VERSION,
};
use crate::{Result, ServeError};
use mvag_data::manifest::{ShardEntry, ShardManifest};
use mvag_data::{IdMap, LayoutWriter};
use mvag_graph::{MvagDelta, ViewDelta};
use mvag_sparse::{CsrMatrix, DenseMatrix};
use std::path::{Path, PathBuf};

/// Process-wide compaction/append telemetry behind the
/// `sgla_compact_*` metrics family. Statics (not per-server state)
/// because compactions are driven from several places — the CLI's
/// `--auto-compact` sweep, tests, and future background schedulers —
/// and all of them should land on the one `/metrics` page.
mod telemetry {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    /// Histogram buckets for run duration: powers of two in
    /// microseconds (`le=1,2,4,…,2^34`) plus `+Inf`.
    pub(super) const DURATION_BUCKETS: usize = 36;

    pub(super) static RUNNING: AtomicU64 = AtomicU64::new(0);
    pub(super) static COMPLETED: AtomicU64 = AtomicU64::new(0);
    pub(super) static FAILED: AtomicU64 = AtomicU64::new(0);
    pub(super) static TOMBSTONES_PURGED: AtomicU64 = AtomicU64::new(0);
    pub(super) static SHARDS_REWRITTEN: AtomicU64 = AtomicU64::new(0);
    pub(super) static BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);
    pub(super) static DIRTY_BYTES: AtomicU64 = AtomicU64::new(0);
    pub(super) static APPENDS: AtomicU64 = AtomicU64::new(0);
    pub(super) static APPENDED_NODES: AtomicU64 = AtomicU64::new(0);
    pub(super) static DURATION_SUM_US: AtomicU64 = AtomicU64::new(0);
    pub(super) static DURATION: [AtomicU64; DURATION_BUCKETS] =
        [const { AtomicU64::new(0) }; DURATION_BUCKETS];

    /// Holds the running gauge up for the duration of one run; the
    /// `Drop` decrement makes the gauge panic-safe.
    pub(super) struct RunGuard {
        started: Instant,
    }

    impl RunGuard {
        pub(super) fn start() -> RunGuard {
            RUNNING.fetch_add(1, Ordering::Relaxed);
            RunGuard {
                started: Instant::now(),
            }
        }

        /// Records the run's duration and outcome counters.
        pub(super) fn observe(&self, ok: bool) {
            let dur_us = self.started.elapsed().as_micros() as u64;
            DURATION_SUM_US.fetch_add(dur_us, Ordering::Relaxed);
            let idx = if dur_us <= 1 {
                0
            } else {
                (64 - (dur_us - 1).leading_zeros()) as usize
            }
            .min(DURATION_BUCKETS - 1);
            DURATION[idx].fetch_add(1, Ordering::Relaxed);
            if ok {
                COMPLETED.fetch_add(1, Ordering::Relaxed);
            } else {
                FAILED.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    impl Drop for RunGuard {
        fn drop(&mut self) {
            RUNNING.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Compaction/append runs currently in flight, process-wide
/// (reported by `GET /health` as background-task state).
pub fn compactions_running() -> u64 {
    telemetry::RUNNING.load(std::sync::atomic::Ordering::Relaxed)
}

/// Appends the process-wide `sgla_compact_*` metrics family (run
/// counters, purge/rewrite/byte totals, the write-amplification ratio,
/// and a run-duration histogram) in Prometheus text format.
pub fn render_prometheus(out: &mut String) {
    use std::fmt::Write;
    use std::sync::atomic::Ordering;
    let load = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
    let counters: [(&str, &str, &str, u64); 9] = [
        (
            "sgla_compact_running",
            "gauge",
            "Compaction/append runs in flight.",
            load(&telemetry::RUNNING),
        ),
        (
            "sgla_compact_completed_total",
            "counter",
            "Compaction/append runs that committed.",
            load(&telemetry::COMPLETED),
        ),
        (
            "sgla_compact_failed_total",
            "counter",
            "Compaction/append runs that returned an error.",
            load(&telemetry::FAILED),
        ),
        (
            "sgla_compact_tombstones_purged_total",
            "counter",
            "Tombstoned rows purged by compactions.",
            load(&telemetry::TOMBSTONES_PURGED),
        ),
        (
            "sgla_compact_shards_rewritten_total",
            "counter",
            "Dirty shard files rewritten by compactions.",
            load(&telemetry::SHARDS_REWRITTEN),
        ),
        (
            "sgla_compact_bytes_written_total",
            "counter",
            "Bytes written by compactions and appends.",
            load(&telemetry::BYTES_WRITTEN),
        ),
        (
            "sgla_compact_dirty_bytes_total",
            "counter",
            "On-disk bytes of dirty shards before their rewrite.",
            load(&telemetry::DIRTY_BYTES),
        ),
        (
            "sgla_compact_appends_total",
            "counter",
            "In-place sharded appends committed.",
            load(&telemetry::APPENDS),
        ),
        (
            "sgla_compact_appended_nodes_total",
            "counter",
            "Nodes added by in-place sharded appends.",
            load(&telemetry::APPENDED_NODES),
        ),
    ];
    for (name, kind, help, value) in counters {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {value}");
    }
    // Write amplification: bytes written per dirty byte replaced. The
    // ratio is computed at render so the counters stay raw.
    let written = load(&telemetry::BYTES_WRITTEN);
    let dirty = load(&telemetry::DIRTY_BYTES);
    let amp = if dirty > 0 {
        written as f64 / dirty as f64
    } else {
        0.0
    };
    out.push_str("# HELP sgla_compact_write_amplification Bytes written per dirty byte replaced (0 until the first compaction).\n");
    out.push_str("# TYPE sgla_compact_write_amplification gauge\n");
    let _ = writeln!(out, "sgla_compact_write_amplification {amp}");
    out.push_str("# HELP sgla_compact_duration_us Compaction/append run duration.\n");
    out.push_str("# TYPE sgla_compact_duration_us histogram\n");
    let mut cumulative = 0u64;
    for (i, bucket) in telemetry::DURATION.iter().enumerate() {
        cumulative += bucket.load(Ordering::Relaxed);
        if i + 1 == telemetry::DURATION_BUCKETS {
            let _ = writeln!(
                out,
                "sgla_compact_duration_us_bucket{{le=\"+Inf\"}} {cumulative}"
            );
        } else {
            let _ = writeln!(
                out,
                "sgla_compact_duration_us_bucket{{le=\"{}\"}} {cumulative}",
                1u64 << i
            );
        }
    }
    let _ = writeln!(
        out,
        "sgla_compact_duration_us_sum {}",
        load(&telemetry::DURATION_SUM_US)
    );
    let _ = writeln!(out, "sgla_compact_duration_us_count {cumulative}");
}

/// What a [`compact_sharded`] / [`compact_monolithic`] run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Tombstoned rows purged from the layout.
    pub purged: usize,
    /// Shard files rewritten (the dirty set).
    pub shards_rewritten: usize,
    /// Shard files left byte-identical on disk.
    pub shards_kept: usize,
    /// Shards whose rows were all tombstoned and which were dropped
    /// from the manifest entirely.
    pub shards_dropped: usize,
    /// Bytes written (new shard files + id map + manifest).
    pub bytes_written: u64,
    /// On-disk bytes of the dirty shards before the rewrite — the
    /// write-amplification denominator: `bytes_written` is bounded by
    /// these bytes plus the small sidecars, never by the layout size.
    pub dirty_bytes_before: u64,
}

impl CompactionStats {
    /// True when the layout was already fully compact and nothing was
    /// written.
    pub fn is_noop(&self) -> bool {
        self.shards_rewritten == 0 && self.purged == 0
    }
}

/// What an [`append_sharded`] run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppendStats {
    /// Nodes appended.
    pub added: usize,
    /// Index of the (tail) shard that absorbed them.
    pub tail_shard: usize,
    /// Shard files left byte-identical on disk.
    pub shards_kept: usize,
    /// Bytes written (new tail shard + manifest).
    pub bytes_written: u64,
}

/// Resolves `path` (a layout directory or the manifest file itself)
/// to its parsed manifest and containing directory.
pub(crate) fn open_layout(path: &Path) -> Result<(ShardManifest, PathBuf)> {
    let manifest_path = if path.is_dir() {
        path.join(Artifact::MANIFEST_FILE)
    } else {
        path.to_path_buf()
    };
    let manifest =
        ShardManifest::load(&manifest_path).map_err(|e| ServeError::Corrupt(e.to_string()))?;
    let dir = manifest_path
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    Ok((manifest, dir))
}

/// Loads the id-map sidecar the manifest references, if any.
pub(crate) fn load_layout_id_map(dir: &Path, manifest: &ShardManifest) -> Result<Option<IdMap>> {
    match &manifest.id_map {
        None => Ok(None),
        Some(name) => IdMap::load(&dir.join(name))
            .map(Some)
            .map_err(|e| ServeError::Corrupt(format!("id-map sidecar {name}: {e}"))),
    }
}

/// Reads, checksums, decodes, and rebases one shard file — the one
/// load path shared by the router and the compactor, so both see the
/// same verified, current-coordinate artifact.
pub(crate) fn read_shard(
    dir: &Path,
    manifest: &ShardManifest,
    idx: usize,
    id_map: Option<&IdMap>,
) -> Result<Artifact> {
    Ok(read_shard_with_norms(dir, manifest, idx, id_map)?.0)
}

/// [`read_shard`] plus the per-row norms persisted in a v5 shard file
/// (`None` for older formats). Rebasing rewrites graph coordinates,
/// never embedding rows, so the norms stay valid for the rebased
/// artifact.
pub(crate) fn read_shard_with_norms(
    dir: &Path,
    manifest: &ShardManifest,
    idx: usize,
    id_map: Option<&IdMap>,
) -> Result<(Artifact, Option<Vec<f64>>)> {
    let entry = &manifest.shards[idx];
    let fail = |msg: String| ServeError::Corrupt(format!("shard {idx} ({}): {msg}", entry.file));
    let raw = std::fs::read(dir.join(&entry.file))?;
    if entry.bytes != 0 && raw.len() as u64 != entry.bytes {
        return Err(fail(format!(
            "file is {} bytes, manifest says {}",
            raw.len(),
            entry.bytes
        )));
    }
    if entry.crc32 != 0 && crc32(&raw) != entry.crc32 {
        return Err(fail("file checksum does not match the manifest".into()));
    }
    let (artifact, norms) = Artifact::decode_with_norms(bytes::Bytes::from(raw))?;
    Ok((rebase_shard(artifact, manifest, idx, id_map)?, norms))
}

/// Verifies a decoded shard against its manifest entry and, when the
/// file is *stale*, rebases it into the manifest's current coordinate
/// system:
///
/// * a bare `file_n` entry (the file predates in-place appends) keeps
///   its ids and merely grows the Laplacian's column space to the
///   current `n`;
/// * a shifted entry (`file_row_start`, written by a compaction that
///   skipped this shard) remaps Laplacian columns through the id map,
///   dropping purged columns, and slides the row range down.
///
/// Compaction always rewrites previously-stale shards, so at most one
/// rebase ever applies — id maps never compose.
pub(crate) fn rebase_shard(
    mut artifact: Artifact,
    manifest: &ShardManifest,
    idx: usize,
    id_map: Option<&IdMap>,
) -> Result<Artifact> {
    let entry = &manifest.shards[idx];
    let fail = |msg: String| ServeError::Corrupt(format!("shard {idx} ({}): {msg}", entry.file));
    // The coordinates the file itself is expected to carry.
    let file_start = entry.file_row_start.unwrap_or(entry.row_start);
    let file_end = entry.file_row_end.unwrap_or(entry.row_end);
    let file_n = entry.file_n.unwrap_or(manifest.n);
    let m = &artifact.meta;
    if m.row_start != file_start || m.row_end != file_end {
        return Err(fail(format!(
            "covers rows {}..{}, manifest says the file holds {file_start}..{file_end}",
            m.row_start, m.row_end
        )));
    }
    if m.n != file_n || m.k != manifest.k || m.dim != manifest.dim || m.dataset != manifest.dataset
    {
        return Err(fail("shard metadata disagrees with the manifest".into()));
    }
    if !entry.is_stale() {
        return Ok(artifact);
    }
    artifact.laplacian = if entry.file_row_start.is_some() {
        // Shifted: a compaction purged ids below/inside this shard's
        // old range without rewriting the file.
        let map = id_map.ok_or_else(|| {
            fail("shifted shard file but the layout has no id-map sidecar".into())
        })?;
        if !artifact.tombstones.is_empty() {
            // Compaction purges tombstones everywhere; a shifted file
            // still carrying some means the map cannot describe it.
            return Err(fail("shifted shard file still carries tombstones".into()));
        }
        if map.old_n != file_n {
            return Err(fail(format!(
                "id map covers old n = {}, file has n = {file_n}",
                map.old_n
            )));
        }
        remap_csr_columns(&artifact.laplacian, map, manifest.n)?
    } else {
        // Bare `file_n`: an in-place append grew the layout past this
        // file; ids are unchanged, rows just need more columns.
        grow_csr_columns(&artifact.laplacian, manifest.n)?
    };
    artifact.meta.n = manifest.n;
    artifact.meta.row_start = entry.row_start;
    artifact.meta.row_end = entry.row_end;
    artifact.meta.update_count = artifact.meta.update_count.max(manifest.update_count);
    artifact.meta.compaction_count = artifact
        .meta
        .compaction_count
        .max(manifest.compaction_count);
    artifact
        .validate()
        .map_err(|e| fail(format!("after rebase: {e}")))?;
    Ok(artifact)
}

/// The generation number the *next* commit against `manifest` uses in
/// its file names: one past the total number of commits so far, so
/// generational names never collide with a live file.
fn next_generation(manifest: &ShardManifest) -> u64 {
    manifest.update_count + manifest.compaction_count + 1
}

fn gen_shard_file(index: usize, generation: u64) -> String {
    format!("shard-{index:05}.g{generation:04}.sgla")
}

fn gen_idmap_file(generation: u64) -> String {
    format!("idmap-g{generation:04}.json")
}

/// Same values and column ids, wider column space.
fn grow_csr_columns(m: &CsrMatrix, ncols: usize) -> Result<CsrMatrix> {
    CsrMatrix::from_raw_parts(
        m.nrows(),
        ncols,
        m.indptr().to_vec(),
        m.column_indices().to_vec(),
        m.values().to_vec(),
    )
    .map_err(|e| ServeError::Corrupt(format!("rebased laplacian: {e}")))
}

/// Remaps every column id through `map`, dropping purged columns; the
/// result has `ncols` columns (the layout's current `n`, which may
/// exceed `map.new_n` after later appends).
fn remap_csr_columns(m: &CsrMatrix, map: &IdMap, ncols: usize) -> Result<CsrMatrix> {
    let mut indptr = Vec::with_capacity(m.nrows() + 1);
    let mut cols = Vec::with_capacity(m.column_indices().len());
    let mut vals = Vec::with_capacity(m.values().len());
    indptr.push(0);
    for row in 0..m.nrows() {
        for (&c, &v) in m.row_cols(row).iter().zip(m.row_vals(row)) {
            if let Some(new_c) = map.map(c) {
                cols.push(new_c);
                vals.push(v);
            }
        }
        indptr.push(cols.len());
    }
    CsrMatrix::from_raw_parts(m.nrows(), ncols, indptr, cols, vals)
        .map_err(|e| ServeError::Corrupt(format!("rebased laplacian: {e}")))
}

/// Purges every tombstone from a sharded layout in place.
///
/// Only *dirty* shards — those carrying tombstones or left stale by an
/// earlier compaction/append — are rewritten; clean shard files stay
/// byte-identical and are re-pointed through the persisted [`IdMap`]
/// sidecar (their manifest entries gain file coordinates). When the
/// layout predates the current artifact format (v4 or earlier), every
/// shard counts as dirty: compaction doubles as the v5 migration and
/// never commits a manifest that claims the current format while
/// pointing at legacy files. A shard
/// whose rows are all tombstoned is dropped from the manifest. All
/// writes go through `writer` and commit with one atomic rename of the
/// manifest; IVF sidecars (now covering wrong rows) are unlinked
/// best-effort after the commit.
///
/// # Errors
/// [`ServeError::Corrupt`] for a layout that fails verification,
/// [`ServeError::InvalidArgument`] if compaction would leave fewer
/// than 3 rows, I/O errors from `writer`.
pub fn compact_sharded(path: &Path, writer: &mut dyn LayoutWriter) -> Result<CompactionStats> {
    let mut span = mvag_obs::span("compact.sharded");
    let guard = telemetry::RunGuard::start();
    let out = compact_sharded_inner(path, writer);
    guard.observe(out.is_ok());
    if let Ok(stats) = &out {
        record_compaction(stats);
        span.counter("purged", stats.purged as u64);
        span.counter("shards_rewritten", stats.shards_rewritten as u64);
        span.counter("bytes_written", stats.bytes_written);
    }
    out
}

/// Folds one compaction's stats into the process-wide counters.
fn record_compaction(stats: &CompactionStats) {
    use std::sync::atomic::Ordering::Relaxed;
    telemetry::TOMBSTONES_PURGED.fetch_add(stats.purged as u64, Relaxed);
    telemetry::SHARDS_REWRITTEN.fetch_add(stats.shards_rewritten as u64, Relaxed);
    telemetry::BYTES_WRITTEN.fetch_add(stats.bytes_written, Relaxed);
    telemetry::DIRTY_BYTES.fetch_add(stats.dirty_bytes_before, Relaxed);
}

fn compact_sharded_inner(path: &Path, writer: &mut dyn LayoutWriter) -> Result<CompactionStats> {
    let (manifest, dir) = open_layout(path)?;
    let old_id_map = load_layout_id_map(&dir, &manifest)?;
    // A pre-v5 layout makes *every* shard dirty: compaction is the
    // migration path, and a committed manifest claiming the current
    // format must never point at legacy shard files (the mapped open
    // would quietly fall back to owned on them).
    let migrating = manifest.artifact_format_version < FORMAT_VERSION;
    let dirty: Vec<usize> = manifest
        .shards
        .iter()
        .enumerate()
        .filter(|(_, e)| migrating || e.tombstones > 0 || e.is_stale())
        .map(|(i, _)| i)
        .collect();
    if dirty.is_empty() {
        return Ok(CompactionStats::default());
    }
    let mut loaded: Vec<Option<Artifact>> = (0..manifest.shards.len()).map(|_| None).collect();
    for &i in &dirty {
        loaded[i] = Some(read_shard(&dir, &manifest, i, old_id_map.as_ref())?);
    }
    // The union of tombstones across dirty shards drives the id shift.
    // (Clean shards have none: `entry.tombstones > 0` makes a shard
    // dirty.)
    let mut purged: Vec<usize> = loaded
        .iter()
        .flatten()
        .flat_map(|a| a.tombstones.iter().copied())
        .collect();
    purged.sort_unstable();
    purged.dedup();
    let id_map = IdMap::new(manifest.n, purged)
        .map_err(|e| ServeError::Corrupt(format!("layout tombstones: {e}")))?;
    check_trainable(id_map.new_n)?;
    let generation = next_generation(&manifest);
    let purged_below = |row: usize| id_map.purged.partition_point(|&p| p < row);

    let mut stats = CompactionStats {
        purged: id_map.purged.len(),
        ..CompactionStats::default()
    };
    let mut entries: Vec<ShardEntry> = Vec::with_capacity(manifest.shards.len());
    let mut stale_files: Vec<String> = Vec::new();
    for (i, entry) in manifest.shards.iter().enumerate() {
        let Some(a) = &loaded[i] else {
            // Clean shard: the file stays byte-identical; when ids
            // shifted, the entry is re-pointed through the id map.
            stats.shards_kept += 1;
            let mut e = entry.clone();
            if !id_map.purged.is_empty() {
                e.row_start = entry.row_start - purged_below(entry.row_start);
                e.row_end = entry.row_end - purged_below(entry.row_end);
                e.file_row_start = Some(entry.row_start);
                e.file_row_end = Some(entry.row_end);
                e.file_n = Some(manifest.n);
            }
            entries.push(e);
            continue;
        };
        stats.dirty_bytes_before += entry.bytes;
        stale_files.push(entry.file.clone());
        let live_global: Vec<usize> = (entry.row_start..entry.row_end)
            .filter(|&g| id_map.map(g).is_some())
            .collect();
        let Some(&first_live) = live_global.first() else {
            stats.shards_dropped += 1;
            continue;
        };
        let new_start = id_map.map(first_live).expect("first_live is live");
        let local: Vec<usize> = live_global.iter().map(|&g| g - entry.row_start).collect();
        let mut labels = Vec::with_capacity(local.len());
        let mut embedding = DenseMatrix::zeros(local.len(), manifest.dim);
        for (new, &old) in local.iter().enumerate() {
            labels.push(a.labels[old]);
            embedding.row_mut(new).copy_from_slice(a.embedding.row(old));
        }
        let laplacian = compact_csr(&a.laplacian, &local, &id_map)?;
        let shard = Artifact {
            meta: ArtifactMeta {
                dataset: manifest.dataset.clone(),
                n: id_map.new_n,
                k: manifest.k,
                dim: manifest.dim,
                seed: a.meta.seed,
                row_start: new_start,
                row_end: new_start + local.len(),
                parent_seed: a.meta.parent_seed,
                update_count: manifest.update_count,
                compaction_count: manifest.compaction_count + 1,
            },
            weights: a.weights.clone(),
            laplacian,
            labels,
            centroids: a.centroids.clone(),
            embedding,
            tombstones: Vec::new(),
        };
        shard.validate()?;
        let encoded = shard.encode()?;
        let file = gen_shard_file(i, generation);
        writer.write_file(&dir.join(&file), encoded.as_ref())?;
        stats.bytes_written += encoded.len() as u64;
        stats.shards_rewritten += 1;
        entries.push(ShardEntry {
            file,
            row_start: shard.meta.row_start,
            row_end: shard.meta.row_end,
            bytes: encoded.len() as u64,
            crc32: crc32(encoded.as_ref()),
            ..ShardEntry::default()
        });
    }

    // The id-map sidecar is only needed while some entry still points
    // at a shifted file.
    let id_map_file = if entries.iter().any(|e| e.file_row_start.is_some()) {
        let name = gen_idmap_file(generation);
        let json = id_map.to_json();
        writer.write_file(&dir.join(&name), json.as_bytes())?;
        stats.bytes_written += json.len() as u64;
        Some(name)
    } else {
        None
    };
    let new_manifest = ShardManifest {
        dataset: manifest.dataset.clone(),
        n: id_map.new_n,
        k: manifest.k,
        dim: manifest.dim,
        seed: manifest.seed,
        artifact_format_version: FORMAT_VERSION,
        update_count: manifest.update_count,
        compaction_count: manifest.compaction_count + 1,
        id_map: id_map_file,
        shards: entries,
    };
    new_manifest
        .validate()
        .map_err(|e| ServeError::Corrupt(format!("compacted manifest: {e}")))?;
    commit_manifest(&dir, &new_manifest, writer, &mut stats.bytes_written)?;

    // Post-commit cleanup is best-effort: a crash here strands
    // unreferenced files, never an unloadable layout.
    for file in stale_files {
        let _ = writer.remove_file(&dir.join(file));
    }
    if let Some(old) = &manifest.id_map {
        if new_manifest.id_map.as_ref() != Some(old) {
            let _ = writer.remove_file(&dir.join(old));
        }
    }
    if !id_map.purged.is_empty() || stats.shards_dropped > 0 {
        // Every IVF sidecar indexes pre-compaction rows now.
        for i in 0..manifest.shards.len() {
            let _ = writer.remove_file(&dir.join(Artifact::shard_index_file_name(i)));
        }
    }
    Ok(stats)
}

/// Routes a pure-append delta to a sharded layout's tail shard:
/// exactly one shard file is rewritten (under a fresh generational
/// name) and the manifest committed with an atomic rename; every other
/// shard file stays byte-identical, its entry merely gaining a
/// `file_n` so the router grows its Laplacian column space at load.
///
/// The base is *frozen*: appended rows get serving state estimated
/// from what is resident — the label is the weight-majority vote of
/// their delta-edge neighbors inside the tail shard (or the delta's
/// own `added_labels` when present), the embedding row the weighted
/// mean of those neighbors' rows, falling back to the assigned label's
/// centroid; Laplacian rows are identity placeholders. A later full
/// `sgla-serve update` retrain folds the appended rows in exactly.
///
/// # Errors
/// [`ServeError::InvalidArgument`] for deltas that are not pure
/// appends, reference out-of-range or tombstoned-in-tail endpoints, or
/// append nothing; [`ServeError::Corrupt`] for broken layouts.
pub fn append_sharded(
    path: &Path,
    delta: &MvagDelta,
    writer: &mut dyn LayoutWriter,
) -> Result<AppendStats> {
    use std::sync::atomic::Ordering::Relaxed;
    let mut span = mvag_obs::span("compact.append");
    let guard = telemetry::RunGuard::start();
    let out = append_sharded_inner(path, delta, writer);
    guard.observe(out.is_ok());
    if let Ok(stats) = &out {
        telemetry::APPENDS.fetch_add(1, Relaxed);
        telemetry::APPENDED_NODES.fetch_add(stats.added as u64, Relaxed);
        telemetry::BYTES_WRITTEN.fetch_add(stats.bytes_written, Relaxed);
        span.counter("added", stats.added as u64);
        span.counter("bytes_written", stats.bytes_written);
    }
    out
}

fn append_sharded_inner(
    path: &Path,
    delta: &MvagDelta,
    writer: &mut dyn LayoutWriter,
) -> Result<AppendStats> {
    let (manifest, dir) = open_layout(path)?;
    if !delta.is_append_only() {
        return Err(ServeError::InvalidArgument(
            "in-place sharded append handles pure appends only; removals and edits go through \
             a full `sgla-serve update` of the monolithic artifact"
                .into(),
        ));
    }
    let added = delta.added_nodes;
    if added == 0 {
        return Err(ServeError::InvalidArgument(
            "delta appends no nodes; nothing to do".into(),
        ));
    }
    let n_old = manifest.n;
    let n_new = n_old + added;
    for view in &delta.views {
        match view {
            ViewDelta::Edges(edges) => {
                if let Some(&(u, v, _)) = edges.iter().find(|&&(u, v, _)| u >= n_new || v >= n_new)
                {
                    return Err(ServeError::InvalidArgument(format!(
                        "delta edge ({u}, {v}) references a node >= {n_new}"
                    )));
                }
            }
            ViewDelta::Rows(rows) => {
                if rows.nrows() != 0 && rows.nrows() != added {
                    return Err(ServeError::InvalidArgument(format!(
                        "delta attribute view has {} rows for {added} appended nodes",
                        rows.nrows()
                    )));
                }
            }
        }
    }
    if let Some(labels) = &delta.added_labels {
        if labels.len() != added {
            return Err(ServeError::InvalidArgument(format!(
                "delta carries {} labels for {added} appended nodes",
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= manifest.k) {
            return Err(ServeError::InvalidArgument(format!(
                "appended label {bad} >= k = {}",
                manifest.k
            )));
        }
    }
    let id_map = load_layout_id_map(&dir, &manifest)?;
    let tail = manifest.shards.len() - 1;
    let a = read_shard(&dir, &manifest, tail, id_map.as_ref())?;
    let tail_start = a.meta.row_start;
    // Tombstoned tail rows must not gain edges (matching the
    // artifact-level conflict rule); tombstones in non-resident shards
    // cannot be checked without loading them and are left to the next
    // full update.
    for view in &delta.views {
        if let ViewDelta::Edges(edges) = view {
            if let Some(&(u, v, _)) = edges
                .iter()
                .find(|&&(u, v, _)| a.is_tombstoned(u) || a.is_tombstoned(v))
            {
                return Err(ServeError::InvalidArgument(format!(
                    "delta edge ({u}, {v}) touches a tombstoned row"
                )));
            }
        }
    }

    // Frozen-base estimates for the appended rows, from neighbors
    // resident in the tail shard (or appended earlier in this delta).
    let dim = manifest.dim;
    let fallback_label = most_frequent_live_label(&a);
    let mut labels_new: Vec<usize> = Vec::with_capacity(added);
    let mut rows_new = DenseMatrix::zeros(added, dim);
    for j in 0..added {
        let g = n_old + j;
        let mut label_weight = vec![0.0f64; manifest.k];
        let mut row = vec![0.0f64; dim];
        let mut weight_sum = 0.0f64;
        let mut visit = |other: usize, w: f64| {
            let w = w.abs().max(f64::MIN_POSITIVE);
            let (label, emb): (usize, &[f64]) = if other >= n_old {
                let i = other - n_old;
                (labels_new[i], rows_new.row(i))
            } else if other >= tail_start && other < a.meta.row_end && !a.is_tombstoned(other) {
                (
                    a.labels[other - tail_start],
                    a.embedding.row(other - tail_start),
                )
            } else {
                return; // frozen base outside the tail shard
            };
            label_weight[label] += w;
            weight_sum += w;
            for (acc, &x) in row.iter_mut().zip(emb) {
                *acc += w * x;
            }
        };
        for view in &delta.views {
            if let ViewDelta::Edges(edges) = view {
                for &(u, v, w) in edges {
                    if u == g && v < g {
                        visit(v, w);
                    } else if v == g && u < g {
                        visit(u, w);
                    }
                }
            }
        }
        let label = match &delta.added_labels {
            Some(labels) => labels[j],
            None => label_weight
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w > 0.0)
                .max_by(|(_, x), (_, y)| x.partial_cmp(y).expect("finite weights"))
                .map(|(l, _)| l)
                .unwrap_or(fallback_label),
        };
        labels_new.push(label);
        if weight_sum > 0.0 {
            for x in &mut row {
                *x /= weight_sum;
            }
        } else {
            row.copy_from_slice(a.centroids.row(label));
        }
        rows_new.row_mut(j).copy_from_slice(&row);
    }

    // The new tail: old rows verbatim (column space grown), appended
    // rows with identity Laplacian placeholders.
    let mut labels = a.labels.clone();
    labels.extend_from_slice(&labels_new);
    let old_rows = a.meta.rows();
    let mut embedding = DenseMatrix::zeros(old_rows + added, dim);
    for r in 0..old_rows {
        embedding.row_mut(r).copy_from_slice(a.embedding.row(r));
    }
    for j in 0..added {
        embedding
            .row_mut(old_rows + j)
            .copy_from_slice(rows_new.row(j));
    }
    let grown = grow_csr_columns(&a.laplacian, n_new)?;
    let mut indptr = grown.indptr().to_vec();
    let mut cols = grown.column_indices().to_vec();
    let mut vals = grown.values().to_vec();
    for j in 0..added {
        cols.push(n_old + j);
        vals.push(1.0);
        indptr.push(cols.len());
    }
    let laplacian = CsrMatrix::from_raw_parts(old_rows + added, n_new, indptr, cols, vals)
        .map_err(|e| ServeError::Corrupt(format!("appended laplacian: {e}")))?;
    let shard = Artifact {
        meta: ArtifactMeta {
            dataset: manifest.dataset.clone(),
            n: n_new,
            k: manifest.k,
            dim,
            seed: a.meta.seed,
            row_start: tail_start,
            row_end: a.meta.row_end + added,
            parent_seed: a.meta.parent_seed,
            update_count: manifest.update_count + 1,
            compaction_count: manifest.compaction_count,
        },
        weights: a.weights.clone(),
        laplacian,
        labels,
        centroids: a.centroids.clone(),
        embedding,
        tombstones: a.tombstones.clone(),
    };
    shard.validate()?;
    let encoded = shard.encode()?;
    let generation = next_generation(&manifest);
    let file = gen_shard_file(tail, generation);
    writer.write_file(&dir.join(&file), encoded.as_ref())?;
    let mut stats = AppendStats {
        added,
        tail_shard: tail,
        shards_kept: tail,
        bytes_written: encoded.len() as u64,
    };

    let mut entries: Vec<ShardEntry> = Vec::with_capacity(manifest.shards.len());
    for (i, entry) in manifest.shards.iter().enumerate() {
        if i == tail {
            entries.push(ShardEntry {
                file: file.clone(),
                row_start: shard.meta.row_start,
                row_end: shard.meta.row_end,
                bytes: encoded.len() as u64,
                crc32: crc32(encoded.as_ref()),
                tombstones: shard.tombstones.len(),
                ..ShardEntry::default()
            });
        } else {
            // Untouched file: its ids are stable under append, it just
            // predates the new `n` now.
            let mut e = entry.clone();
            e.file_n = Some(e.file_n.unwrap_or(n_old));
            entries.push(e);
        }
    }
    let new_manifest = ShardManifest {
        dataset: manifest.dataset.clone(),
        n: n_new,
        k: manifest.k,
        dim: manifest.dim,
        seed: manifest.seed,
        artifact_format_version: FORMAT_VERSION,
        update_count: manifest.update_count + 1,
        compaction_count: manifest.compaction_count,
        id_map: manifest.id_map.clone(),
        shards: entries,
    };
    new_manifest
        .validate()
        .map_err(|e| ServeError::Corrupt(format!("appended manifest: {e}")))?;
    commit_manifest(&dir, &new_manifest, writer, &mut stats.bytes_written)?;

    if new_manifest.shards[tail].file != manifest.shards[tail].file {
        let _ = writer.remove_file(&dir.join(&manifest.shards[tail].file));
    }
    // Every IVF sidecar was trained for the old `n`; none survives.
    for i in 0..manifest.shards.len() {
        let _ = writer.remove_file(&dir.join(Artifact::shard_index_file_name(i)));
    }
    Ok(stats)
}

/// Purges a monolithic artifact's tombstones in place (or to `out`):
/// the compacted artifact is written to a temp file and committed with
/// one atomic rename. An IVF sidecar of `out` is retrained over the
/// compacted rows with its original parameters, or unlinked if that
/// fails — a stale sidecar must never survive (its row coordinates no
/// longer match and every load would fail).
///
/// # Errors
/// Same as [`Artifact::compact`], plus I/O errors from `writer`.
pub fn compact_monolithic(
    path: &Path,
    out: &Path,
    writer: &mut dyn LayoutWriter,
) -> Result<CompactionStats> {
    let mut span = mvag_obs::span("compact.monolithic");
    let guard = telemetry::RunGuard::start();
    let result = compact_monolithic_inner(path, out, writer);
    guard.observe(result.is_ok());
    if let Ok(stats) = &result {
        record_compaction(stats);
        span.counter("purged", stats.purged as u64);
        span.counter("bytes_written", stats.bytes_written);
    }
    result
}

fn compact_monolithic_inner(
    path: &Path,
    out: &Path,
    writer: &mut dyn LayoutWriter,
) -> Result<CompactionStats> {
    let artifact = Artifact::load(path)?;
    let before = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    if artifact.tombstone_count() == 0 {
        return Ok(CompactionStats::default());
    }
    let (compacted, id_map) = artifact.compact()?;
    let encoded = compacted.encode()?;
    let tmp = out.with_extension("sgla.tmp");
    writer.write_file(&tmp, encoded.as_ref())?;
    writer.rename(&tmp, out)?;
    let stats = CompactionStats {
        purged: id_map.purged.len(),
        shards_rewritten: 1,
        shards_kept: 0,
        shards_dropped: 0,
        bytes_written: encoded.len() as u64,
        dirty_bytes_before: before,
    };
    let sidecar = Artifact::index_sidecar_path(out);
    if sidecar.is_file() {
        let retrained = mvag_index::IvfIndex::load(&sidecar)
            .ok()
            .and_then(|old| compacted.build_ivf(&old.config()).ok())
            .and_then(|index| index.save(&sidecar).ok());
        if retrained.is_none() {
            let _ = writer.remove_file(&sidecar);
        }
    }
    Ok(stats)
}

/// Writes the manifest to `manifest.json.tmp` and commits it with one
/// atomic rename — the single point where a mutation becomes visible.
fn commit_manifest(
    dir: &Path,
    manifest: &ShardManifest,
    writer: &mut dyn LayoutWriter,
    bytes_written: &mut u64,
) -> Result<()> {
    let json = manifest.to_json();
    let tmp = dir.join("manifest.json.tmp");
    writer.write_file(&tmp, json.as_bytes())?;
    *bytes_written += json.len() as u64;
    writer.rename(&tmp, &dir.join(Artifact::MANIFEST_FILE))?;
    Ok(())
}

/// The most frequent label among a shard's live rows (smallest label
/// on ties); 0 for a shard with no live rows.
fn most_frequent_live_label(a: &Artifact) -> usize {
    let mut counts = vec![0usize; a.meta.k];
    for (local, &label) in a.labels.iter().enumerate() {
        if !a.is_tombstoned(a.meta.row_start + local) {
            counts[label] += 1;
        }
    }
    counts
        .iter()
        .enumerate()
        .max_by(|(i, x), (j, y)| x.cmp(y).then(j.cmp(i)))
        .map(|(l, _)| l)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::TrainConfig;
    use crate::engine::{EngineConfig, QueryEngine};
    use crate::router::{RouterConfig, ShardRouter};
    use mvag_data::FsWriter;

    fn trained(n: usize, seed: u64) -> Artifact {
        let mvag = mvag_graph::toy::toy_mvag(n, 3, seed);
        let mut config = TrainConfig::default();
        config.embed.dim = 6;
        Artifact::train(&mvag, &config).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sgla-compact-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn with_tombstones(mut artifact: Artifact, dead: &[usize]) -> Artifact {
        artifact.tombstones = dead.to_vec();
        artifact
    }

    #[test]
    fn compaction_rewrites_only_dirty_shards() {
        let artifact = with_tombstones(trained(60, 7), &[2, 5, 9]);
        let dir = temp_dir("dirty");
        artifact.save_sharded(&dir, 4).unwrap();
        let before: Vec<(String, u32)> = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE))
            .unwrap()
            .shards
            .iter()
            .map(|e| (e.file.clone(), e.crc32))
            .collect();
        let stats = compact_sharded(&dir, &mut FsWriter).unwrap();
        // All three tombstones land in shard 0 (rows 0..15).
        assert_eq!(stats.purged, 3);
        assert_eq!(stats.shards_rewritten, 1);
        assert_eq!(stats.shards_kept, 3);
        assert!(stats.bytes_written <= 2 * stats.dirty_bytes_before);
        let manifest = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
        assert_eq!(manifest.n, 57);
        assert_eq!(manifest.compaction_count, 1);
        assert!(manifest.id_map.is_some());
        // Kept shard files are byte-identical and re-pointed.
        for (entry, (file, crc)) in manifest.shards.iter().zip(&before).skip(1) {
            assert_eq!(&entry.file, file);
            assert_eq!(entry.crc32, *crc);
            assert!(entry.is_stale());
            let raw = std::fs::read(dir.join(&entry.file)).unwrap();
            assert_eq!(crc32(&raw), *crc);
        }
        // The compacted layout still loads and answers.
        let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        assert_eq!(crate::backend::QueryBackend::meta(&router).n, 57);
        router.cluster_of(0).unwrap();
        router.top_k_similar(30, 5).unwrap();
        // A second compaction normalizes the stale entries, then a
        // third is a no-op.
        let again = compact_sharded(&dir, &mut FsWriter).unwrap();
        assert_eq!(again.purged, 0);
        assert_eq!(again.shards_rewritten, 3);
        let manifest = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
        assert!(manifest.shards.iter().all(|e| !e.is_stale()));
        assert!(manifest.id_map.is_none());
        assert!(compact_sharded(&dir, &mut FsWriter).unwrap().is_noop());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fully_tombstoned_shard_is_dropped() {
        let artifact = trained(40, 11);
        let dir = temp_dir("drop");
        let manifest = artifact.save_sharded(&dir, 4).unwrap();
        // Tombstone every row of shard 2.
        let dead: Vec<usize> = (manifest.shards[2].row_start..manifest.shards[2].row_end).collect();
        let mut full = artifact;
        full.tombstones = dead.clone();
        full.save_sharded(&dir, 4).unwrap();
        let stats = compact_sharded(&dir, &mut FsWriter).unwrap();
        assert_eq!(stats.purged, dead.len());
        assert_eq!(stats.shards_dropped, 1);
        let manifest = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
        assert_eq!(manifest.shards.len(), 3);
        assert_eq!(manifest.n, 40 - dead.len());
        ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_rewrites_exactly_one_shard() {
        let artifact = trained(48, 3);
        let dir = temp_dir("append");
        artifact.save_sharded(&dir, 3).unwrap();
        let before = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
        let delta = MvagDelta::append(
            2,
            vec![
                ViewDelta::Edges(vec![(48, 40, 1.0), (49, 47, 2.0), (49, 48, 1.0)]),
                ViewDelta::Rows(DenseMatrix::zeros(2, 4)),
            ],
            None,
        );
        let stats = append_sharded(&dir, &delta, &mut FsWriter).unwrap();
        assert_eq!(stats.added, 2);
        assert_eq!(stats.tail_shard, 2);
        assert_eq!(stats.shards_kept, 2);
        let manifest = ShardManifest::load(&dir.join(Artifact::MANIFEST_FILE)).unwrap();
        assert_eq!(manifest.n, 50);
        assert_eq!(manifest.update_count, before.update_count + 1);
        // Untouched shard files are byte-identical (CRC and bytes).
        for (old, new) in before.shards.iter().zip(&manifest.shards).take(2) {
            assert_eq!(old.file, new.file);
            assert_eq!(old.crc32, new.crc32);
            assert_eq!(new.file_n, Some(48));
            let raw = std::fs::read(dir.join(&new.file)).unwrap();
            assert_eq!(crc32(&raw), old.crc32);
        }
        // The old tail file is gone, the new one is generational.
        assert!(!dir.join(&before.shards[2].file).exists());
        assert!(manifest.shards[2].file.contains(".g"));
        // The grown layout loads and serves the appended rows.
        let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        assert_eq!(crate::backend::QueryBackend::meta(&router).n, 50);
        let info = router.cluster_of(49).unwrap();
        assert!(info.cluster < 3);
        router.top_k_similar(49, 5).unwrap();
        router.embed_batch(&[0, 20, 48, 49]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_rejects_bad_deltas() {
        let artifact = trained(30, 5);
        let dir = temp_dir("append-bad");
        artifact.save_sharded(&dir, 2).unwrap();
        let edits = MvagDelta {
            added_nodes: 1,
            views: vec![ViewDelta::Edges(vec![])],
            added_labels: None,
            removed_nodes: vec![3],
            edits: vec![],
        };
        assert!(matches!(
            append_sharded(&dir, &edits, &mut FsWriter),
            Err(ServeError::InvalidArgument(_))
        ));
        let out_of_range = MvagDelta::append(1, vec![ViewDelta::Edges(vec![(30, 99, 1.0)])], None);
        assert!(append_sharded(&dir, &out_of_range, &mut FsWriter).is_err());
        let empty = MvagDelta::append(0, vec![], None);
        assert!(append_sharded(&dir, &empty, &mut FsWriter).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn monolithic_compaction_is_atomic_and_queryable() {
        let artifact = with_tombstones(trained(40, 9), &[0, 17, 39]);
        let dir = temp_dir("mono");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.sgla");
        artifact.save(&path).unwrap();
        let stats = compact_monolithic(&path, &path, &mut FsWriter).unwrap();
        assert_eq!(stats.purged, 3);
        let compacted = Artifact::load(&path).unwrap();
        assert_eq!(compacted.meta.n, 37);
        assert_eq!(compacted.meta.compaction_count, 1);
        assert!(compacted.tombstones.is_empty());
        QueryEngine::new(compacted, EngineConfig::default()).unwrap();
        // Already compact: no-op.
        assert!(compact_monolithic(&path, &path, &mut FsWriter)
            .unwrap()
            .is_noop());
        std::fs::remove_dir_all(&dir).ok();
    }
}

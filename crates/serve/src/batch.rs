//! Micro-batching of concurrent top-k queries.
//!
//! Request threads — threaded-backend workers and evented-backend
//! executors alike — don't call the scoring kernel directly; they
//! submit jobs to a [`Batcher`] and block on a reply channel. A single
//! drain thread collects everything that queued up while the previous
//! batch was computing (up to `max_batch`) and answers the whole batch
//! with one [`QueryBackend::top_k_batch`] pass — so under concurrent
//! load the embedding matrix is read once per *batch*, not once per
//! *request*, and per-request latency amortizes the memory traffic.
//! Under light load the queue is almost always length 1 and the drain
//! thread behaves like a direct call — no artificial delay is added.
//!
//! The batcher is transport- and backend-agnostic: it runs over any
//! [`QueryBackend`] — a monolithic engine or a shard router alike.

use crate::backend::QueryBackend;
use crate::cost::QueryCost;
use crate::engine::Neighbor;
use crate::Result;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How one queued query wants to be answered.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Full scan (bit-exact).
    Exact,
    /// IVF probe of `nprobe` lists (`0` = backend default width).
    Approx { nprobe: usize },
}

struct Job {
    node: usize,
    k: usize,
    mode: Mode,
    /// Every answer travels with the pass's cost profile: queue wait
    /// and kernel time are per member, the backend counters are the
    /// whole pass's (cost accounting is always on; callers that don't
    /// want the cost just drop it).
    reply: mpsc::Sender<(Result<Vec<Neighbor>>, QueryCost)>,
    /// Trace (request) id captured at submit time, so the drain
    /// thread can attribute queue wait and kernel time to the HTTP
    /// request even though it runs on its own thread. 0 = untraced.
    trace: u64,
    /// Submit timestamp (µs since the tracing epoch) — always
    /// captured, it feeds `QueryCost::queue_wait_us` even with
    /// tracing off.
    enqueued_us: u64,
}

#[derive(Default)]
struct Queue {
    jobs: Vec<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
}

/// Batches concurrent top-k queries into single kernel passes.
///
/// ```
/// use sgla_serve::batch::Batcher;
/// use sgla_serve::{Artifact, EngineConfig, QueryEngine, TrainConfig};
/// use std::sync::Arc;
///
/// let mvag = mvag_data::toy_mvag(40, 2, 7);
/// let mut config = TrainConfig::default();
/// config.embed.dim = 4;
/// let engine = Arc::new(
///     QueryEngine::new(Artifact::train(&mvag, &config).unwrap(), EngineConfig::default())
///         .unwrap(),
/// );
///
/// let batcher = Batcher::new(engine.clone(), 16);
/// let via_batcher = batcher.top_k(5, 3).unwrap();
/// assert_eq!(via_batcher, engine.top_k_similar(5, 3).unwrap());
/// ```
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    /// Largest batch drained in one pass (observability).
    max_batch: usize,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("max_batch", &self.max_batch)
            .finish()
    }
}

impl Batcher {
    /// Starts the drain thread over any backend. `max_batch` bounds
    /// how many queued queries one kernel pass may absorb.
    pub fn new(backend: Arc<dyn QueryBackend>, max_batch: usize) -> Batcher {
        let max_batch = max_batch.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            available: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("sgla-batcher".into())
            .spawn(move || drain_loop(&worker_shared, backend.as_ref(), max_batch))
            .expect("spawn batcher thread");
        Batcher {
            shared,
            worker: Some(worker),
            max_batch,
        }
    }

    /// Enqueues one exact query and blocks until its answer arrives.
    ///
    /// # Errors
    /// Query errors from the engine; [`crate::ServeError::Server`] if
    /// the batcher is shutting down.
    pub fn top_k(&self, node: usize, k: usize) -> Result<Vec<Neighbor>> {
        self.submit(node, k, Mode::Exact).0
    }

    /// Enqueues one approximate (IVF-probed) query and blocks until
    /// its answer arrives. `nprobe = 0` uses the backend's default
    /// probe width.
    ///
    /// # Errors
    /// Query errors from the engine (including "no index attached");
    /// [`crate::ServeError::Server`] if the batcher is shutting down.
    pub fn top_k_approx(&self, node: usize, k: usize, nprobe: usize) -> Result<Vec<Neighbor>> {
        self.submit(node, k, Mode::Approx { nprobe }).0
    }

    /// [`Batcher::top_k`] plus the query's cost profile: the shared
    /// kernel pass's backend counters with this member's own queue
    /// wait and compute time. The answer is exactly what `top_k`
    /// returns — accounting never perturbs results.
    pub fn top_k_explained(&self, node: usize, k: usize) -> (Result<Vec<Neighbor>>, QueryCost) {
        self.submit(node, k, Mode::Exact)
    }

    /// [`Batcher::top_k_approx`] plus the query's cost profile.
    pub fn top_k_approx_explained(
        &self,
        node: usize,
        k: usize,
        nprobe: usize,
    ) -> (Result<Vec<Neighbor>>, QueryCost) {
        self.submit(node, k, Mode::Approx { nprobe })
    }

    fn submit(&self, node: usize, k: usize, mode: Mode) -> (Result<Vec<Neighbor>>, QueryCost) {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().expect("batch queue lock");
            if q.shutdown {
                return (
                    Err(crate::ServeError::Server("batcher is shut down".into())),
                    QueryCost::default(),
                );
            }
            let traced = mvag_obs::enabled();
            q.jobs.push(Job {
                node,
                k,
                mode,
                reply: tx,
                trace: if traced { mvag_obs::current_trace() } else { 0 },
                enqueued_us: mvag_obs::now_us(),
            });
        }
        self.shared.available.notify_one();
        match rx.recv() {
            Ok(reply) => reply,
            Err(_) => (
                Err(crate::ServeError::Server(
                    "batcher dropped the query".into(),
                )),
                QueryCost::default(),
            ),
        }
    }

    /// Stops the drain thread; queued queries get a shutdown error.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("batch queue lock");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn drain_loop(shared: &Shared, backend: &dyn QueryBackend, max_batch: usize) {
    loop {
        let batch: Vec<Job> = {
            let mut q = shared.queue.lock().expect("batch queue lock");
            while q.jobs.is_empty() && !q.shutdown {
                q = shared.available.wait(q).expect("batch queue lock");
            }
            if q.jobs.is_empty() && q.shutdown {
                return;
            }
            let take = q.jobs.len().min(max_batch);
            q.jobs.drain(..take).collect()
        };
        // One drained batch may mix exact and approx queries; each
        // flavor gets its own kernel pass (they share the pass with
        // their own kind — the shapes of the two scans differ).
        let traced = mvag_obs::enabled();
        if traced {
            // Queue wait per request: submit → pickup by this drain.
            let picked_up = mvag_obs::now_us();
            for job in &batch {
                if job.trace != 0 {
                    mvag_obs::record(
                        job.trace,
                        "serve.queue_wait",
                        job.enqueued_us,
                        picked_up.saturating_sub(job.enqueued_us),
                        1,
                    );
                }
            }
        }
        let mut exact: Vec<(usize, (usize, usize))> = Vec::new();
        let mut approx: Vec<(usize, (usize, usize, usize))> = Vec::new();
        for (pos, job) in batch.iter().enumerate() {
            match job.mode {
                Mode::Exact => exact.push((pos, (job.node, job.k))),
                Mode::Approx { nprobe } => approx.push((pos, (job.node, job.k, nprobe))),
            }
        }
        let mut answers: Vec<Option<(Result<Vec<Neighbor>>, QueryCost)>> =
            batch.iter().map(|_| None).collect();
        // Runs one kernel pass with the first traced job's id as the
        // ambient trace (so backend-internal spans — router fan-out,
        // lazy shard loads — attach to *a* request of the batch; when
        // batches are bigger than one, siblings share those inner
        // spans), then records the pass as a `serve.backend` stage on
        // *every* job's trace — the per-request backend-time stage.
        // Returns `(answers, pass cost, pass start µs, pass µs)`; the
        // timing is taken unconditionally because it feeds the cost
        // profile even with tracing off.
        let run_pass = |members: &[usize],
                        pass: &dyn Fn() -> (Vec<Result<Vec<Neighbor>>>, QueryCost)|
         -> (Vec<Result<Vec<Neighbor>>>, QueryCost, u64, u64) {
            let start_us = mvag_obs::now_us();
            let (results, cost) = if traced {
                let pass_trace = members
                    .iter()
                    .map(|&pos| batch[pos].trace)
                    .find(|&t| t != 0)
                    .unwrap_or(0);
                mvag_obs::with_trace(pass_trace, pass)
            } else {
                pass()
            };
            let dur_us = mvag_obs::now_us().saturating_sub(start_us);
            if traced {
                for &pos in members {
                    mvag_obs::record_with(
                        batch[pos].trace,
                        "serve.backend",
                        start_us,
                        dur_us,
                        1,
                        vec![("batch", members.len() as u64)],
                    );
                }
            }
            (results, cost, start_us, dur_us)
        };
        // Each batch member gets the whole pass's backend counters
        // plus its own queue wait (submit → pass start) and the pass's
        // compute time.
        let mut fill = |members: &[usize],
                        results: Vec<Result<Vec<Neighbor>>>,
                        pass_cost: QueryCost,
                        start_us: u64,
                        dur_us: u64| {
            for (&pos, answer) in members.iter().zip(results) {
                let mut cost = pass_cost.clone();
                cost.queue_wait_us = start_us.saturating_sub(batch[pos].enqueued_us);
                cost.compute_us = dur_us;
                answers[pos] = Some((answer, cost));
            }
        };
        if !exact.is_empty() {
            let queries: Vec<(usize, usize)> = exact.iter().map(|&(_, q)| q).collect();
            let members: Vec<usize> = exact.iter().map(|&(pos, _)| pos).collect();
            let (results, cost, start_us, dur_us) =
                run_pass(&members, &|| backend.top_k_batch_costed(&queries));
            fill(&members, results, cost, start_us, dur_us);
        }
        if !approx.is_empty() {
            let queries: Vec<(usize, usize, usize)> = approx.iter().map(|&(_, q)| q).collect();
            let members: Vec<usize> = approx.iter().map(|&(pos, _)| pos).collect();
            let (results, cost, start_us, dur_us) =
                run_pass(&members, &|| backend.top_k_batch_approx_costed(&queries));
            fill(&members, results, cost, start_us, dur_us);
        }
        for (job, answer) in batch.into_iter().zip(answers) {
            // A dropped receiver just means the client went away.
            let _ = job.reply.send(answer.expect("every job answered"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Artifact, TrainConfig};
    use crate::engine::{EngineConfig, QueryEngine};
    use mvag_graph::toy::toy_mvag;

    fn engine() -> Arc<QueryEngine> {
        let mvag = toy_mvag(60, 2, 3);
        let mut config = TrainConfig::default();
        config.embed.dim = 6;
        let artifact = Artifact::train(&mvag, &config).unwrap();
        Arc::new(QueryEngine::new(artifact, EngineConfig::default()).unwrap())
    }

    #[test]
    fn concurrent_submissions_match_direct_calls() {
        let engine = engine();
        let batcher = Arc::new(Batcher::new(engine.clone(), 32));
        let mut handles = Vec::new();
        for t in 0..8usize {
            let batcher = Arc::clone(&batcher);
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                for i in 0..25usize {
                    let node = (t * 25 + i) % 60;
                    let got = batcher.top_k(node, 5).unwrap();
                    let want = engine.top_k_similar(node, 5).unwrap();
                    assert_eq!(got, want, "node {node}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn mixed_exact_and_approx_batches_route_correctly() {
        let mvag = toy_mvag(60, 2, 3);
        let mut config = TrainConfig::default();
        config.embed.dim = 6;
        let artifact = Artifact::train(&mvag, &config).unwrap();
        let engine = Arc::new(
            QueryEngine::new(
                artifact,
                EngineConfig {
                    index: Some(mvag_index::IvfConfig { nlist: 4, seed: 1 }),
                    ..EngineConfig::default()
                },
            )
            .unwrap(),
        );
        let batcher = Arc::new(Batcher::new(engine.clone(), 32));
        let mut handles = Vec::new();
        for t in 0..6usize {
            let batcher = Arc::clone(&batcher);
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                for i in 0..20usize {
                    let node = (t * 20 + i) % 60;
                    if (t + i) % 2 == 0 {
                        let got = batcher.top_k(node, 5).unwrap();
                        assert_eq!(got, engine.top_k_similar(node, 5).unwrap());
                    } else {
                        // Full probe: deterministic, equals exact.
                        let got = batcher.top_k_approx(node, 5, usize::MAX).unwrap();
                        assert_eq!(got, engine.top_k_similar(node, 5).unwrap());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = engine.index_stats();
        assert!(stats.approx_queries > 0 && stats.exact_queries > 0);
    }

    #[test]
    fn invalid_queries_get_their_own_error() {
        let engine = engine();
        let batcher = Batcher::new(engine, 8);
        assert!(batcher.top_k(10_000, 5).is_err());
        assert!(batcher.top_k(0, 5).is_ok());
    }

    #[test]
    fn shutdown_rejects_new_queries() {
        let engine = engine();
        let mut batcher = Batcher::new(engine, 8);
        batcher.shutdown();
        assert!(batcher.top_k(0, 5).is_err());
    }
}

//! Micro-batching of concurrent top-k queries.
//!
//! HTTP worker threads don't call the scoring kernel directly; they
//! submit jobs to a [`Batcher`] and block on a reply channel. A single
//! drain thread collects everything that queued up while the previous
//! batch was computing (up to `max_batch`) and answers the whole batch
//! with one [`QueryBackend::top_k_batch`] pass — so under concurrent
//! load the embedding matrix is read once per *batch*, not once per
//! *request*, and per-request latency amortizes the memory traffic.
//! Under light load the queue is almost always length 1 and the drain
//! thread behaves like a direct call — no artificial delay is added.
//!
//! The batcher is transport- and backend-agnostic: it runs over any
//! [`QueryBackend`] — a monolithic engine or a shard router alike.

use crate::backend::QueryBackend;
use crate::engine::Neighbor;
use crate::Result;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct Job {
    node: usize,
    k: usize,
    reply: mpsc::Sender<Result<Vec<Neighbor>>>,
}

#[derive(Default)]
struct Queue {
    jobs: Vec<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
}

/// Batches concurrent top-k queries into single kernel passes.
///
/// ```
/// use sgla_serve::batch::Batcher;
/// use sgla_serve::{Artifact, EngineConfig, QueryEngine, TrainConfig};
/// use std::sync::Arc;
///
/// let mvag = mvag_data::toy_mvag(40, 2, 7);
/// let mut config = TrainConfig::default();
/// config.embed.dim = 4;
/// let engine = Arc::new(
///     QueryEngine::new(Artifact::train(&mvag, &config).unwrap(), EngineConfig::default())
///         .unwrap(),
/// );
///
/// let batcher = Batcher::new(engine.clone(), 16);
/// let via_batcher = batcher.top_k(5, 3).unwrap();
/// assert_eq!(via_batcher, engine.top_k_similar(5, 3).unwrap());
/// ```
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    /// Largest batch drained in one pass (observability).
    max_batch: usize,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("max_batch", &self.max_batch)
            .finish()
    }
}

impl Batcher {
    /// Starts the drain thread over any backend. `max_batch` bounds
    /// how many queued queries one kernel pass may absorb.
    pub fn new(backend: Arc<dyn QueryBackend>, max_batch: usize) -> Batcher {
        let max_batch = max_batch.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            available: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("sgla-batcher".into())
            .spawn(move || drain_loop(&worker_shared, backend.as_ref(), max_batch))
            .expect("spawn batcher thread");
        Batcher {
            shared,
            worker: Some(worker),
            max_batch,
        }
    }

    /// Enqueues one query and blocks until its answer arrives.
    ///
    /// # Errors
    /// Query errors from the engine; [`crate::ServeError::Server`] if
    /// the batcher is shutting down.
    pub fn top_k(&self, node: usize, k: usize) -> Result<Vec<Neighbor>> {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().expect("batch queue lock");
            if q.shutdown {
                return Err(crate::ServeError::Server("batcher is shut down".into()));
            }
            q.jobs.push(Job { node, k, reply: tx });
        }
        self.shared.available.notify_one();
        rx.recv()
            .map_err(|_| crate::ServeError::Server("batcher dropped the query".into()))?
    }

    /// Stops the drain thread; queued queries get a shutdown error.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("batch queue lock");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn drain_loop(shared: &Shared, backend: &dyn QueryBackend, max_batch: usize) {
    loop {
        let batch: Vec<Job> = {
            let mut q = shared.queue.lock().expect("batch queue lock");
            while q.jobs.is_empty() && !q.shutdown {
                q = shared.available.wait(q).expect("batch queue lock");
            }
            if q.jobs.is_empty() && q.shutdown {
                return;
            }
            let take = q.jobs.len().min(max_batch);
            q.jobs.drain(..take).collect()
        };
        let queries: Vec<(usize, usize)> = batch.iter().map(|j| (j.node, j.k)).collect();
        let answers = backend.top_k_batch(&queries);
        for (job, answer) in batch.into_iter().zip(answers) {
            // A dropped receiver just means the client went away.
            let _ = job.reply.send(answer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Artifact, TrainConfig};
    use crate::engine::{EngineConfig, QueryEngine};
    use mvag_graph::toy::toy_mvag;

    fn engine() -> Arc<QueryEngine> {
        let mvag = toy_mvag(60, 2, 3);
        let mut config = TrainConfig::default();
        config.embed.dim = 6;
        let artifact = Artifact::train(&mvag, &config).unwrap();
        Arc::new(QueryEngine::new(artifact, EngineConfig::default()).unwrap())
    }

    #[test]
    fn concurrent_submissions_match_direct_calls() {
        let engine = engine();
        let batcher = Arc::new(Batcher::new(engine.clone(), 32));
        let mut handles = Vec::new();
        for t in 0..8usize {
            let batcher = Arc::clone(&batcher);
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                for i in 0..25usize {
                    let node = (t * 25 + i) % 60;
                    let got = batcher.top_k(node, 5).unwrap();
                    let want = engine.top_k_similar(node, 5).unwrap();
                    assert_eq!(got, want, "node {node}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn invalid_queries_get_their_own_error() {
        let engine = engine();
        let batcher = Batcher::new(engine, 8);
        assert!(batcher.top_k(10_000, 5).is_err());
        assert!(batcher.top_k(0, 5).is_ok());
    }

    #[test]
    fn shutdown_rejects_new_queries() {
        let engine = engine();
        let mut batcher = Batcher::new(engine, 8);
        batcher.shutdown();
        assert!(batcher.top_k(0, 5).is_err());
    }
}

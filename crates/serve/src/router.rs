//! The shard router: one query front end over many row-range shards.
//!
//! A [`ShardRouter`] opens a sharded artifact layout (shard files plus
//! the [`ShardManifest`] written by
//! [`Artifact::save_sharded`](crate::Artifact::save_sharded)) and
//! serves the same query API as a monolithic [`QueryEngine`]:
//!
//! * **`cluster_of` / `embed_batch`** are *routed*: the manifest maps
//!   each global node id to its owning shard by row range, and only
//!   that shard answers.
//! * **`top_k_similar` / `top_k_batch`** are *fanned out*: the owning
//!   shard supplies the query's embedding row, every shard scores it
//!   against its local rows, and the per-shard top-k lists are merged
//!   under the same total order (score desc, node id asc) the
//!   monolithic kernel uses — so the merged answer is **bit-identical**
//!   to scanning one big embedding matrix (proptested in
//!   `tests/shard_equivalence.rs`).
//! * **Residency** is lazy: shards load from disk on first touch
//!   (verified against the manifest's per-file size and CRC-32).
//!   With [`RouterConfig::max_resident`] `> 0` the router keeps at
//!   most that many shards in memory, evicting the least-recently-used
//!   — a host can then serve an artifact larger than its RAM, paying a
//!   reload on cold shards. When all shards are resident, top-k fan-out
//!   runs in parallel on the persistent `mvag_sparse` worker pool; in
//!   memory-capped mode it streams shard by shard so residency stays
//!   bounded during the scan.
//!
//! ```
//! use sgla_serve::prelude::*;
//! use sgla_serve::router::{RouterConfig, ShardRouter};
//!
//! let mvag = mvag_data::toy_mvag(40, 2, 7);
//! let mut config = TrainConfig::default();
//! config.embed.dim = 4;
//! let artifact = Artifact::train(&mvag, &config).unwrap();
//!
//! let dir = std::env::temp_dir().join(format!("sgla-doc-router-{}", std::process::id()));
//! artifact.save_sharded(&dir, 3).unwrap();
//!
//! let engine = QueryEngine::new(artifact, EngineConfig::default()).unwrap();
//! let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
//!
//! // The sharded answer is bit-identical to the monolithic one.
//! let direct = engine.top_k_similar(11, 5).unwrap();
//! let routed = router.top_k_similar(11, 5).unwrap();
//! assert_eq!(direct, routed);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::artifact::{Artifact, ArtifactMeta, FORMAT_VERSION, FORMAT_VERSION_V2};
use crate::backend::{IndexStats, QueryBackend};
use crate::cost::QueryCost;
use crate::engine::{
    ApproxQuery, ClusterInfo, EngineConfig, IndexCounters, Neighbor, QueryEngine, TopKHeap,
};
use crate::lru::LruCache;
use crate::store::{MmapMode, StoreMemory};
use crate::{Result, ServeError};
use mvag_data::manifest::ShardManifest;
use mvag_index::IvfIndex;
use mvag_sparse::parallel;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-shard engine configuration. Shard engines are created with
    /// their own result caches disabled (the router caches merged
    /// answers instead); `threads` sizes the top-k fan-out.
    pub engine: EngineConfig,
    /// Maximum *heap-owned* shards resident in memory at once; `0`
    /// means unbounded (every shard stays resident after first touch,
    /// fan-out runs in parallel). With a bound, top-k streams shard by
    /// shard and the least-recently-used owned shard is evicted when
    /// the budget overflows. Memory-mapped shards don't count against
    /// the budget — their pages belong to the page cache and are
    /// reclaimable by the kernel; over budget they get an
    /// `madvise(MADV_DONTNEED)` *hint* instead of an eviction (see
    /// [`RouterConfig::mmap`]).
    pub max_resident: usize,
    /// Entries in the router's merged top-k LRU cache (0 disables).
    pub cache_capacity: usize,
    /// Whether shard files are served memory-mapped (v5 layouts on
    /// supported platforms) or heap-owned. Defaults to
    /// [`MmapMode::Off`]; `sgla-serve serve` passes
    /// [`MmapMode::Auto`].
    pub mmap: MmapMode,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            engine: EngineConfig::default(),
            max_resident: 0,
            cache_capacity: 4096,
            mmap: MmapMode::Off,
        }
    }
}

/// One shard slot: the lazily-loaded engine plus an LRU tick.
struct Slot {
    engine: Option<Arc<QueryEngine>>,
    last_used: u64,
}

/// Routes and fans queries out across row-range shard engines.
pub struct ShardRouter {
    manifest: ShardManifest,
    dir: PathBuf,
    /// Id-map sidecar referenced by the manifest, loaded once at open:
    /// shard files a compaction skipped are rebased through it on
    /// every (re)load.
    id_map: Option<mvag_data::IdMap>,
    meta: ArtifactMeta,
    weights: Vec<f64>,
    config: RouterConfig,
    slots: Mutex<Vec<Slot>>,
    clock: AtomicU64,
    cache: Mutex<LruCache<(usize, usize), Vec<Neighbor>>>,
    loads: AtomicU64,
    evictions: AtomicU64,
    /// `madvise(MADV_DONTNEED)` hints issued to over-budget mapped
    /// shards (the mapped analogue of `evictions`).
    dontneed_hints: AtomicU64,
    /// Router-level exact/approx counters (per-shard engine counters
    /// would be lost on eviction, so fan-out accounting lives here).
    counters: IndexCounters,
    /// Indexes trained at shard load when no sidecar exists
    /// ([`EngineConfig::index`]), kept across evictions: an index is
    /// tiny next to its shard, and re-running quantizer training on
    /// every reload would dwarf the scan savings it provides.
    trained_indexes: Mutex<Vec<Option<IvfIndex>>>,
    /// Whether approx serving is available (shard 0 carried an index
    /// at open — via sidecar or [`EngineConfig::index`]) and its list
    /// count, captured once at open.
    index_enabled: bool,
    index_nlist: usize,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("dataset", &self.meta.dataset)
            .field("n", &self.meta.n)
            .field("shards", &self.manifest.shards.len())
            .field("resident", &self.resident_count())
            .finish()
    }
}

impl ShardRouter {
    /// Opens a sharded layout. `path` may be the manifest file itself
    /// or the directory containing a `manifest.json`. The first shard
    /// is loaded eagerly to pick up the learned view weights and to
    /// fail fast on a broken layout; the rest load on first touch.
    ///
    /// # Errors
    /// I/O failures, [`ServeError::Corrupt`] for a malformed manifest
    /// or a shard that does not match it.
    pub fn open(path: &Path, config: RouterConfig) -> Result<ShardRouter> {
        let manifest_path = if path.is_dir() {
            path.join(Artifact::MANIFEST_FILE)
        } else {
            path.to_path_buf()
        };
        let manifest =
            ShardManifest::load(&manifest_path).map_err(|e| ServeError::Corrupt(e.to_string()))?;
        if !(FORMAT_VERSION_V2..=FORMAT_VERSION).contains(&manifest.artifact_format_version) {
            return Err(ServeError::Corrupt(format!(
                "manifest references artifact format v{}, this build reads v{FORMAT_VERSION_V2} \
                 through v{FORMAT_VERSION}",
                manifest.artifact_format_version
            )));
        }
        let dir = manifest_path
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."));
        let id_map = crate::compact::load_layout_id_map(&dir, &manifest)?;
        let meta = ArtifactMeta {
            dataset: manifest.dataset.clone(),
            n: manifest.n,
            k: manifest.k,
            dim: manifest.dim,
            seed: manifest.seed,
            row_start: 0,
            row_end: manifest.n,
            // Lineage is carried in the shard files, not the manifest;
            // patched in below from shard 0.
            parent_seed: manifest.seed,
            update_count: manifest.update_count,
            compaction_count: manifest.compaction_count,
        };
        let shard_count = manifest.shards.len();
        let slots = (0..shard_count)
            .map(|_| Slot {
                engine: None,
                last_used: 0,
            })
            .collect();
        let router = ShardRouter {
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            manifest,
            dir,
            id_map,
            meta,
            weights: Vec::new(),
            config,
            slots: Mutex::new(slots),
            clock: AtomicU64::new(1),
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            dontneed_hints: AtomicU64::new(0),
            counters: IndexCounters::default(),
            trained_indexes: Mutex::new((0..shard_count).map(|_| None).collect()),
            index_enabled: false,
            index_nlist: 0,
        };
        // Weights and the lineage header are global state carried in
        // every shard; take them from shard 0 (which this also
        // validates end to end). The same load reveals whether shards
        // come with an IVF index.
        let first = router.engine_for(0)?;
        let weights = first.artifact().weights.clone();
        let index_enabled = first.index().is_some();
        let index_nlist = first.index().map_or(0, IvfIndex::nlist);
        let meta = ArtifactMeta {
            parent_seed: first.artifact().meta.parent_seed,
            // Shard 0 may be stale after an in-place tail append or a
            // compaction that skipped it; the manifest's counters win
            // when they are ahead.
            update_count: first
                .artifact()
                .meta
                .update_count
                .max(router.meta.update_count),
            compaction_count: first
                .artifact()
                .meta
                .compaction_count
                .max(router.meta.compaction_count),
            ..router.meta.clone()
        };
        Ok(ShardRouter {
            weights,
            index_enabled,
            index_nlist,
            meta,
            ..router
        })
    }

    /// The manifest this router serves.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Metadata of the logical full artifact.
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// `(shard loads, evictions)` since open — observability for the
    /// lazy-residency machinery.
    pub fn residency_stats(&self) -> (u64, u64) {
        (
            self.loads.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// `madvise(MADV_DONTNEED)` hints issued to over-budget mapped
    /// shards since open.
    pub fn dontneed_hints(&self) -> u64 {
        self.dontneed_hints.load(Ordering::Relaxed)
    }

    /// Aggregated memory accounting across all shard slots (see
    /// [`QueryBackend::store_memory`]).
    pub fn store_memory(&self) -> StoreMemory {
        let slots = self.slots.lock().expect("slot lock");
        let mut mem = StoreMemory {
            resident_hint: if self.config.max_resident == 0 {
                "none"
            } else if self.config.mmap != MmapMode::Off && crate::store::MMAP_SUPPORTED {
                "madvise"
            } else {
                "evict"
            }
            .to_string(),
            ..StoreMemory::default()
        };
        for slot in slots.iter() {
            match &slot.engine {
                Some(engine) => {
                    mem.owned_bytes += engine.store().owned_bytes();
                    mem.mapped_bytes += engine.store().mapped_bytes();
                    mem.stores.push(engine.store().kind().to_string());
                }
                None => mem.stores.push("-".to_string()),
            }
        }
        mem
    }

    fn resident_count(&self) -> usize {
        self.slots
            .lock()
            .expect("slot lock")
            .iter()
            .filter(|s| s.engine.is_some())
            .count()
    }

    /// Returns the engine for shard `idx`, loading (and possibly
    /// evicting another shard) if needed. The returned `Arc` keeps the
    /// shard alive for the caller even if it is evicted concurrently.
    fn engine_for(&self, idx: usize) -> Result<Arc<QueryEngine>> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut slots = self.slots.lock().expect("slot lock");
            if let Some(engine) = &slots[idx].engine {
                let engine = Arc::clone(engine);
                slots[idx].last_used = tick;
                return Ok(engine);
            }
        }
        // Load outside the lock: a slow disk must not serialize
        // queries against already-resident shards. Two threads may
        // race to load the same shard; the loser's copy is dropped.
        let mut span = mvag_obs::span("serve.shard_load");
        span.counter("shard", idx as u64);
        let engine = Arc::new(self.load_shard(idx)?);
        drop(span);
        let mut slots = self.slots.lock().expect("slot lock");
        if slots[idx].engine.is_none() {
            slots[idx].engine = Some(Arc::clone(&engine));
            self.loads.fetch_add(1, Ordering::Relaxed);
            self.evict_over_budget(&mut slots, idx);
        }
        slots[idx].last_used = tick;
        Ok(engine)
    }

    fn evict_over_budget(&self, slots: &mut [Slot], keep: usize) {
        if self.config.max_resident == 0 {
            return;
        }
        let budget = self.config.max_resident.max(1);
        // Owned shards pin heap, so the budget is enforced by dropping
        // the least-recently-used ones. Mapped shards are excluded:
        // their pages belong to the page cache and the kernel can
        // reclaim them under pressure anyway.
        loop {
            let owned = |s: &Slot| s.engine.as_ref().is_some_and(|e| !e.store().is_mapped());
            if slots.iter().filter(|s| owned(s)).count() <= budget {
                break;
            }
            let victim = slots
                .iter()
                .enumerate()
                .filter(|(i, s)| *i != keep && owned(s))
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    slots[i].engine = None;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break, // only `keep` is owned-resident
            }
        }
        // For mapped shards the budget degrades to a page-cache
        // *hint*: the LRU ones beyond it get `madvise(MADV_DONTNEED)`
        // — resident pages are released now rather than under
        // pressure, and fault back in bit-identically on next touch.
        let mut mapped: Vec<(u64, usize)> = slots
            .iter()
            .enumerate()
            .filter(|(i, s)| *i != keep && s.engine.as_ref().is_some_and(|e| e.store().is_mapped()))
            .map(|(i, s)| (s.last_used, i))
            .collect();
        if mapped.len() > budget {
            mapped.sort_unstable(); // oldest tick first
            for &(_, i) in &mapped[..mapped.len() - budget] {
                let engine = slots[i].engine.as_ref().expect("filtered resident");
                if engine.store().advise_dontneed() {
                    self.dontneed_hints.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Reads, checksums, decodes, cross-checks, and (for stale files)
    /// rebases one shard file — the shared
    /// [`compact::read_shard`](crate::compact) path, so the router and
    /// the compactor verify shards identically.
    fn load_shard(&self, idx: usize) -> Result<QueryEngine> {
        let entry = &self.manifest.shards[idx];
        let fail =
            |msg: String| ServeError::Corrupt(format!("shard {idx} ({}): {msg}", entry.file));
        // Shard engines keep no per-shard result cache: the router
        // caches merged answers, and per-shard partials are useless on
        // their own.
        let engine_config = EngineConfig {
            cache_capacity: 0,
            ..self.config.engine.clone()
        };
        // A persisted per-shard index sidecar (written by
        // `sgla-serve train --index ivf`) takes precedence over
        // retraining one; without a sidecar, `EngineConfig::index`
        // decides whether the shard trains its own at *first* load —
        // the trained index is cached router-side so an evicted shard
        // never re-runs quantizer training on reload.
        let index_path = self.dir.join(Artifact::shard_index_file_name(idx));
        let sidecar = if index_path.is_file() {
            Some(
                IvfIndex::load(&index_path)
                    .map_err(|e| fail(format!("index sidecar {}: {e}", index_path.display())))?,
            )
        } else {
            None
        };
        let cached = || self.trained_indexes.lock().expect("trained index lock")[idx].clone();
        if self.config.mmap != MmapMode::Off {
            // Mapped serving needs a pre-built index (training would
            // fault every embedding page): a sidecar or a
            // router-cached one. Stale shards (pending rebase) and
            // pre-v5 files can't be mapped either; under Auto all of
            // these fall back to the owned load below.
            let index = sidecar.clone().or_else(cached);
            let trainable = self.config.engine.index.is_some() && index.is_none();
            let attempt = if trainable {
                Err(ServeError::InvalidArgument(
                    "index training requires an owned load".into(),
                ))
            } else {
                crate::store::open_shard_mapped(&self.dir, &self.manifest, idx).and_then(|mapped| {
                    let config = EngineConfig {
                        index: None,
                        ..engine_config.clone()
                    };
                    QueryEngine::from_mapped(mapped, config, index)
                })
            };
            match (attempt, self.config.mmap) {
                (Ok(engine), _) => return Ok(engine),
                (Err(e), MmapMode::On) => {
                    return Err(fail(format!("cannot serve memory-mapped (--mmap on): {e}")))
                }
                (Err(_), _) => {} // Auto: fall back to the owned path.
            }
        }
        let (artifact, norms) = crate::compact::read_shard_with_norms(
            &self.dir,
            &self.manifest,
            idx,
            self.id_map.as_ref(),
        )?;
        if let Some(index) = sidecar.or_else(cached) {
            let engine_config = EngineConfig {
                index: None,
                ..engine_config
            };
            return QueryEngine::with_index_and_norms(artifact, engine_config, index, norms);
        }
        let engine = QueryEngine::new_with_norms(artifact, engine_config, norms)?;
        if let Some(index) = engine.index() {
            self.trained_indexes.lock().expect("trained index lock")[idx] = Some(index.clone());
        }
        Ok(engine)
    }

    fn check_node(&self, node: usize) -> Result<usize> {
        self.manifest.shard_of(node).ok_or_else(|| {
            ServeError::InvalidQuery(format!("node {node} out of range (n = {})", self.meta.n))
        })
    }

    /// Cluster assignment and centroid distance for one node, answered
    /// by the shard owning its row.
    ///
    /// # Errors
    /// [`ServeError::InvalidQuery`] for out-of-range nodes; shard-load
    /// failures surface as [`ServeError::Corrupt`] / [`ServeError::Io`].
    pub fn cluster_of(&self, node: usize) -> Result<ClusterInfo> {
        let shard = self.check_node(node)?;
        self.engine_for(shard)?.cluster_of(node)
    }

    /// [`ShardRouter::cluster_of`] plus the lookup's cost profile:
    /// whether answering it forced a shard load. The answer is exactly
    /// what `cluster_of` returns — accounting never perturbs results.
    pub fn cluster_of_costed(&self, node: usize) -> (Result<ClusterInfo>, QueryCost) {
        let mut cost = QueryCost::exact();
        cost.shards_touched = 1;
        cost.rows_scanned = 1;
        let loads_before = self.loads.load(Ordering::Relaxed);
        let answer = self.cluster_of(node);
        cost.shards_loaded = self
            .loads
            .load(Ordering::Relaxed)
            .saturating_sub(loads_before);
        cost.shards_resident = self.resident_count() as u64;
        (answer, cost)
    }

    /// Embedding rows for a batch of nodes, each fetched from its
    /// owning shard; the whole batch is rejected if any id is invalid
    /// (matching [`QueryEngine::embed_batch`] semantics).
    ///
    /// # Errors
    /// [`ServeError::InvalidQuery`] if any node is out of range.
    pub fn embed_batch(&self, nodes: &[usize]) -> Result<Vec<Vec<f64>>> {
        let mut owners = Vec::with_capacity(nodes.len());
        for &node in nodes {
            owners.push(self.check_node(node)?);
        }
        // Group by owning shard: an interleaved node order must cost
        // one engine resolution per *shard*, not per node — under a
        // residency cap the per-node path could reload a shard from
        // disk for every single row.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.manifest.shards.len()];
        for (pos, &owner) in owners.iter().enumerate() {
            by_shard[owner].push(pos);
        }
        let mut rows: Vec<Vec<f64>> = vec![Vec::new(); nodes.len()];
        for (owner, positions) in by_shard.into_iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let engine = self.engine_for(owner)?;
            let shard_nodes: Vec<usize> = positions.iter().map(|&p| nodes[p]).collect();
            for (pos, row) in positions.into_iter().zip(engine.embed_batch(&shard_nodes)?) {
                rows[pos] = row;
            }
        }
        Ok(rows)
    }

    /// [`ShardRouter::embed_batch`] plus the batch's cost profile:
    /// distinct owning shards touched and shard loads the fetch forced.
    pub fn embed_batch_costed(&self, nodes: &[usize]) -> (Result<Vec<Vec<f64>>>, QueryCost) {
        let mut cost = QueryCost::exact();
        cost.rows_scanned = nodes.len() as u64;
        let mut touched = vec![false; self.manifest.shards.len()];
        for &node in nodes {
            if let Ok(owner) = self.check_node(node) {
                touched[owner] = true;
            }
        }
        cost.shards_touched = touched.iter().filter(|t| **t).count() as u64;
        let loads_before = self.loads.load(Ordering::Relaxed);
        let answer = self.embed_batch(nodes);
        cost.shards_loaded = self
            .loads
            .load(Ordering::Relaxed)
            .saturating_sub(loads_before);
        cost.shards_resident = self.resident_count() as u64;
        (answer, cost)
    }

    /// The `k` most similar nodes to `node` across *all* shards —
    /// bit-identical to [`QueryEngine::top_k_similar`] on the
    /// monolithic artifact the shards were cut from.
    ///
    /// # Errors
    /// [`ServeError::InvalidQuery`] for out-of-range nodes or `k == 0`.
    pub fn top_k_similar(&self, node: usize, k: usize) -> Result<Vec<Neighbor>> {
        self.top_k_batch(&[(node, k)]).pop().expect("one query")
    }

    /// Answers many top-k queries, fanning each across all shards and
    /// merging the per-shard top-k lists. Results are in query order;
    /// failed queries carry their individual error.
    pub fn top_k_batch(&self, queries: &[(usize, usize)]) -> Vec<Result<Vec<Neighbor>>> {
        self.top_k_batch_costed(queries).0
    }

    /// [`ShardRouter::top_k_batch`] plus the pass's cost profile:
    /// cache hit/miss split, fan-out shape (shards touched vs loaded
    /// vs resident), rows scanned, and tombstones masked. The answers
    /// are exactly what `top_k_batch` returns — cost accounting never
    /// perturbs results.
    pub fn top_k_batch_costed(
        &self,
        queries: &[(usize, usize)],
    ) -> (Vec<Result<Vec<Neighbor>>>, QueryCost) {
        let mut cost = QueryCost::exact();
        let n = self.meta.n;
        let mut answers: Vec<Option<Result<Vec<Neighbor>>>> = Vec::with_capacity(queries.len());
        let mut work: Vec<usize> = Vec::new(); // answer slot per job
        let mut jobs: Vec<(usize, usize)> = Vec::new(); // (node, clamped k)
        {
            let mut cache = self.cache.lock().expect("router cache lock");
            for &(node, k) in queries.iter() {
                if node >= n {
                    answers.push(Some(Err(ServeError::InvalidQuery(format!(
                        "node {node} out of range (n = {n})"
                    )))));
                    continue;
                }
                if k == 0 {
                    answers.push(Some(Err(ServeError::InvalidQuery(
                        "k must be at least 1".into(),
                    ))));
                    continue;
                }
                let k = k.min(n - 1);
                self.counters.exact_queries.fetch_add(1, Ordering::Relaxed);
                if let Some(hit) = cache.get(&(node, k)) {
                    cost.cache_hits += 1;
                    answers.push(Some(Ok(hit.clone())));
                } else {
                    cost.cache_misses += 1;
                    work.push(answers.len());
                    answers.push(None);
                    jobs.push((node, k));
                }
            }
        }
        let loads_before = self.loads.load(Ordering::Relaxed);
        if !jobs.is_empty() {
            cost.shards_touched = self.manifest.shards.len() as u64;
            // Every shard scans all of its rows for every job, so the
            // fan-out's total scan work has a closed form; likewise the
            // manifest's tombstones are masked once per job.
            cost.rows_scanned = (jobs.len() * self.meta.rows()) as u64;
            cost.tombstones_masked = (jobs.len()
                * self
                    .manifest
                    .shards
                    .iter()
                    .map(|e| e.tombstones)
                    .sum::<usize>()) as u64;
            match self.fan_out(&jobs) {
                Ok(results) => {
                    let mut cache = self.cache.lock().expect("router cache lock");
                    for ((slot, job), result) in work.into_iter().zip(&jobs).zip(results) {
                        cache.insert(*job, result.clone());
                        answers[slot] = Some(Ok(result));
                    }
                }
                Err(e) => {
                    // A shard-load failure poisons the whole uncached
                    // batch — each job reports the same fault. The
                    // error class is preserved: a bad/deleted query
                    // node is the client's 400/404, not a 503.
                    for slot in work {
                        answers[slot] = Some(Err(clone_error_class(&e)));
                    }
                }
            }
        }
        cost.shards_loaded = self
            .loads
            .load(Ordering::Relaxed)
            .saturating_sub(loads_before);
        cost.shards_resident = self.resident_count() as u64;
        let answers = answers
            .into_iter()
            .map(|a| a.expect("all slots filled"))
            .collect();
        (answers, cost)
    }

    /// Fetches the embedding row + norm of every query node from its
    /// owning shard, grouped by owner: under a residency cap a query
    /// order alternating between shards must cost one engine
    /// resolution per shard, not one reload per query.
    fn gather_query_vectors(&self, nodes: &[usize]) -> Result<Vec<(Vec<f64>, f64)>> {
        let shard_count = self.manifest.shards.len();
        let mut by_owner: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (j, &node) in nodes.iter().enumerate() {
            by_owner[self.check_node(node)?].push(j);
        }
        let mut vectors: Vec<Option<(Vec<f64>, f64)>> = vec![None; nodes.len()];
        for (owner, job_indices) in by_owner.into_iter().enumerate() {
            if job_indices.is_empty() {
                continue;
            }
            let engine = self.engine_for(owner)?;
            for j in job_indices {
                vectors[j] = Some(engine.query_vector(nodes[j])?);
            }
        }
        Ok(vectors
            .into_iter()
            .map(|v| v.expect("every job has an owner"))
            .collect())
    }

    /// Runs `scan` against every shard engine and hands each per-shard
    /// result to the caller. Parallel over shards whenever the
    /// residency budget admits every shard at once; sequential
    /// shard-at-a-time when memory-capped, so at most
    /// `max_resident + 1` shards are ever resident mid-scan.
    fn scan_all_shards<R: Send>(
        &self,
        scan: impl Fn(&QueryEngine) -> Result<R> + Sync,
    ) -> Vec<Result<R>> {
        let shard_count = self.manifest.shards.len();
        let unbounded = self.config.max_resident == 0 || self.config.max_resident >= shard_count;
        if unbounded {
            let threads = self.config.engine.threads.max(1);
            // Pool workers have no ambient trace of their own; carry
            // the caller's over so per-shard spans (lazy loads, probe
            // scans) attach to the request being fanned out.
            let trace = mvag_obs::current_trace();
            parallel::par_map(shard_count, threads, |s| {
                mvag_obs::with_trace(trace, || {
                    self.engine_for(s).and_then(|engine| scan(&engine))
                })
            })
        } else {
            (0..shard_count)
                .map(|s| self.engine_for(s).and_then(|engine| scan(&engine)))
                .collect()
        }
    }

    /// Scores every job against every shard and merges (the exact
    /// path: each shard scans all of its rows).
    fn fan_out(&self, jobs: &[(usize, usize)]) -> Result<Vec<Vec<Neighbor>>> {
        let mut span = mvag_obs::span("serve.fan_out");
        span.counter("jobs", jobs.len() as u64);
        span.counter("shards", self.manifest.shards.len() as u64);
        let nodes: Vec<usize> = jobs.iter().map(|&(node, _)| node).collect();
        let vectors = self.gather_query_vectors(&nodes)?;
        // per_shard[s][j]: shard s's best k for job j.
        let per_shard = self.scan_all_shards(|engine| {
            let mut scan = mvag_obs::span("serve.scan");
            scan.counter("queries", jobs.len() as u64);
            scan.counter(
                "rows_scanned",
                (jobs.len() * engine.artifact().meta.rows()) as u64,
            );
            Ok(jobs
                .iter()
                .zip(&vectors)
                .map(|(&(node, k), (qrow, qnorm))| {
                    engine.top_k_for_query(qrow, *qnorm, k, Some(node))
                })
                .collect::<Vec<Vec<Neighbor>>>())
        });
        let _merge = mvag_obs::span("serve.merge");
        let mut merged: Vec<TopKHeap> = jobs.iter().map(|&(_, k)| TopKHeap::new(k)).collect();
        for shard_results in per_shard {
            for (heap, partial) in merged.iter_mut().zip(shard_results?) {
                for neighbor in partial {
                    heap.push(neighbor);
                }
            }
        }
        Ok(merged.into_iter().map(TopKHeap::into_sorted).collect())
    }

    /// The `k` most similar nodes to `node` via per-shard IVF probes
    /// (`nprobe` lists per shard; `0` = per-shard default,
    /// `nprobe >= nlist` is bit-identical to
    /// [`ShardRouter::top_k_similar`]).
    ///
    /// # Errors
    /// [`ServeError::InvalidQuery`] for out-of-range nodes, `k == 0`,
    /// or shards without an index.
    pub fn top_k_approx(&self, node: usize, k: usize, nprobe: usize) -> Result<Vec<Neighbor>> {
        self.top_k_batch_approx(&[(node, k, nprobe)])
            .pop()
            .expect("one query")
    }

    /// Answers many approximate top-k queries, fanning each across all
    /// shards' IVF indexes and merging the per-shard probe results
    /// under the same total order as the exact path. Results are not
    /// cached (cheap, and parameterized by `nprobe`).
    pub fn top_k_batch_approx(&self, queries: &[ApproxQuery]) -> Vec<Result<Vec<Neighbor>>> {
        self.top_k_batch_approx_costed(queries).0
    }

    /// [`ShardRouter::top_k_batch_approx`] plus the pass's cost
    /// profile: lists probed and candidate rows scored across all
    /// shards, fan-out shape, and shard loads forced. Dead candidates
    /// are filtered inside the shard engines and are not attributed
    /// here (`tombstones_masked` stays 0 on this path). The answers
    /// are exactly what `top_k_batch_approx` returns.
    pub fn top_k_batch_approx_costed(
        &self,
        queries: &[ApproxQuery],
    ) -> (Vec<Result<Vec<Neighbor>>>, QueryCost) {
        let mut cost = QueryCost::ivf();
        let n = self.meta.n;
        let mut answers: Vec<Option<Result<Vec<Neighbor>>>> = Vec::with_capacity(queries.len());
        let mut work: Vec<usize> = Vec::new(); // answer slot per job
        let mut jobs: Vec<ApproxQuery> = Vec::new();
        for &(node, k, nprobe) in queries {
            if node >= n {
                answers.push(Some(Err(ServeError::InvalidQuery(format!(
                    "node {node} out of range (n = {n})"
                )))));
                continue;
            }
            if k == 0 {
                answers.push(Some(Err(ServeError::InvalidQuery(
                    "k must be at least 1".into(),
                ))));
                continue;
            }
            self.counters.approx_queries.fetch_add(1, Ordering::Relaxed);
            work.push(answers.len());
            answers.push(None);
            jobs.push((node, k.min(n - 1), nprobe));
        }
        let loads_before = self.loads.load(Ordering::Relaxed);
        if !jobs.is_empty() {
            // Approx results are never cached, so every admitted job
            // is a miss by definition.
            cost.cache_misses = jobs.len() as u64;
            cost.shards_touched = self.manifest.shards.len() as u64;
            match self.fan_out_approx(&jobs) {
                Ok((results, lists_probed, rows_scanned)) => {
                    cost.lists_probed = lists_probed;
                    cost.rows_scanned = rows_scanned;
                    for (slot, result) in work.into_iter().zip(results) {
                        answers[slot] = Some(Ok(result));
                    }
                }
                Err(e) => {
                    // Preserve the error class: a missing index is the
                    // client's 400, a deleted query node its 404, a
                    // shard-load fault a 503.
                    for slot in work {
                        answers[slot] = Some(Err(clone_error_class(&e)));
                    }
                }
            }
        }
        cost.shards_loaded = self
            .loads
            .load(Ordering::Relaxed)
            .saturating_sub(loads_before);
        cost.shards_resident = self.resident_count() as u64;
        let answers = answers
            .into_iter()
            .map(|a| a.expect("all slots filled"))
            .collect();
        (answers, cost)
    }

    /// Probes every shard's index for every job and merges — the
    /// approximate analogue of [`ShardRouter::fan_out`], with the same
    /// residency/parallelism policy. Per-shard scan work feeds the
    /// router's counters (per-shard engine counters would be lost on
    /// eviction). Returns `(answers, lists probed, rows scanned)` so
    /// the caller's cost profile sees the real probe totals.
    fn fan_out_approx(&self, jobs: &[ApproxQuery]) -> Result<(Vec<Vec<Neighbor>>, u64, u64)> {
        let mut span = mvag_obs::span("serve.fan_out");
        span.counter("jobs", jobs.len() as u64);
        span.counter("shards", self.manifest.shards.len() as u64);
        let nodes: Vec<usize> = jobs.iter().map(|&(node, _, _)| node).collect();
        let vectors = self.gather_query_vectors(&nodes)?;
        let per_shard = self.scan_all_shards(|engine| {
            let mut probe = mvag_obs::span("serve.ivf_probe");
            probe.counter("queries", jobs.len() as u64);
            let shard_results = jobs
                .iter()
                .zip(&vectors)
                .map(|(&(node, k, nprobe), (qrow, qnorm))| {
                    engine.top_k_for_query_approx(qrow, *qnorm, k, nprobe, Some(node))
                })
                .collect::<Result<Vec<_>>>()?;
            for (_, stats) in &shard_results {
                probe.counter("lists_scanned", stats.lists_scanned as u64);
                probe.counter("rows_scanned", stats.rows_scanned as u64);
            }
            Ok(shard_results)
        });
        let _merge = mvag_obs::span("serve.merge");
        let mut merged: Vec<TopKHeap> = jobs.iter().map(|&(_, k, _)| TopKHeap::new(k)).collect();
        let mut lists_probed = 0u64;
        let mut rows_scanned = 0u64;
        for shard_results in per_shard {
            for (heap, (partial, stats)) in merged.iter_mut().zip(shard_results?) {
                self.counters.record_search(&stats);
                span.counter("lists_scanned", stats.lists_scanned as u64);
                span.counter("rows_scanned", stats.rows_scanned as u64);
                lists_probed += stats.lists_scanned as u64;
                rows_scanned += stats.rows_scanned as u64;
                for neighbor in partial {
                    heap.push(neighbor);
                }
            }
        }
        let answers = merged.into_iter().map(TopKHeap::into_sorted).collect();
        Ok((answers, lists_probed, rows_scanned))
    }
}

/// Re-materializes a fan-out error once per poisoned job, keeping the
/// client-facing classes (`InvalidQuery` → 400, `NotFound` → 404)
/// intact and demoting everything else to a server-side fault.
fn clone_error_class(e: &ServeError) -> ServeError {
    let msg = e.to_string();
    match e {
        ServeError::InvalidQuery(_) => ServeError::InvalidQuery(msg),
        ServeError::NotFound(_) => ServeError::NotFound(msg),
        _ => ServeError::Server(msg),
    }
}

impl QueryBackend for ShardRouter {
    fn meta(&self) -> ArtifactMeta {
        self.meta.clone()
    }

    fn weights(&self) -> Vec<f64> {
        self.weights.clone()
    }

    fn cluster_of(&self, node: usize) -> Result<ClusterInfo> {
        ShardRouter::cluster_of(self, node)
    }

    fn top_k_batch(&self, queries: &[(usize, usize)]) -> Vec<Result<Vec<Neighbor>>> {
        ShardRouter::top_k_batch(self, queries)
    }

    fn top_k_batch_approx(&self, queries: &[ApproxQuery]) -> Vec<Result<Vec<Neighbor>>> {
        ShardRouter::top_k_batch_approx(self, queries)
    }

    fn index_stats(&self) -> IndexStats {
        self.counters.snapshot(self.index_enabled, self.index_nlist)
    }

    fn embed_batch(&self, nodes: &[usize]) -> Result<Vec<Vec<f64>>> {
        ShardRouter::embed_batch(self, nodes)
    }

    fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().expect("router cache lock").stats()
    }

    fn shard_count(&self) -> usize {
        self.manifest.shards.len()
    }

    fn resident_shards(&self) -> usize {
        self.resident_count()
    }

    fn tombstone_count(&self) -> usize {
        // The manifest carries per-shard tombstone counts, so this
        // needs no shard loads (and stays correct under eviction).
        self.manifest.shards.iter().map(|e| e.tombstones).sum()
    }

    fn store_memory(&self) -> StoreMemory {
        ShardRouter::store_memory(self)
    }

    fn cluster_of_costed(&self, node: usize) -> (Result<ClusterInfo>, QueryCost) {
        ShardRouter::cluster_of_costed(self, node)
    }

    fn top_k_batch_costed(
        &self,
        queries: &[(usize, usize)],
    ) -> (Vec<Result<Vec<Neighbor>>>, QueryCost) {
        ShardRouter::top_k_batch_costed(self, queries)
    }

    fn top_k_batch_approx_costed(
        &self,
        queries: &[ApproxQuery],
    ) -> (Vec<Result<Vec<Neighbor>>>, QueryCost) {
        ShardRouter::top_k_batch_approx_costed(self, queries)
    }

    fn embed_batch_costed(&self, nodes: &[usize]) -> (Result<Vec<Vec<f64>>>, QueryCost) {
        ShardRouter::embed_batch_costed(self, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::TrainConfig;

    fn trained() -> Artifact {
        let mvag = mvag_graph::toy::toy_mvag(72, 3, 13);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        Artifact::train(&mvag, &config).unwrap()
    }

    fn sharded_dir(artifact: &Artifact, shards: usize, tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sgla-router-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        artifact.save_sharded(&dir, shards).unwrap();
        dir
    }

    #[test]
    fn routed_queries_match_monolithic_bit_exactly() {
        let artifact = trained();
        let dir = sharded_dir(&artifact, 4, "exact");
        let engine = QueryEngine::new(artifact, EngineConfig::default()).unwrap();
        let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();

        for node in [0usize, 17, 35, 36, 54, 71] {
            let direct = engine.top_k_similar(node, 7).unwrap();
            let routed = router.top_k_similar(node, 7).unwrap();
            assert_eq!(direct.len(), routed.len());
            for (d, r) in direct.iter().zip(&routed) {
                assert_eq!(d.node, r.node, "query {node}");
                assert_eq!(d.score.to_bits(), r.score.to_bits(), "query {node}");
            }
            assert_eq!(
                engine.cluster_of(node).unwrap(),
                router.cluster_of(node).unwrap()
            );
        }
        assert_eq!(
            engine.embed_batch(&[3, 40, 70]).unwrap(),
            router.embed_batch(&[3, 40, 70]).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_and_cache_paths_agree() {
        let artifact = trained();
        let dir = sharded_dir(&artifact, 3, "batch");
        let engine = QueryEngine::new(artifact, EngineConfig::default()).unwrap();
        let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        let queries: Vec<(usize, usize)> = (0..24).map(|i| (i * 3 % 72, 5)).collect();
        let routed = router.top_k_batch(&queries);
        let direct = engine.top_k_batch(&queries);
        for ((r, d), q) in routed.iter().zip(&direct).zip(&queries) {
            assert_eq!(r.as_ref().unwrap(), d.as_ref().unwrap(), "query {q:?}");
        }
        // Repeats hit the router cache and still agree.
        let again = router.top_k_batch(&queries);
        for (a, d) in again.iter().zip(&direct) {
            assert_eq!(a.as_ref().unwrap(), d.as_ref().unwrap());
        }
        let (hits, _) = QueryBackend::cache_stats(&router);
        assert!(hits >= queries.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_queries_get_individual_errors() {
        let artifact = trained();
        let dir = sharded_dir(&artifact, 2, "invalid");
        let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        let res = router.top_k_batch(&[(0, 3), (9_999, 3), (1, 0), (2, 3)]);
        assert!(res[0].is_ok());
        assert!(matches!(res[1], Err(ServeError::InvalidQuery(_))));
        assert!(matches!(res[2], Err(ServeError::InvalidQuery(_))));
        assert!(res[3].is_ok());
        assert!(router.cluster_of(9_999).is_err());
        assert!(router.embed_batch(&[0, 9_999]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_capped_residency_evicts_lru_and_stays_exact() {
        let artifact = trained();
        let dir = sharded_dir(&artifact, 6, "evict");
        let engine = QueryEngine::new(artifact, EngineConfig::default()).unwrap();
        let router = ShardRouter::open(
            &dir,
            RouterConfig {
                max_resident: 2,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        // Touch every shard via routed point queries, then fan out.
        for node in (0..72).step_by(5) {
            assert_eq!(
                engine.cluster_of(node).unwrap(),
                router.cluster_of(node).unwrap()
            );
            assert!(QueryBackend::resident_shards(&router) <= 2);
        }
        let direct = engine.top_k_similar(50, 9).unwrap();
        let routed = router.top_k_similar(50, 9).unwrap();
        assert_eq!(direct, routed);
        let (loads, evictions) = router.residency_stats();
        assert!(loads > 6, "expected reloads after eviction, got {loads}");
        assert!(evictions > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn approx_fan_out_full_probe_matches_exact_and_counts_work() {
        let artifact = trained();
        let dir = sharded_dir(&artifact, 3, "approx");
        let engine = QueryEngine::new(artifact, EngineConfig::default()).unwrap();
        let config = RouterConfig {
            engine: EngineConfig {
                index: Some(mvag_index::IvfConfig { nlist: 4, seed: 3 }),
                ..EngineConfig::default()
            },
            ..RouterConfig::default()
        };
        let router = ShardRouter::open(&dir, config).unwrap();
        assert!(QueryBackend::index_stats(&router).enabled);
        // Full probe: bit-identical to the monolithic exact engine.
        for node in [0usize, 17, 36, 71] {
            let exact = engine.top_k_similar(node, 7).unwrap();
            let approx = router.top_k_approx(node, 7, usize::MAX).unwrap();
            assert_eq!(exact.len(), approx.len());
            for (x, a) in exact.iter().zip(&approx) {
                assert_eq!(x.node, a.node, "query {node}");
                assert_eq!(x.score.to_bits(), a.score.to_bits(), "query {node}");
            }
        }
        // Partial probe scans fewer rows than shards hold in total.
        let before = QueryBackend::index_stats(&router);
        router.top_k_approx(5, 5, 1).unwrap();
        let after = QueryBackend::index_stats(&router);
        assert_eq!(after.approx_queries, before.approx_queries + 1);
        assert!(after.rows_scanned - before.rows_scanned < 71);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn router_trained_indexes_survive_eviction() {
        let artifact = trained();
        let dir = sharded_dir(&artifact, 4, "evict-index");
        let engine = QueryEngine::new(artifact, EngineConfig::default()).unwrap();
        let router = ShardRouter::open(
            &dir,
            RouterConfig {
                engine: EngineConfig {
                    index: Some(mvag_index::IvfConfig { nlist: 3, seed: 5 }),
                    ..EngineConfig::default()
                },
                max_resident: 1,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        // First fan-out loads (and trains) every shard; the indexes
        // must be cached even though shards evict down to one.
        let first = router.top_k_approx(10, 6, usize::MAX).unwrap();
        assert_eq!(first, engine.top_k_similar(10, 6).unwrap());
        assert!(router
            .trained_indexes
            .lock()
            .unwrap()
            .iter()
            .all(Option::is_some));
        // Subsequent fan-outs reload evicted shards but reuse the
        // cached indexes (the with_index path) — answers stay exact
        // at full probe and evictions keep happening.
        let (loads_before, _) = router.residency_stats();
        let again = router.top_k_approx(60, 6, usize::MAX).unwrap();
        assert_eq!(again, engine.top_k_similar(60, 6).unwrap());
        let (loads_after, evictions) = router.residency_stats();
        assert!(loads_after > loads_before, "memory cap forces reloads");
        assert!(evictions > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn approx_without_indexes_is_a_clean_per_query_error() {
        let artifact = trained();
        let dir = sharded_dir(&artifact, 2, "approx-none");
        let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        assert!(!QueryBackend::index_stats(&router).enabled);
        let res = router.top_k_batch_approx(&[(0, 3, 1), (9_999, 3, 1)]);
        assert!(matches!(res[0], Err(ServeError::InvalidQuery(_))));
        assert!(matches!(res[1], Err(ServeError::InvalidQuery(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_sidecars_load_and_serve_approx() {
        let artifact = trained();
        let dir = sharded_dir(&artifact, 3, "sidecar");
        // Write per-shard index sidecars the way `train --index ivf`
        // does, then open WITHOUT an index config: sidecars alone must
        // enable approx serving.
        for (i, entry) in artifact
            .save_sharded(&dir, 3)
            .unwrap()
            .shards
            .iter()
            .enumerate()
        {
            let shard = artifact.shard(entry.row_start, entry.row_end).unwrap();
            let index = shard
                .build_ivf(&mvag_index::IvfConfig { nlist: 3, seed: 9 })
                .unwrap();
            index
                .save(&dir.join(Artifact::shard_index_file_name(i)))
                .unwrap();
        }
        let engine = QueryEngine::new(artifact, EngineConfig::default()).unwrap();
        let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        let stats = QueryBackend::index_stats(&router);
        assert!(stats.enabled);
        assert_eq!(stats.nlist, 3);
        let exact = engine.top_k_similar(40, 6).unwrap();
        let approx = router.top_k_approx(40, 6, usize::MAX).unwrap();
        assert_eq!(exact, approx);
        // A corrupt sidecar is rejected at shard load.
        let sidecar = dir.join(Artifact::shard_index_file_name(1));
        let mut raw = std::fs::read(&sidecar).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x10;
        std::fs::write(&sidecar, &raw).unwrap();
        let fresh = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        assert!(fresh.top_k_approx(40, 6, 1).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_or_manifest_rejected() {
        let artifact = trained();
        let dir = sharded_dir(&artifact, 3, "corrupt");
        // Flip a byte in shard 1: open() succeeds (shard 1 is lazy),
        // first touch fails with Corrupt.
        let shard1 = dir.join(Artifact::shard_file_name(1));
        let mut raw = std::fs::read(&shard1).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        std::fs::write(&shard1, &raw).unwrap();
        let router = ShardRouter::open(&dir, RouterConfig::default()).unwrap();
        let node_in_shard1 = router.manifest().shards[1].row_start;
        assert!(matches!(
            router.cluster_of(node_in_shard1),
            Err(ServeError::Corrupt(_))
        ));
        // A fan-out over the broken shard fails as a server-side error.
        assert!(router.top_k_similar(0, 3).is_err());
        // Mangle the manifest: open() itself must fail.
        std::fs::write(dir.join(Artifact::MANIFEST_FILE), "{not json").unwrap();
        assert!(ShardRouter::open(&dir, RouterConfig::default()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Atomic hot-swapping of the live query backend.
//!
//! A serving process must be able to pick up an incrementally updated
//! artifact (see [`Artifact::update`](crate::Artifact::update)) without
//! dropping traffic. [`HotSwapBackend`] is a [`QueryBackend`] that
//! *delegates* to an inner `Arc<dyn QueryBackend>` behind an `RwLock`:
//!
//! * every query clones the inner `Arc` under a read lock (a refcount
//!   bump, nanoseconds) and then runs entirely lock-free on that
//!   snapshot — in-flight queries keep answering from the backend they
//!   started on even while a swap happens;
//! * [`HotSwapBackend::swap`] installs a fully constructed replacement
//!   under the write lock — queries never observe a half-loaded state,
//!   because the replacement was built (artifact decoded, CRC-checked,
//!   norms precomputed, index attached) *before* the swap;
//! * the old backend is returned to the caller and dropped when its
//!   last in-flight query finishes.
//!
//! The HTTP layer exposes this as `POST /reload` (see
//! [`Server::start_reloadable`](crate::Server::start_reloadable)): the
//! server re-loads its artifact path into a fresh backend and swaps it
//! in atomically, monolithic and sharded layouts alike.

use crate::artifact::ArtifactMeta;
use crate::backend::{IndexStats, QueryBackend};
use crate::cost::QueryCost;
use crate::engine::{ApproxQuery, ClusterInfo, Neighbor};
use crate::Result;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A [`QueryBackend`] whose inner backend can be replaced atomically
/// while queries are in flight.
pub struct HotSwapBackend {
    inner: RwLock<Arc<dyn QueryBackend>>,
    swaps: AtomicU64,
}

impl std::fmt::Debug for HotSwapBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotSwapBackend")
            .field("dataset", &self.meta().dataset)
            .field("swaps", &self.swap_count())
            .finish()
    }
}

impl HotSwapBackend {
    /// Wraps an initial backend.
    pub fn new(initial: Arc<dyn QueryBackend>) -> Self {
        HotSwapBackend {
            inner: RwLock::new(initial),
            swaps: AtomicU64::new(0),
        }
    }

    /// The current inner backend (a snapshot — the caller's `Arc`
    /// stays valid across concurrent swaps).
    pub fn current(&self) -> Arc<dyn QueryBackend> {
        Arc::clone(&self.inner.read().expect("swap lock"))
    }

    /// Atomically replaces the inner backend, returning the previous
    /// one (kept alive until its in-flight queries finish).
    pub fn swap(&self, next: Arc<dyn QueryBackend>) -> Arc<dyn QueryBackend> {
        let mut guard = self.inner.write().expect("swap lock");
        let old = std::mem::replace(&mut *guard, next);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        old
    }

    /// How many swaps have been applied since construction.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

impl QueryBackend for HotSwapBackend {
    fn meta(&self) -> ArtifactMeta {
        self.current().meta()
    }

    fn weights(&self) -> Vec<f64> {
        self.current().weights()
    }

    fn cluster_of(&self, node: usize) -> Result<ClusterInfo> {
        self.current().cluster_of(node)
    }

    fn top_k_batch(&self, queries: &[(usize, usize)]) -> Vec<Result<Vec<Neighbor>>> {
        self.current().top_k_batch(queries)
    }

    fn top_k_batch_approx(&self, queries: &[ApproxQuery]) -> Vec<Result<Vec<Neighbor>>> {
        self.current().top_k_batch_approx(queries)
    }

    fn index_stats(&self) -> IndexStats {
        self.current().index_stats()
    }

    fn embed_batch(&self, nodes: &[usize]) -> Result<Vec<Vec<f64>>> {
        self.current().embed_batch(nodes)
    }

    fn cache_stats(&self) -> (u64, u64) {
        self.current().cache_stats()
    }

    fn shard_count(&self) -> usize {
        self.current().shard_count()
    }

    fn resident_shards(&self) -> usize {
        self.current().resident_shards()
    }

    fn tombstone_count(&self) -> usize {
        self.current().tombstone_count()
    }

    fn store_memory(&self) -> crate::store::StoreMemory {
        self.current().store_memory()
    }

    // The costed variants must delegate explicitly: the trait defaults
    // would wrap `self.cluster_of(..)` etc. and lose the inner
    // backend's real counters (cache split, probe totals, loads).
    fn cluster_of_costed(&self, node: usize) -> (Result<ClusterInfo>, QueryCost) {
        self.current().cluster_of_costed(node)
    }

    fn top_k_batch_costed(
        &self,
        queries: &[(usize, usize)],
    ) -> (Vec<Result<Vec<Neighbor>>>, QueryCost) {
        self.current().top_k_batch_costed(queries)
    }

    fn top_k_batch_approx_costed(
        &self,
        queries: &[ApproxQuery],
    ) -> (Vec<Result<Vec<Neighbor>>>, QueryCost) {
        self.current().top_k_batch_approx_costed(queries)
    }

    fn embed_batch_costed(&self, nodes: &[usize]) -> (Result<Vec<Vec<f64>>>, QueryCost) {
        self.current().embed_batch_costed(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Artifact, TrainConfig};
    use crate::engine::{EngineConfig, QueryEngine};
    use mvag_graph::toy::toy_mvag;

    fn engine(n: usize, seed: u64) -> Arc<QueryEngine> {
        let mvag = toy_mvag(n, 2, seed);
        let mut config = TrainConfig::default();
        config.embed.dim = 6;
        let artifact = Artifact::train(&mvag, &config).unwrap();
        Arc::new(QueryEngine::new(artifact, EngineConfig::default()).unwrap())
    }

    #[test]
    fn swap_switches_answers_atomically() {
        let a = engine(40, 3);
        let b = engine(60, 4);
        let swap = HotSwapBackend::new(a.clone());
        assert_eq!(QueryBackend::meta(&swap).n, 40);
        assert_eq!(swap.swap_count(), 0);
        // A pre-swap snapshot keeps answering from the old backend.
        let snapshot = swap.current();
        let old = swap.swap(b.clone());
        assert_eq!(old.meta().n, 40);
        assert_eq!(snapshot.meta().n, 40);
        assert_eq!(QueryBackend::meta(&swap).n, 60);
        assert_eq!(swap.swap_count(), 1);
        // Post-swap queries are bit-identical to the new engine.
        let direct = b.top_k_similar(50, 5).unwrap();
        let via_swap = swap.top_k_batch(&[(50, 5)]).pop().unwrap().unwrap();
        assert_eq!(direct, via_swap);
        // Node 50 did not exist in the old backend.
        assert!(old.top_k_batch(&[(50, 5)]).pop().unwrap().is_err());
    }
}

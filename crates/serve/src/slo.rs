//! Rolling SLO windows and the `/health` readiness state machine.
//!
//! Tracks per-endpoint latency and error rate over three rolling
//! windows (1m/5m/1h by default, tunable for tests) against two
//! configured objectives: a p99 latency bound (`--slo-p99-us`) and an
//! error-rate budget (`--slo-error-rate`). Each window is a ring of
//! `SLICES` time slices of relaxed atomics — recording a request is
//! a handful of atomic adds, and stale slices are lazily reset when
//! their slot is reused, so no background sweeper thread is needed.
//!
//! Two *burn rates* are derived per window, both "fraction of budget
//! consumed per unit of budget allowed" in the SRE sense:
//!
//! * **error burn** = observed error rate ÷ `--slo-error-rate`;
//! * **latency burn** = fraction of requests slower than the p99
//!   objective ÷ 1% (the tail a p99 objective permits by definition).
//!
//! A burn of 1.0 means the service is consuming its budget exactly as
//! fast as allowed; `GET /health` degrades when either burn exceeds
//! 1.0 in a short window (with at least [`MIN_SAMPLES`] requests) and
//! goes unhealthy at [`FAST_BURN`]× — the classic fast-burn page
//! threshold. Objectives left at 0 are disabled and never degrade the
//! service; background-task state (reload failures, running
//! compactions, tombstone debt) is folded in by the HTTP layer.

use std::sync::atomic::{AtomicU64, Ordering};

/// Slices per rolling window: the window "forgets" a slice's worth of
/// history at a time, so resolution is `span / SLICES`.
const SLICES: usize = 12;

/// Log₂ latency buckets, matching [`crate::metrics`].
const BUCKETS: usize = 36;

/// Minimum requests in a window before it can declare a violation —
/// one slow request on an idle server is noise, not an incident.
pub const MIN_SAMPLES: u64 = 20;

/// Burn-rate multiple at which `/health` turns `unhealthy` rather
/// than `degraded` (the SRE fast-burn paging threshold).
pub const FAST_BURN: f64 = 14.0;

fn bucket_of(micros: u64) -> usize {
    ((64 - micros.max(1).leading_zeros()) as usize - 1).min(BUCKETS - 1)
}

/// Pretty window label: `60 → "1m"`, `3600 → "1h"`, else `"{n}s"`.
fn window_name(span_secs: u64) -> String {
    if span_secs.is_multiple_of(3600) && span_secs > 0 {
        format!("{}h", span_secs / 3600)
    } else if span_secs.is_multiple_of(60) && span_secs > 0 {
        format!("{}m", span_secs / 60)
    } else {
        format!("{span_secs}s")
    }
}

/// One time slice of a rolling window. `epoch` tags which slice
/// interval the counters describe; a reused slot is reset lazily by
/// the first recorder of the new interval. Races around the reset can
/// undercount a request or two — these are SLO gauges, not billing.
struct Slice {
    epoch: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    slow: AtomicU64,
    sum_us: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Slice {
    fn new() -> Slice {
        Slice {
            epoch: AtomicU64::new(u64::MAX),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.slow.store(0, Ordering::Relaxed);
        self.sum_us.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A rolling window over `SLICES` slices of `slice_secs` each.
struct Window {
    name: String,
    span_secs: u64,
    slice_secs: u64,
    slices: Vec<Slice>,
}

impl Window {
    fn new(span_secs: u64) -> Window {
        let span_secs = span_secs.max(1);
        Window {
            name: window_name(span_secs),
            span_secs,
            slice_secs: (span_secs / SLICES as u64).max(1),
            slices: (0..SLICES).map(|_| Slice::new()).collect(),
        }
    }

    fn record(&self, now_secs: u64, latency_us: u64, ok: bool, slow: bool) {
        let epoch = now_secs / self.slice_secs;
        let slice = &self.slices[(epoch % SLICES as u64) as usize];
        if slice.epoch.load(Ordering::Relaxed) != epoch {
            slice.reset();
            slice.epoch.store(epoch, Ordering::Relaxed);
        }
        slice.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            slice.errors.fetch_add(1, Ordering::Relaxed);
        }
        if slow {
            slice.slow.fetch_add(1, Ordering::Relaxed);
        }
        slice.sum_us.fetch_add(latency_us, Ordering::Relaxed);
        slice.buckets[bucket_of(latency_us)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, now_secs: u64) -> WindowSnapshot {
        let current = now_secs / self.slice_secs;
        let oldest = current.saturating_sub(SLICES as u64 - 1);
        let mut snap = WindowSnapshot {
            name: self.name.clone(),
            span_secs: self.span_secs,
            requests: 0,
            errors: 0,
            slow: 0,
            sum_us: 0,
            buckets: [0; BUCKETS],
        };
        for slice in &self.slices {
            let epoch = slice.epoch.load(Ordering::Relaxed);
            if epoch < oldest || epoch > current {
                continue; // stale (or never-used) slot
            }
            snap.requests += slice.requests.load(Ordering::Relaxed);
            snap.errors += slice.errors.load(Ordering::Relaxed);
            snap.slow += slice.slow.load(Ordering::Relaxed);
            snap.sum_us += slice.sum_us.load(Ordering::Relaxed);
            for (acc, b) in snap.buckets.iter_mut().zip(&slice.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        snap
    }
}

/// Point-in-time aggregate of one rolling window.
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    /// Window label (`"1m"`, `"5m"`, `"1h"`, or `"{n}s"`).
    pub name: String,
    /// Window span in seconds.
    pub span_secs: u64,
    /// Requests recorded inside the window.
    pub requests: u64,
    /// Non-2xx responses inside the window.
    pub errors: u64,
    /// Requests slower than the p99 objective in force when recorded.
    pub slow: u64,
    /// Sum of request latencies (microseconds).
    pub sum_us: u64,
    buckets: [u64; BUCKETS],
}

impl WindowSnapshot {
    /// Fraction of requests that errored (0 with no traffic).
    pub fn error_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.errors as f64 / self.requests as f64
        }
    }

    /// Fraction of requests slower than the p99 objective.
    pub fn slow_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.slow as f64 / self.requests as f64
        }
    }

    /// Approximate p99 latency in microseconds (log₂-bucket
    /// interpolation, same estimator as `/stats`).
    pub fn p99_us(&self) -> f64 {
        self.quantile_us(0.99)
    }

    /// Approximate latency quantile in microseconds.
    pub fn quantile_us(&self, q: f64) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if seen + count >= rank {
                let lo = (1u64 << i) as f64;
                return lo + (rank - seen) as f64 / count as f64 * lo;
            }
            seen += count;
        }
        (1u64 << (BUCKETS - 1)) as f64
    }
}

/// One endpoint's set of rolling windows.
struct EndpointSlo {
    name: &'static str,
    windows: Vec<Window>,
}

/// Per-endpoint SLO snapshot, windows in configured order.
#[derive(Debug, Clone)]
pub struct EndpointSloSnapshot {
    /// Endpoint label (same names as `/stats`).
    pub name: &'static str,
    /// One aggregate per rolling window.
    pub windows: Vec<WindowSnapshot>,
}

/// Health state reported by `GET /health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// All objectives met, no background-task trouble.
    Ok,
    /// An objective is violated or a background task needs attention;
    /// the server still answers correctly.
    Degraded,
    /// Burning budget at the fast-burn rate — stop sending traffic.
    Unhealthy,
}

impl HealthStatus {
    /// Wire label (`"ok"` / `"degraded"` / `"unhealthy"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Unhealthy => "unhealthy",
        }
    }
}

/// Multi-window SLO tracker for every endpoint the server routes.
///
/// Objectives are live-tunable (`PUT /debug/slo`): the p99 bound is
/// consulted *at record time* to classify a request as slow, so a
/// tightened objective applies to traffic from that moment on.
pub struct SloTracker {
    endpoints: Vec<EndpointSlo>,
    objective_p99_us: AtomicU64,
    /// Error budget in parts-per-million (atomic live-tunable f64).
    objective_error_ppm: AtomicU64,
}

impl SloTracker {
    /// Builds a tracker with the given window spans (seconds, shortest
    /// first) and objectives (0 disables either objective).
    pub fn new(window_secs: &[u64], p99_us: u64, error_rate: f64) -> SloTracker {
        SloTracker {
            endpoints: crate::metrics::ENDPOINTS
                .iter()
                .map(|name| EndpointSlo {
                    name,
                    windows: window_secs.iter().map(|&s| Window::new(s)).collect(),
                })
                .collect(),
            objective_p99_us: AtomicU64::new(p99_us),
            objective_error_ppm: AtomicU64::new(rate_to_ppm(error_rate)),
        }
    }

    /// The p99 latency objective in microseconds (0 = disabled).
    pub fn objective_p99_us(&self) -> u64 {
        self.objective_p99_us.load(Ordering::Relaxed)
    }

    /// Replaces the p99 latency objective (live).
    pub fn set_objective_p99_us(&self, p99_us: u64) {
        self.objective_p99_us.store(p99_us, Ordering::Relaxed);
    }

    /// The error-rate objective as a fraction (0.0 = disabled).
    pub fn objective_error_rate(&self) -> f64 {
        self.objective_error_ppm.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Replaces the error-rate objective (live; clamped to `[0, 1]`).
    pub fn set_objective_error_rate(&self, rate: f64) {
        self.objective_error_ppm
            .store(rate_to_ppm(rate), Ordering::Relaxed);
    }

    /// Records one completed request for `endpoint` at `now_secs`
    /// (monotonic seconds; the caller supplies the clock so tests can
    /// drive time deterministically).
    pub fn record(&self, endpoint: &str, now_secs: u64, latency_us: u64, ok: bool) {
        let Some(slot) = self.endpoints.iter().find(|e| e.name == endpoint) else {
            return;
        };
        let p99 = self.objective_p99_us();
        let slow = p99 > 0 && latency_us > p99;
        for window in &slot.windows {
            window.record(now_secs, latency_us, ok, slow);
        }
    }

    /// Snapshots every endpoint that saw traffic in its widest window.
    pub fn snapshot(&self, now_secs: u64) -> Vec<EndpointSloSnapshot> {
        self.endpoints
            .iter()
            .map(|e| EndpointSloSnapshot {
                name: e.name,
                windows: e.windows.iter().map(|w| w.snapshot(now_secs)).collect(),
            })
            .filter(|s| s.windows.iter().any(|w| w.requests > 0))
            .collect()
    }

    /// Error-budget burn for a window: observed error rate ÷
    /// objective (0.0 when the objective is disabled).
    pub fn error_burn(&self, window: &WindowSnapshot) -> f64 {
        let objective = self.objective_error_rate();
        if objective <= 0.0 {
            0.0
        } else {
            window.error_rate() / objective
        }
    }

    /// Latency-budget burn for a window: fraction of requests over
    /// the p99 objective ÷ the 1% a p99 objective allows (0.0 when
    /// the objective is disabled).
    pub fn latency_burn(&self, window: &WindowSnapshot) -> f64 {
        if self.objective_p99_us() == 0 {
            0.0
        } else {
            window.slow_rate() / 0.01
        }
    }

    /// Evaluates the SLO state machine over the two shortest windows
    /// of every endpoint with enough traffic. Returns the worst status
    /// plus one human-readable reason per violation.
    pub fn evaluate(&self, now_secs: u64) -> (HealthStatus, Vec<String>) {
        let mut status = HealthStatus::Ok;
        let mut reasons = Vec::new();
        for snap in self.snapshot(now_secs) {
            for window in snap.windows.iter().take(2) {
                if window.requests < MIN_SAMPLES {
                    continue;
                }
                let latency_burn = self.latency_burn(window);
                let error_burn = self.error_burn(window);
                if latency_burn > 1.0 {
                    reasons.push(format!(
                        "{}/{}: p99 {:.0}us over objective {}us (burn {:.1})",
                        snap.name,
                        window.name,
                        window.p99_us(),
                        self.objective_p99_us(),
                        latency_burn
                    ));
                }
                if error_burn > 1.0 {
                    reasons.push(format!(
                        "{}/{}: error rate {:.4} over objective {:.4} (burn {:.1})",
                        snap.name,
                        window.name,
                        window.error_rate(),
                        self.objective_error_rate(),
                        error_burn
                    ));
                }
                let worst_burn = latency_burn.max(error_burn);
                let level = if worst_burn >= FAST_BURN {
                    HealthStatus::Unhealthy
                } else if worst_burn > 1.0 {
                    HealthStatus::Degraded
                } else {
                    HealthStatus::Ok
                };
                status = status.max(level);
            }
        }
        (status, reasons)
    }

    /// Appends the `sgla_slo_*` families to a Prometheus text page.
    /// Objective gauges always render (so the families are present on
    /// an idle server); per-endpoint series render for endpoints with
    /// traffic.
    pub fn render_prometheus(&self, now_secs: u64, out: &mut String) {
        use std::fmt::Write;
        out.push_str("# HELP sgla_slo_objective_p99_us Configured p99 objective (0 = off).\n");
        out.push_str("# TYPE sgla_slo_objective_p99_us gauge\n");
        let _ = writeln!(out, "sgla_slo_objective_p99_us {}", self.objective_p99_us());
        out.push_str(
            "# HELP sgla_slo_objective_error_rate Configured error-rate objective (0 = off).\n",
        );
        out.push_str("# TYPE sgla_slo_objective_error_rate gauge\n");
        let _ = writeln!(
            out,
            "sgla_slo_objective_error_rate {}",
            self.objective_error_rate()
        );
        let snaps = self.snapshot(now_secs);
        out.push_str("# HELP sgla_slo_window_requests Requests inside each rolling window.\n");
        out.push_str("# TYPE sgla_slo_window_requests gauge\n");
        for s in &snaps {
            for w in &s.windows {
                let _ = writeln!(
                    out,
                    "sgla_slo_window_requests{{endpoint=\"{}\",window=\"{}\"}} {}",
                    s.name, w.name, w.requests
                );
            }
        }
        out.push_str("# HELP sgla_slo_p99_us Estimated p99 latency per rolling window.\n");
        out.push_str("# TYPE sgla_slo_p99_us gauge\n");
        for s in &snaps {
            for w in &s.windows {
                let _ = writeln!(
                    out,
                    "sgla_slo_p99_us{{endpoint=\"{}\",window=\"{}\"}} {}",
                    s.name,
                    w.name,
                    w.p99_us()
                );
            }
        }
        out.push_str("# HELP sgla_slo_error_rate Error rate per rolling window.\n");
        out.push_str("# TYPE sgla_slo_error_rate gauge\n");
        for s in &snaps {
            for w in &s.windows {
                let _ = writeln!(
                    out,
                    "sgla_slo_error_rate{{endpoint=\"{}\",window=\"{}\"}} {}",
                    s.name,
                    w.name,
                    w.error_rate()
                );
            }
        }
        out.push_str(
            "# HELP sgla_slo_burn_rate Worst budget burn (error or latency) per window; \
             1.0 consumes the budget exactly as fast as allowed.\n",
        );
        out.push_str("# TYPE sgla_slo_burn_rate gauge\n");
        for s in &snaps {
            for w in &s.windows {
                let burn = self.error_burn(w).max(self.latency_burn(w));
                let _ = writeln!(
                    out,
                    "sgla_slo_burn_rate{{endpoint=\"{}\",window=\"{}\"}} {burn}",
                    s.name, w.name
                );
            }
        }
    }
}

fn rate_to_ppm(rate: f64) -> u64 {
    (rate.clamp(0.0, 1.0) * 1e6).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(p99_us: u64, error_rate: f64) -> SloTracker {
        // 12s/60s/120s windows: slices of 1s/5s/10s.
        SloTracker::new(&[12, 60, 120], p99_us, error_rate)
    }

    #[test]
    fn objectives_are_live_tunable() {
        let t = tracker(0, 0.0);
        assert_eq!(t.objective_p99_us(), 0);
        t.set_objective_p99_us(5000);
        t.set_objective_error_rate(0.05);
        assert_eq!(t.objective_p99_us(), 5000);
        assert!((t.objective_error_rate() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn window_aggregates_and_p99() {
        let t = tracker(1000, 0.0);
        for i in 0..100 {
            t.record("topk", 5, 100, i % 10 != 0); // 10% errors
        }
        t.record("topk", 5, 50_000, true); // one outlier over objective
        let snap = t.snapshot(5);
        let topk = snap.iter().find(|s| s.name == "topk").unwrap();
        let w = &topk.windows[0];
        assert_eq!(w.requests, 101);
        assert_eq!(w.errors, 10);
        assert_eq!(w.slow, 1);
        assert!(w.p99_us() >= 64.0);
        assert!((w.error_rate() - 10.0 / 101.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_objectives_never_degrade() {
        let t = tracker(0, 0.0);
        for _ in 0..100 {
            t.record("topk", 5, 1_000_000, false); // slow AND erroring
        }
        let (status, reasons) = t.evaluate(5);
        assert_eq!(status, HealthStatus::Ok);
        assert!(reasons.is_empty());
    }

    #[test]
    fn injected_latency_degrades_then_recovers() {
        let t = tracker(1000, 0.0);
        // Healthy traffic at t=0..3s.
        for s in 0..3 {
            for _ in 0..30 {
                t.record("topk", s, 100, true);
            }
        }
        assert_eq!(t.evaluate(3).0, HealthStatus::Ok);
        // Injected latency at t=4s: every request blows the objective
        // (latency burn 100 ≥ FAST_BURN ⇒ unhealthy, not merely
        // degraded — the budget is burning 100× too fast).
        for _ in 0..30 {
            t.record("topk", 4, 50_000, true);
        }
        let (status, reasons) = t.evaluate(4);
        assert_eq!(status, HealthStatus::Unhealthy);
        assert!(!reasons.is_empty());
        // A *mild* overshoot is degraded: fresh tracker, 2% slow.
        let t2 = tracker(1000, 0.0);
        for i in 0..100 {
            t2.record("topk", 4, if i % 50 == 0 { 50_000 } else { 100 }, true);
        }
        assert_eq!(t2.evaluate(4).0, HealthStatus::Degraded);
        // Recovery: both evaluated windows (12s and 60s) forget the
        // bad slices once time moves past them; healthy traffic
        // meanwhile.
        for s in 65..68 {
            for _ in 0..30 {
                t.record("topk", s, 100, true);
            }
        }
        assert_eq!(t.evaluate(68).0, HealthStatus::Ok, "bad slices aged out");
    }

    #[test]
    fn error_burn_trips_on_error_budget() {
        let t = tracker(0, 0.01);
        for i in 0..100 {
            t.record("embed", 2, 100, i % 20 != 0); // 5% errors, 5x burn
        }
        let (status, reasons) = t.evaluate(2);
        assert_eq!(status, HealthStatus::Degraded);
        assert!(reasons.iter().any(|r| r.contains("error rate")));
        // 100% errors: 100x burn ⇒ unhealthy.
        let t2 = tracker(0, 0.01);
        for _ in 0..50 {
            t2.record("embed", 2, 100, false);
        }
        assert_eq!(t2.evaluate(2).0, HealthStatus::Unhealthy);
    }

    #[test]
    fn below_min_samples_is_quiet() {
        let t = tracker(1000, 0.0);
        for _ in 0..(MIN_SAMPLES - 1) {
            t.record("topk", 2, 1_000_000, true);
        }
        assert_eq!(t.evaluate(2).0, HealthStatus::Ok);
    }

    #[test]
    fn render_is_valid_prometheus() {
        let t = tracker(1000, 0.01);
        for _ in 0..30 {
            t.record("topk", 2, 100, true);
        }
        let mut page = String::new();
        t.render_prometheus(2, &mut page);
        crate::metrics::validate_prometheus(&page).unwrap();
        assert!(page.contains("sgla_slo_objective_p99_us 1000"));
        assert!(page.contains("sgla_slo_p99_us{endpoint=\"topk\",window=\"12s\"}"));
        assert!(page.contains("sgla_slo_burn_rate"));
    }

    #[test]
    fn window_names_are_pretty() {
        assert_eq!(window_name(60), "1m");
        assert_eq!(window_name(300), "5m");
        assert_eq!(window_name(3600), "1h");
        assert_eq!(window_name(12), "12s");
    }
}

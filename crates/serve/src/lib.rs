//! # sgla-serve — the query-serving subsystem
//!
//! Everything that happens *after* training: the paper's pipeline ends
//! at an integrated Laplacian, cluster labels, and an embedding
//! matrix; this crate turns that bundle into a durable artifact and a
//! network service.
//!
//! Four layers:
//!
//! * [`artifact`] — versioned, checksummed binary persistence for a
//!   trained bundle ([`Artifact`]): learned view weights `w*`, the
//!   integrated Laplacian (CSR), cluster labels/centroids, and the
//!   embedding matrix. [`Artifact::train`] runs the full pipeline;
//!   `save`/`load` round-trip it bit-exactly, rejecting corrupt input
//!   with typed errors. [`Artifact::save_sharded`] writes the v2
//!   row-range-sharded layout (shard files + JSON manifest) for
//!   artifacts too large for one host's memory.
//! * [`engine`] — the in-memory [`QueryEngine`]: `cluster_of`,
//!   `top_k_similar` (cache-friendly blocked dot-product kernel with
//!   an LRU result cache), `embed_batch`, plus the approximate
//!   `top_k_approx` path over an optional `mvag_index` IVF index
//!   (sublinear probes; the exact scan stays the verification oracle);
//!   [`batch`] micro-batches concurrent top-k queries into shared
//!   kernel passes.
//! * [`router`] — the [`ShardRouter`]: the same query API over a
//!   sharded layout, routing point queries by row range and fanning
//!   top-k out across lazily-loaded shard engines with a
//!   bit-identical merge.
//! * [`http`] — a dependency-light HTTP/1.1 JSON [`Server`] with two
//!   transports selected by [`ServerConfig::backend`]: the classic
//!   thread-per-connection pool (`threaded`, the correctness oracle)
//!   and a single-threaded epoll readiness loop (`evented`, Linux
//!   only) that holds thousands of keep-alive connections while
//!   compute runs on a small executor pool. Both share one request
//!   path ([`parser`] + routing), keep-alive, graceful shutdown, and
//!   per-endpoint latency/QPS counters ([`metrics`]); [`client`] is
//!   the matching minimal client used by tests and the serve
//!   benchmark. The server runs over any [`QueryBackend`] —
//!   monolithic engine or shard router.
//!
//! ```
//! use sgla_serve::prelude::*;
//! use std::sync::Arc;
//!
//! let mvag = mvag_data::toy_mvag(40, 2, 42);
//! let mut train = TrainConfig::default();
//! train.embed.dim = 4;
//! let artifact = Artifact::train(&mvag, &train).unwrap();
//!
//! let engine = Arc::new(QueryEngine::new(artifact, EngineConfig::default()).unwrap());
//! let config = ServerConfig {
//!     addr: "127.0.0.1:0".parse().unwrap(), // port 0: pick a free port
//!     ..ServerConfig::default()
//! };
//! let server = Server::start(Arc::clone(&engine), &config).unwrap();
//!
//! let mut client = HttpClient::connect(server.local_addr()).unwrap();
//! let health = client.get("/healthz").unwrap();
//! assert_eq!(health.status, 200);
//! server.shutdown();
//! ```

// `deny` rather than `forbid`: the epoll bindings in `sys` are the one
// module allowed to opt out (see its module docs); everything else in
// the crate stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod backend;
pub mod batch;
pub mod client;
pub mod compact;
pub mod cost;
pub mod engine;
pub mod error;
#[cfg(target_os = "linux")]
mod evented;
pub mod http;
pub mod lru;
pub mod metrics;
pub mod parser;
pub mod router;
pub mod slo;
pub mod slowlog;
pub mod store;
pub mod swap;
#[cfg(target_os = "linux")]
mod sys;

pub use artifact::{Artifact, ArtifactMeta, TrainConfig, UpdateOutcome};
pub use backend::{IndexStats, QueryBackend};
pub use client::{HttpClient, HttpResponse};
pub use compact::{
    append_sharded, compact_monolithic, compact_sharded, AppendStats, CompactionStats,
};
pub use cost::QueryCost;
pub use engine::{ApproxQuery, ClusterInfo, EngineConfig, Neighbor, QueryEngine};
pub use error::ServeError;
pub use http::{BackendLoader, ServeBackend, Server, ServerConfig};
pub use mvag_index::{IvfConfig, IvfIndex};
pub use router::{RouterConfig, ShardRouter};
pub use slo::{HealthStatus, SloTracker};
pub use slowlog::{SlowQuery, SlowQueryLog};
pub use store::{EmbeddingStore, MappedArtifact, StoreMemory};
pub use swap::HotSwapBackend;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Common imports for serving.
pub mod prelude {
    pub use crate::artifact::{Artifact, ArtifactMeta, TrainConfig};
    pub use crate::backend::{IndexStats, QueryBackend};
    pub use crate::client::HttpClient;
    pub use crate::engine::{ClusterInfo, EngineConfig, Neighbor, QueryEngine};
    pub use crate::http::{ServeBackend, Server, ServerConfig};
    pub use crate::router::{RouterConfig, ShardRouter};
    pub use crate::ServeError;
    pub use mvag_index::{IvfConfig, IvfIndex};
}

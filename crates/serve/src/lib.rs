//! # sgla-serve — the query-serving subsystem
//!
//! Everything that happens *after* training: the paper's pipeline ends
//! at an integrated Laplacian, cluster labels, and an embedding
//! matrix; this crate turns that bundle into a durable artifact and a
//! network service.
//!
//! Three layers:
//!
//! * [`artifact`] — versioned, checksummed binary persistence for a
//!   trained bundle ([`Artifact`]): learned view weights `w*`, the
//!   integrated Laplacian (CSR), cluster labels/centroids, and the
//!   embedding matrix. [`Artifact::train`] runs the full pipeline;
//!   `save`/`load` round-trip it bit-exactly, rejecting corrupt input
//!   with typed errors.
//! * [`engine`] — the in-memory [`QueryEngine`]: `cluster_of`,
//!   `top_k_similar` (cache-friendly blocked dot-product kernel with
//!   an LRU result cache), `embed_batch`; plus [`batch`], which
//!   micro-batches concurrent top-k queries into shared kernel passes.
//! * [`http`] — a dependency-light HTTP/1.1 JSON [`Server`] on
//!   `std::net` with a worker thread pool, keep-alive, graceful
//!   shutdown, and per-endpoint latency/QPS counters ([`metrics`]);
//!   [`client`] is the matching minimal client used by tests and the
//!   serve benchmark.
//!
//! ```no_run
//! use sgla_serve::prelude::*;
//! use std::sync::Arc;
//!
//! let mvag = mvag_data::toy_mvag(200, 3, 42);
//! let artifact = Artifact::train(&mvag, &TrainConfig::default()).unwrap();
//! artifact.save(std::path::Path::new("toy.sgla")).unwrap();
//!
//! let engine = Arc::new(QueryEngine::new(artifact, EngineConfig::default()).unwrap());
//! let server = Server::start(engine, &ServerConfig::default()).unwrap();
//! println!("serving on {}", server.local_addr());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod batch;
pub mod client;
pub mod engine;
pub mod error;
pub mod http;
pub mod lru;
pub mod metrics;

pub use artifact::{Artifact, ArtifactMeta, TrainConfig};
pub use client::{HttpClient, HttpResponse};
pub use engine::{ClusterInfo, EngineConfig, Neighbor, QueryEngine};
pub use error::ServeError;
pub use http::{Server, ServerConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Common imports for serving.
pub mod prelude {
    pub use crate::artifact::{Artifact, ArtifactMeta, TrainConfig};
    pub use crate::client::HttpClient;
    pub use crate::engine::{ClusterInfo, EngineConfig, Neighbor, QueryEngine};
    pub use crate::http::{Server, ServerConfig};
    pub use crate::ServeError;
}

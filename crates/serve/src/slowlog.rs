//! Slow-query log: a lock-striped ring of over-threshold requests.
//!
//! Mirrors the `mvag-obs` span-ring design — [`mvag_obs::STRIPES`]
//! independently locked [`VecDeque`] stripes, selected by the
//! recording thread's number, so concurrent captures (and concurrent
//! drains) never contend on one global lock. Each entry keeps the
//! request's identity, its full [`QueryCost`] profile when the request
//! went through a query endpoint, and the span tree captured from the
//! obs ring when tracing was enabled.
//!
//! The threshold is live-tunable: seeded by `--slow-query-us`, read
//! on every request, and adjustable at runtime via
//! `PUT /debug/slow_threshold` without restarting the server. Entries
//! are exported by `GET /debug/slow_queries` (optionally draining) and
//! counted on `/metrics` as the `sgla_slow_query_*` family.

use crate::cost::QueryCost;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Entries retained per stripe; the ring holds at most
/// `mvag_obs::STRIPES * STRIPE_CAPACITY` slow queries and drops the
/// oldest entry of a full stripe (counted in [`SlowQueryLog::dropped`]).
const STRIPE_CAPACITY: usize = 64;

/// One captured over-threshold request.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Request id exactly as echoed to the client (client-supplied
    /// `X-Request-Id` or the minted `req-{16 hex}`).
    pub request_id: String,
    /// Endpoint label (same names as the `/stats` endpoint table).
    pub endpoint: &'static str,
    /// HTTP status the request was answered with.
    pub status: u16,
    /// End-to-end wall time in microseconds (parse + queue + compute
    /// + serialization).
    pub wall_us: u64,
    /// Threshold in force when the entry was captured.
    pub threshold_us: u64,
    /// Cost profile — present for `/cluster`, `/topk`, and `/embed`.
    pub cost: Option<QueryCost>,
    /// Span tree for the request's trace, captured from the obs ring
    /// (empty unless the server runs with tracing enabled).
    pub spans: Vec<mvag_obs::SpanRecord>,
    /// Capture time in microseconds since the process obs epoch.
    pub at_us: u64,
}

/// The lock-striped slow-query ring. One per server.
pub struct SlowQueryLog {
    threshold_us: AtomicU64,
    captured: AtomicU64,
    dropped: AtomicU64,
    stripes: Vec<Mutex<VecDeque<SlowQuery>>>,
}

impl SlowQueryLog {
    /// Builds an empty ring with the given initial threshold
    /// (microseconds; 0 disables capture).
    pub fn new(threshold_us: u64) -> SlowQueryLog {
        SlowQueryLog {
            threshold_us: AtomicU64::new(threshold_us),
            captured: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            stripes: (0..mvag_obs::STRIPES)
                .map(|_| Mutex::new(VecDeque::with_capacity(STRIPE_CAPACITY)))
                .collect(),
        }
    }

    /// Current threshold in microseconds (0 = capture disabled).
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Replaces the threshold (live: takes effect on the next request).
    pub fn set_threshold_us(&self, threshold_us: u64) {
        self.threshold_us.store(threshold_us, Ordering::Relaxed);
    }

    /// Should a request with this wall time be captured?
    pub fn is_slow(&self, wall_us: u64) -> bool {
        let threshold = self.threshold_us();
        threshold > 0 && wall_us >= threshold
    }

    /// Total entries ever captured (monotonic, survives drains).
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Entries evicted because their stripe was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Entries currently held across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| lock(s).len()).sum()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entries the ring can hold.
    pub fn capacity(&self) -> usize {
        mvag_obs::STRIPES * STRIPE_CAPACITY
    }

    /// Appends an entry to the recording thread's stripe, evicting the
    /// stripe's oldest entry if it is full.
    pub fn record(&self, entry: SlowQuery) {
        let stripe = mvag_obs::thread_num() as usize % self.stripes.len();
        let mut queue = lock(&self.stripes[stripe]);
        if queue.len() == STRIPE_CAPACITY {
            queue.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        queue.push_back(entry);
        drop(queue);
        self.captured.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every held entry, newest first.
    pub fn snapshot(&self) -> Vec<SlowQuery> {
        let mut all: Vec<SlowQuery> = self
            .stripes
            .iter()
            .flat_map(|s| lock(s).iter().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|e| std::cmp::Reverse(e.at_us));
        all
    }

    /// Removes and returns every held entry, newest first. Entries
    /// recorded concurrently with the drain land in whichever side
    /// wins the stripe lock — none are lost.
    pub fn drain(&self) -> Vec<SlowQuery> {
        let mut all: Vec<SlowQuery> = self
            .stripes
            .iter()
            .flat_map(|s| std::mem::take(&mut *lock(s)))
            .collect();
        all.sort_by_key(|e| std::cmp::Reverse(e.at_us));
        all
    }
}

/// Poison-tolerant lock: a panicking capture must not wedge the log.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entry(wall_us: u64, at_us: u64) -> SlowQuery {
        SlowQuery {
            request_id: format!("req-{at_us:016x}"),
            endpoint: "topk",
            status: 200,
            wall_us,
            threshold_us: 1,
            cost: Some(QueryCost::exact()),
            spans: Vec::new(),
            at_us,
        }
    }

    #[test]
    fn threshold_gates_capture() {
        let log = SlowQueryLog::new(0);
        assert!(!log.is_slow(u64::MAX), "0 disables capture");
        log.set_threshold_us(100);
        assert!(!log.is_slow(99));
        assert!(log.is_slow(100));
        assert_eq!(log.threshold_us(), 100);
    }

    #[test]
    fn record_snapshot_drain_roundtrip() {
        let log = SlowQueryLog::new(1);
        for i in 0..10 {
            log.record(entry(50, i));
        }
        assert_eq!(log.len(), 10);
        assert_eq!(log.captured(), 10);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 10);
        assert!(snap.windows(2).all(|w| w[0].at_us >= w[1].at_us));
        assert_eq!(log.len(), 10, "snapshot keeps entries");
        let drained = log.drain();
        assert_eq!(drained.len(), 10);
        assert!(log.is_empty());
        assert_eq!(log.captured(), 10, "captured counter survives drain");
    }

    #[test]
    fn full_stripe_evicts_oldest() {
        let log = SlowQueryLog::new(1);
        // All from one thread → one stripe: capacity is STRIPE_CAPACITY.
        for i in 0..(STRIPE_CAPACITY as u64 + 8) {
            log.record(entry(50, i));
        }
        assert_eq!(log.len(), STRIPE_CAPACITY);
        assert_eq!(log.dropped(), 8);
        let snap = log.snapshot();
        assert_eq!(snap.last().unwrap().at_us, 8, "oldest 8 evicted");
    }

    #[test]
    fn concurrent_drains_lose_nothing() {
        let log = Arc::new(SlowQueryLog::new(1));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        log.record(entry(50, t * 1000 + i));
                    }
                })
            })
            .collect();
        let drainers: Vec<_> = (0..3)
            .map(|_| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    let mut got = 0usize;
                    for _ in 0..50 {
                        got += log.drain().len();
                        std::thread::yield_now();
                    }
                    got
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let drained: usize = drainers.into_iter().map(|d| d.join().unwrap()).sum();
        let total = drained + log.drain().len() + log.dropped() as usize;
        assert_eq!(total, 800, "every record drained or counted dropped");
    }
}

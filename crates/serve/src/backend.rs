//! The query-backend abstraction the HTTP front end serves.
//!
//! [`QueryBackend`] is the narrow interface between the transport
//! layer ([`crate::http`], [`crate::batch`]) and whatever answers
//! queries behind it: a single in-memory [`QueryEngine`] for
//! monolithic artifacts, or a [`crate::router::ShardRouter`] fronting
//! many row-range shard engines. The HTTP server and the micro-batcher
//! are written against `Arc<dyn QueryBackend>`, so sharded serving is
//! a deployment choice, not a different server.

use crate::artifact::ArtifactMeta;
use crate::engine::{ClusterInfo, Neighbor, QueryEngine};
use crate::Result;

/// Anything that can answer the three serving queries over one
/// artifact's id space.
pub trait QueryBackend: Send + Sync {
    /// Metadata of the (logical, full) artifact being served.
    fn meta(&self) -> &ArtifactMeta;

    /// Learned view weights `w*` (reported by `/artifact`).
    fn weights(&self) -> &[f64];

    /// Cluster assignment and centroid distance for one node.
    ///
    /// # Errors
    /// [`crate::ServeError::InvalidQuery`] for out-of-range nodes.
    fn cluster_of(&self, node: usize) -> Result<ClusterInfo>;

    /// Answers many `(node, k)` top-k queries; results in query order,
    /// failed queries carry their individual error.
    fn top_k_batch(&self, queries: &[(usize, usize)]) -> Vec<Result<Vec<Neighbor>>>;

    /// Embedding rows for a batch of nodes (whole batch rejected on
    /// any invalid id).
    ///
    /// # Errors
    /// [`crate::ServeError::InvalidQuery`] if any node is out of range.
    fn embed_batch(&self, nodes: &[usize]) -> Result<Vec<Vec<f64>>>;

    /// `(hits, misses)` of the backend's top-k result cache.
    fn cache_stats(&self) -> (u64, u64);

    /// How many row-range shards back this backend (1 = monolithic).
    fn shard_count(&self) -> usize {
        1
    }

    /// How many shards are currently resident in memory.
    fn resident_shards(&self) -> usize {
        1
    }
}

impl QueryBackend for QueryEngine {
    fn meta(&self) -> &ArtifactMeta {
        &self.artifact().meta
    }

    fn weights(&self) -> &[f64] {
        &self.artifact().weights
    }

    fn cluster_of(&self, node: usize) -> Result<ClusterInfo> {
        QueryEngine::cluster_of(self, node)
    }

    fn top_k_batch(&self, queries: &[(usize, usize)]) -> Vec<Result<Vec<Neighbor>>> {
        QueryEngine::top_k_batch(self, queries)
    }

    fn embed_batch(&self, nodes: &[usize]) -> Result<Vec<Vec<f64>>> {
        QueryEngine::embed_batch(self, nodes)
    }

    fn cache_stats(&self) -> (u64, u64) {
        QueryEngine::cache_stats(self)
    }
}

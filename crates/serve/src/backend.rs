//! The query-backend abstraction the HTTP front end serves.
//!
//! [`QueryBackend`] is the narrow interface between the transport
//! layer ([`crate::http`], [`crate::batch`]) and whatever answers
//! queries behind it: a single in-memory [`QueryEngine`] for
//! monolithic artifacts, or a [`crate::router::ShardRouter`] fronting
//! many row-range shard engines. The HTTP server and the micro-batcher
//! are written against `Arc<dyn QueryBackend>`, so sharded serving is
//! a deployment choice, not a different server.

use crate::artifact::ArtifactMeta;
use crate::cost::QueryCost;
use crate::engine::{ApproxQuery, ClusterInfo, Neighbor, QueryEngine};
use crate::store::StoreMemory;
use crate::Result;

/// Point-in-time counters of a backend's approximate-index machinery:
/// whether an IVF index is attached, its list count, the exact/approx
/// query mix, and the scan work the approx path actually did (probed
/// lists and candidate rows — the numbers that make "sublinear"
/// measurable instead of assumed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Whether approximate top-k is available on this backend.
    pub enabled: bool,
    /// Inverted lists of the attached index (per shard, for routers;
    /// 0 when disabled).
    pub nlist: usize,
    /// Approximate top-k queries answered.
    pub approx_queries: u64,
    /// Exact top-k queries answered.
    pub exact_queries: u64,
    /// Total inverted lists scanned by approx queries.
    pub lists_scanned: u64,
    /// Total candidate rows scored by approx queries.
    pub rows_scanned: u64,
}

/// Anything that can answer the three serving queries over one
/// artifact's id space.
///
/// Metadata accessors return owned values (not references into the
/// backend): a [`crate::swap::HotSwapBackend`] can replace its inner
/// backend at any moment, so no borrow may outlive a single call.
pub trait QueryBackend: Send + Sync {
    /// Metadata of the (logical, full) artifact being served.
    fn meta(&self) -> ArtifactMeta;

    /// Learned view weights `w*` (reported by `/artifact`).
    fn weights(&self) -> Vec<f64>;

    /// Cluster assignment and centroid distance for one node.
    ///
    /// # Errors
    /// [`crate::ServeError::InvalidQuery`] for out-of-range nodes.
    fn cluster_of(&self, node: usize) -> Result<ClusterInfo>;

    /// Answers many `(node, k)` top-k queries; results in query order,
    /// failed queries carry their individual error.
    fn top_k_batch(&self, queries: &[(usize, usize)]) -> Vec<Result<Vec<Neighbor>>>;

    /// Answers many `(node, k, nprobe)` *approximate* top-k queries
    /// via an IVF index (`nprobe = 0` = index default). Backends
    /// without an index reject each query individually.
    fn top_k_batch_approx(&self, queries: &[ApproxQuery]) -> Vec<Result<Vec<Neighbor>>> {
        queries
            .iter()
            .map(|_| Err(crate::engine::no_index_error()))
            .collect()
    }

    /// Counters of the approximate-index machinery (disabled/zero by
    /// default).
    fn index_stats(&self) -> IndexStats {
        IndexStats::default()
    }

    /// Embedding rows for a batch of nodes (whole batch rejected on
    /// any invalid id).
    ///
    /// # Errors
    /// [`crate::ServeError::InvalidQuery`] if any node is out of range.
    fn embed_batch(&self, nodes: &[usize]) -> Result<Vec<Vec<f64>>>;

    /// `(hits, misses)` of the backend's top-k result cache.
    fn cache_stats(&self) -> (u64, u64);

    /// How many row-range shards back this backend (1 = monolithic).
    fn shard_count(&self) -> usize {
        1
    }

    /// How many shards are currently resident in memory.
    fn resident_shards(&self) -> usize {
        1
    }

    /// How many rows are tombstoned (deleted but not yet compacted)
    /// across the backend. 0 for backends that predate deletions.
    fn tombstone_count(&self) -> usize {
        0
    }

    /// Memory accounting of the backend's embedding stores: heap bytes
    /// pinned vs mapped (page-cache reclaimable) bytes, the store kind
    /// per shard slot, and how the residency budget is enforced.
    /// Reported by `/stats` and the `sgla_store_*` gauges.
    fn store_memory(&self) -> StoreMemory {
        StoreMemory::default()
    }

    /// [`Self::cluster_of`] plus a cost profile of the lookup. The
    /// answer is exactly what `cluster_of` returns — cost accounting
    /// must never perturb results. The default wraps the plain call
    /// with shard-shape bookkeeping only; engines and routers override
    /// it with real counters.
    fn cluster_of_costed(&self, node: usize) -> (Result<ClusterInfo>, QueryCost) {
        let mut cost = QueryCost::exact();
        cost.shards_touched = self.shard_count() as u64;
        cost.shards_resident = self.resident_shards() as u64;
        (self.cluster_of(node), cost)
    }

    /// [`Self::top_k_batch`] plus a cost profile of the whole pass.
    fn top_k_batch_costed(
        &self,
        queries: &[(usize, usize)],
    ) -> (Vec<Result<Vec<Neighbor>>>, QueryCost) {
        let mut cost = QueryCost::exact();
        cost.shards_touched = self.shard_count() as u64;
        cost.shards_resident = self.resident_shards() as u64;
        cost.cache_misses = queries.len() as u64;
        (self.top_k_batch(queries), cost)
    }

    /// [`Self::top_k_batch_approx`] plus a cost profile of the pass.
    fn top_k_batch_approx_costed(
        &self,
        queries: &[ApproxQuery],
    ) -> (Vec<Result<Vec<Neighbor>>>, QueryCost) {
        let mut cost = QueryCost::ivf();
        cost.shards_touched = self.shard_count() as u64;
        cost.shards_resident = self.resident_shards() as u64;
        cost.cache_misses = queries.len() as u64;
        (self.top_k_batch_approx(queries), cost)
    }

    /// [`Self::embed_batch`] plus a cost profile of the batch.
    fn embed_batch_costed(&self, nodes: &[usize]) -> (Result<Vec<Vec<f64>>>, QueryCost) {
        let mut cost = QueryCost::exact();
        cost.shards_touched = self.shard_count() as u64;
        cost.shards_resident = self.resident_shards() as u64;
        cost.rows_scanned = nodes.len() as u64;
        (self.embed_batch(nodes), cost)
    }
}

impl QueryBackend for QueryEngine {
    fn meta(&self) -> ArtifactMeta {
        self.artifact().meta.clone()
    }

    fn weights(&self) -> Vec<f64> {
        self.artifact().weights.clone()
    }

    fn cluster_of(&self, node: usize) -> Result<ClusterInfo> {
        QueryEngine::cluster_of(self, node)
    }

    fn top_k_batch(&self, queries: &[(usize, usize)]) -> Vec<Result<Vec<Neighbor>>> {
        QueryEngine::top_k_batch(self, queries)
    }

    fn top_k_batch_approx(&self, queries: &[ApproxQuery]) -> Vec<Result<Vec<Neighbor>>> {
        QueryEngine::top_k_batch_approx(self, queries)
    }

    fn index_stats(&self) -> IndexStats {
        QueryEngine::index_stats(self)
    }

    fn embed_batch(&self, nodes: &[usize]) -> Result<Vec<Vec<f64>>> {
        QueryEngine::embed_batch(self, nodes)
    }

    fn cache_stats(&self) -> (u64, u64) {
        QueryEngine::cache_stats(self)
    }

    fn tombstone_count(&self) -> usize {
        self.artifact().tombstone_count()
    }

    fn store_memory(&self) -> StoreMemory {
        StoreMemory {
            owned_bytes: self.store().owned_bytes(),
            mapped_bytes: self.store().mapped_bytes(),
            stores: vec![self.store().kind().to_string()],
            resident_hint: "none".to_string(),
        }
    }

    fn cluster_of_costed(&self, node: usize) -> (Result<ClusterInfo>, QueryCost) {
        let mut cost = QueryCost::exact();
        cost.shards_touched = 1;
        cost.shards_resident = 1;
        cost.rows_scanned = 1;
        (QueryEngine::cluster_of(self, node), cost)
    }

    fn top_k_batch_costed(
        &self,
        queries: &[(usize, usize)],
    ) -> (Vec<Result<Vec<Neighbor>>>, QueryCost) {
        QueryEngine::top_k_batch_costed(self, queries)
    }

    fn top_k_batch_approx_costed(
        &self,
        queries: &[ApproxQuery],
    ) -> (Vec<Result<Vec<Neighbor>>>, QueryCost) {
        QueryEngine::top_k_batch_approx_costed(self, queries)
    }

    fn embed_batch_costed(&self, nodes: &[usize]) -> (Result<Vec<Vec<f64>>>, QueryCost) {
        let mut cost = QueryCost::exact();
        cost.shards_touched = 1;
        cost.shards_resident = 1;
        cost.rows_scanned = nodes.len() as u64;
        (QueryEngine::embed_batch(self, nodes), cost)
    }
}

//! The in-memory query engine over a loaded [`Artifact`].
//!
//! Answers the three serving queries:
//!
//! * [`QueryEngine::cluster_of`] — the trained cluster assignment plus
//!   the distance to the assigned centroid;
//! * [`QueryEngine::top_k_similar`] — the `k` nearest nodes by cosine
//!   similarity in embedding space, via a cache-friendly blocked
//!   dot-product kernel (reusing `mvag_sparse::vecops`) with an LRU
//!   result cache in front;
//! * [`QueryEngine::embed_batch`] — raw embedding rows for a batch of
//!   nodes.
//!
//! The top-k kernel is batch-first: [`QueryEngine::top_k_batch`] scans
//! the embedding matrix in row blocks and scores every queued query
//! against the resident block before moving on, so concurrent queries
//! share memory traffic instead of multiplying it. The HTTP front end
//! funnels concurrent requests through [`crate::batch::Batcher`], which
//! micro-batches them into exactly this entry point.
//!
//! An engine serves whatever row range its artifact covers: a full
//! artifact behaves exactly as before, while a shard artifact answers
//! for its global row range only — [`QueryEngine::top_k_for_query`]
//! additionally scores an *external* query vector against the local
//! rows, which is how [`crate::router::ShardRouter`] fans one query
//! out across many shard engines.

use crate::artifact::Artifact;
use crate::backend::IndexStats;
use crate::cost::QueryCost;
use crate::lru::LruCache;
use crate::store::{EmbeddingStore, MappedArtifact};
use crate::{Result, ServeError};
use mvag_index::{IvfConfig, IvfIndex, IvfSearchStats};
use mvag_sparse::{parallel, vecops, DenseMatrix};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One scored neighbour from a top-k query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Node id.
    pub node: usize,
    /// Cosine similarity to the query node in embedding space.
    pub score: f64,
}

/// Cluster assignment answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterInfo {
    /// The queried node.
    pub node: usize,
    /// Assigned cluster in `0..k`.
    pub cluster: usize,
    /// Euclidean distance to the assigned centroid in embedding space.
    pub centroid_dist: f64,
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker-pool width cap for batch kernels. Defaults to
    /// `mvag_sparse::parallel::default_threads()` — the same sizing as
    /// the process-wide compute pool (available parallelism capped at
    /// 16 per the paper's setup, overridable with the `SGLA_THREADS`
    /// environment variable), so serving and training never fight over
    /// an inconsistent thread budget.
    pub threads: usize,
    /// Entries in the top-k result LRU cache (0 disables caching).
    pub cache_capacity: usize,
    /// Rows per block in the blocked scoring kernel.
    pub block_rows: usize,
    /// When set, an IVF approximate top-k index is trained over the
    /// artifact's embedding rows at engine construction (unless a
    /// pre-built index is attached via [`QueryEngine::with_index`]).
    /// `None` serves exact-only.
    pub index: Option<IvfConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: parallel::default_threads(),
            cache_capacity: 4096,
            block_rows: 64,
            index: None,
        }
    }
}

/// An approximate top-k query: `(node, k, nprobe)`, with `nprobe = 0`
/// meaning the index's default probe width.
pub type ApproxQuery = (usize, usize, usize);

/// Cumulative counters of the approximate-index machinery (atomics;
/// shared-reference updates from the query paths).
#[derive(Debug, Default)]
pub(crate) struct IndexCounters {
    pub(crate) approx_queries: AtomicU64,
    pub(crate) exact_queries: AtomicU64,
    pub(crate) lists_scanned: AtomicU64,
    pub(crate) rows_scanned: AtomicU64,
}

impl IndexCounters {
    pub(crate) fn record_search(&self, stats: &IvfSearchStats) {
        self.lists_scanned
            .fetch_add(stats.lists_scanned as u64, Ordering::Relaxed);
        self.rows_scanned
            .fetch_add(stats.rows_scanned as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, enabled: bool, nlist: usize) -> IndexStats {
        IndexStats {
            enabled,
            nlist,
            approx_queries: self.approx_queries.load(Ordering::Relaxed),
            exact_queries: self.exact_queries.load(Ordering::Relaxed),
            lists_scanned: self.lists_scanned.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
        }
    }
}

/// In-memory index over one artifact (full or a row-range shard).
///
/// All node ids in the query API are *global*: a shard engine answers
/// for nodes in its artifact's `[row_start, row_end)` and rejects the
/// rest with [`ServeError::InvalidQuery`].
///
/// ```
/// use sgla_serve::{Artifact, EngineConfig, QueryEngine, TrainConfig};
///
/// let mvag = mvag_data::toy_mvag(40, 2, 7);
/// let mut config = TrainConfig::default();
/// config.embed.dim = 4;
/// let artifact = Artifact::train(&mvag, &config).unwrap();
/// let engine = QueryEngine::new(artifact, EngineConfig::default()).unwrap();
///
/// let info = engine.cluster_of(3).unwrap();
/// assert!(info.cluster < 2);
/// let neighbors = engine.top_k_similar(3, 5).unwrap();
/// assert_eq!(neighbors.len(), 5);
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    /// Query-side state. The embedding matrix lives in `store`, not
    /// here: [`QueryEngine::artifact`] returns it with an *empty*
    /// `embedding` field regardless of backing.
    artifact: Artifact,
    /// The embedding rows and their norms — heap-owned or borrowed
    /// from a memory-mapped v5 artifact (see [`crate::store`]).
    store: EmbeddingStore,
    /// Tombstone mask over local rows; empty when the artifact has no
    /// tombstones (the common case — keeps the hot loops branch-cheap).
    dead: Vec<bool>,
    cache: Mutex<LruCache<(usize, usize), Vec<Neighbor>>>,
    config: EngineConfig,
    /// Optional IVF index for approximate top-k over the local rows.
    index: Option<IvfIndex>,
    counters: IndexCounters,
}

impl QueryEngine {
    /// Builds the engine (validates the artifact, precomputes norms).
    /// With [`EngineConfig::index`] set, an IVF index is trained over
    /// the artifact's embedding rows here.
    ///
    /// # Errors
    /// [`ServeError::Corrupt`] if the artifact is inconsistent;
    /// [`ServeError::InvalidArgument`] if index training fails.
    pub fn new(artifact: Artifact, config: EngineConfig) -> Result<Self> {
        Self::new_with_norms(artifact, config, None)
    }

    /// [`QueryEngine::new`], reusing per-row norms persisted alongside
    /// the artifact (the v5 norms section via
    /// [`Artifact::load_with_norms`]) instead of recomputing them with
    /// an O(rows × dim) pass over the embedding.
    ///
    /// # Errors
    /// See [`QueryEngine::new`].
    pub fn new_with_norms(
        artifact: Artifact,
        config: EngineConfig,
        norms: Option<Vec<f64>>,
    ) -> Result<Self> {
        let index = match &config.index {
            Some(ivf) => Some(artifact.build_ivf(ivf)?),
            None => None,
        };
        Self::assemble_owned(artifact, config, index, norms)
    }

    /// Builds the engine around a pre-built (typically loaded from a
    /// sidecar file) IVF index instead of training one, verifying the
    /// index covers exactly this artifact's rows.
    ///
    /// # Errors
    /// [`ServeError::Corrupt`] if the artifact is inconsistent or the
    /// index does not match it.
    pub fn with_index(artifact: Artifact, config: EngineConfig, index: IvfIndex) -> Result<Self> {
        Self::with_index_and_norms(artifact, config, index, None)
    }

    /// [`QueryEngine::with_index`] with optional persisted norms (see
    /// [`QueryEngine::new_with_norms`]).
    ///
    /// # Errors
    /// See [`QueryEngine::with_index`].
    pub fn with_index_and_norms(
        artifact: Artifact,
        config: EngineConfig,
        index: IvfIndex,
        norms: Option<Vec<f64>>,
    ) -> Result<Self> {
        let m = &artifact.meta;
        index
            .check_compatible(m.n, m.dim, m.row_start, m.row_end)
            .map_err(|e| ServeError::Corrupt(format!("index does not match artifact: {e}")))?;
        Self::assemble_owned(artifact, config, Some(index), norms)
    }

    /// Builds the engine over a memory-mapped artifact (see
    /// [`crate::store::open_mapped`]): rows are scored straight out of
    /// the page cache, never copied to the heap. A sidecar IVF index
    /// may be attached; *training* one is impossible here (it would
    /// need the whole embedding resident, defeating the map), so
    /// [`EngineConfig::index`] combined with `index: None` is rejected
    /// and the caller decides whether to fall back to an owned load.
    ///
    /// # Errors
    /// [`ServeError::InvalidArgument`] when index training is
    /// requested; [`ServeError::Corrupt`] when a sidecar index does
    /// not match the artifact.
    pub fn from_mapped(
        mapped: MappedArtifact,
        config: EngineConfig,
        index: Option<IvfIndex>,
    ) -> Result<Self> {
        let MappedArtifact { artifact, store } = mapped;
        if config.index.is_some() && index.is_none() {
            return Err(ServeError::InvalidArgument(
                "cannot train an IVF index over a memory-mapped artifact; \
                 attach a sidecar index or serve it owned"
                    .into(),
            ));
        }
        if let Some(ix) = &index {
            let m = &artifact.meta;
            ix.check_compatible(m.n, m.dim, m.row_start, m.row_end)
                .map_err(|e| ServeError::Corrupt(format!("index does not match artifact: {e}")))?;
        }
        // No artifact.validate() here: it would reject the placeholder
        // embedding/laplacian. open_mapped already validated every
        // invariant the query paths rely on.
        Ok(Self::assemble(artifact, store, config, index))
    }

    fn assemble_owned(
        mut artifact: Artifact,
        config: EngineConfig,
        index: Option<IvfIndex>,
        norms: Option<Vec<f64>>,
    ) -> Result<Self> {
        artifact.validate()?;
        let embedding = std::mem::replace(&mut artifact.embedding, DenseMatrix::zeros(0, 0));
        let store = EmbeddingStore::owned(embedding, norms);
        Ok(Self::assemble(artifact, store, config, index))
    }

    fn assemble(
        artifact: Artifact,
        store: EmbeddingStore,
        config: EngineConfig,
        index: Option<IvfIndex>,
    ) -> Self {
        let dead = if artifact.tombstone_count() == 0 {
            Vec::new()
        } else {
            let mut mask = vec![false; artifact.meta.rows()];
            for &t in &artifact.tombstones {
                mask[t - artifact.meta.row_start] = true;
            }
            mask
        };
        QueryEngine {
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            artifact,
            store,
            dead,
            config,
            index,
            counters: IndexCounters::default(),
        }
    }

    /// The query-side artifact state being served (meta, weights,
    /// labels, centroids, tombstones). The `embedding` field is empty
    /// — rows live in [`QueryEngine::store`] — and for mapped engines
    /// the `laplacian` is an empty placeholder too.
    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }

    /// The embedding row store (owned or mapped) backing this engine.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// The attached IVF index, if any.
    pub fn index(&self) -> Option<&IvfIndex> {
        self.index.as_ref()
    }

    /// Snapshot of the exact/approx query mix and index scan work.
    pub fn index_stats(&self) -> IndexStats {
        self.counters.snapshot(
            self.index.is_some(),
            self.index.as_ref().map_or(0, IvfIndex::nlist),
        )
    }

    /// `(hits, misses)` of the top-k result cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().expect("cache lock").stats()
    }

    fn check_node(&self, node: usize) -> Result<()> {
        let m = &self.artifact.meta;
        if node >= m.n {
            return Err(ServeError::InvalidQuery(format!(
                "node {node} out of range (n = {})",
                m.n
            )));
        }
        if node < m.row_start || node >= m.row_end {
            return Err(ServeError::InvalidQuery(format!(
                "node {node} outside this shard's rows {}..{}",
                m.row_start, m.row_end
            )));
        }
        if self.is_dead_local(node - m.row_start) {
            return Err(ServeError::NotFound(format!(
                "node {node} has been deleted (tombstoned; pending compaction)"
            )));
        }
        Ok(())
    }

    /// True when local row `row` is tombstoned (empty mask = no dead
    /// rows, so the untombstoned fast path is a bounds check).
    #[inline]
    fn is_dead_local(&self, row: usize) -> bool {
        self.dead.get(row).copied().unwrap_or(false)
    }

    /// Local row index of a (checked) global node id.
    fn local(&self, node: usize) -> usize {
        node - self.artifact.meta.row_start
    }

    /// Cluster assignment and centroid distance for one node.
    ///
    /// # Errors
    /// [`ServeError::InvalidQuery`] for nodes outside this engine's
    /// row range.
    pub fn cluster_of(&self, node: usize) -> Result<ClusterInfo> {
        self.check_node(node)?;
        let local = self.local(node);
        let cluster = self.artifact.labels[local];
        let centroid_dist =
            vecops::dist2(self.store.row(local), self.artifact.centroids.row(cluster)).sqrt();
        Ok(ClusterInfo {
            node,
            cluster,
            centroid_dist,
        })
    }

    /// Embedding rows for a batch of nodes.
    ///
    /// # Errors
    /// [`ServeError::InvalidQuery`] if any node is out of range (the
    /// whole batch is rejected, matching HTTP semantics).
    pub fn embed_batch(&self, nodes: &[usize]) -> Result<Vec<Vec<f64>>> {
        for &node in nodes {
            self.check_node(node)?;
        }
        Ok(nodes
            .iter()
            .map(|&n| self.store.row(self.local(n)).to_vec())
            .collect())
    }

    /// The embedding row and its precomputed Euclidean norm for one
    /// node — the query vector a [`crate::router::ShardRouter`] hands
    /// to every other shard when fanning a top-k query out.
    ///
    /// # Errors
    /// [`ServeError::InvalidQuery`] for nodes outside this engine's
    /// row range.
    pub fn query_vector(&self, node: usize) -> Result<(Vec<f64>, f64)> {
        self.check_node(node)?;
        let local = self.local(node);
        Ok((self.store.row(local).to_vec(), self.store.norms()[local]))
    }

    /// The `k` most similar nodes to `node` (cosine in embedding
    /// space), best first; ties break toward the smaller node id. The
    /// query node itself is excluded. `k` is clamped to `n - 1`.
    ///
    /// # Errors
    /// [`ServeError::InvalidQuery`] for out-of-range nodes or `k == 0`.
    pub fn top_k_similar(&self, node: usize, k: usize) -> Result<Vec<Neighbor>> {
        // Single query = batch of one: validation, clamping, and the
        // cache protocol live in exactly one place.
        self.top_k_batch(&[(node, k)]).pop().expect("one query")
    }

    /// Answers many top-k queries in one pass over the embedding
    /// matrix (the micro-batching entry point). Results are in query
    /// order; failed queries carry their individual error.
    pub fn top_k_batch(&self, queries: &[(usize, usize)]) -> Vec<Result<Vec<Neighbor>>> {
        self.top_k_batch_costed(queries).0
    }

    /// [`QueryEngine::top_k_batch`] plus the cost profile of the pass:
    /// cache hit/miss split, rows the blocked kernel scored, and the
    /// tombstones it skipped. The answers are computed by the same
    /// code path, so EXPLAIN can never perturb them.
    pub fn top_k_batch_costed(
        &self,
        queries: &[(usize, usize)],
    ) -> (Vec<Result<Vec<Neighbor>>>, QueryCost) {
        let mut cost = QueryCost::exact();
        cost.shards_touched = 1;
        cost.shards_resident = 1;
        // Partition into cache hits, invalid queries, and real work.
        let n = self.artifact.meta.n;
        let mut answers: Vec<Option<Result<Vec<Neighbor>>>> = Vec::with_capacity(queries.len());
        let mut work: Vec<(usize, usize)> = Vec::new(); // (query index, slot)
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for (qi, &(node, k)) in queries.iter().enumerate() {
                if let Err(e) = self.check_node(node) {
                    answers.push(Some(Err(e)));
                    continue;
                }
                if k == 0 {
                    answers.push(Some(Err(ServeError::InvalidQuery(
                        "k must be at least 1".into(),
                    ))));
                    continue;
                }
                let k = k.min(n - 1);
                self.counters.exact_queries.fetch_add(1, Ordering::Relaxed);
                if let Some(hit) = cache.get(&(node, k)) {
                    cost.cache_hits += 1;
                    answers.push(Some(Ok(hit.clone())));
                } else {
                    cost.cache_misses += 1;
                    answers.push(None);
                    work.push((qi, jobs.len()));
                    jobs.push((node, k));
                }
            }
        }
        if !jobs.is_empty() {
            let rows_scanned = (jobs.len() * self.artifact.meta.rows().saturating_sub(1)) as u64;
            cost.rows_scanned = rows_scanned;
            cost.tombstones_masked = (jobs.len() * self.artifact.tombstone_count()) as u64;
            let mut span = mvag_obs::span("serve.scan");
            span.counter("queries", jobs.len() as u64);
            span.counter("rows_scanned", rows_scanned);
            let results = self.scan_block_topk(&jobs);
            drop(span);
            let mut cache = self.cache.lock().expect("cache lock");
            for ((qi, slot), result) in work.into_iter().zip(results) {
                cache.insert(jobs[slot], result.clone());
                answers[qi] = Some(Ok(result));
            }
        }
        let answers = answers
            .into_iter()
            .map(|a| a.expect("all slots filled"))
            .collect();
        (answers, cost)
    }

    /// Approximate top-k via the attached IVF index: only the `nprobe`
    /// best-matching inverted lists are scanned (`nprobe = 0` uses the
    /// index default, `nprobe >= nlist` is bit-identical to
    /// [`QueryEngine::top_k_similar`]). Same validation, clamping, and
    /// ordering as the exact path; results are **not** cached (they
    /// are cheap and parameterized by `nprobe`).
    ///
    /// # Errors
    /// [`ServeError::InvalidQuery`] for out-of-range nodes, `k == 0`,
    /// or when no index is attached.
    pub fn top_k_approx(&self, node: usize, k: usize, nprobe: usize) -> Result<Vec<Neighbor>> {
        self.top_k_batch_approx(&[(node, k, nprobe)])
            .pop()
            .expect("one query")
    }

    /// Answers many approximate top-k queries (the approx half of the
    /// micro-batching entry point). Queries shard across the worker
    /// pool like the exact batch path; each query scans only its
    /// probed lists.
    pub fn top_k_batch_approx(&self, queries: &[ApproxQuery]) -> Vec<Result<Vec<Neighbor>>> {
        self.top_k_batch_approx_costed(queries).0
    }

    /// [`QueryEngine::top_k_batch_approx`] plus the cost profile of
    /// the pass: probed lists, candidate rows scored, and the dead
    /// hits the tombstone filter removed.
    pub fn top_k_batch_approx_costed(
        &self,
        queries: &[ApproxQuery],
    ) -> (Vec<Result<Vec<Neighbor>>>, QueryCost) {
        let mut cost = QueryCost::ivf();
        cost.shards_touched = 1;
        cost.shards_resident = 1;
        let n = self.artifact.meta.n;
        let Some(index) = &self.index else {
            let answers = queries.iter().map(|_| Err(no_index_error())).collect();
            return (answers, cost);
        };
        let mut answers: Vec<Option<Result<Vec<Neighbor>>>> = Vec::with_capacity(queries.len());
        let mut work: Vec<usize> = Vec::new(); // answer slot per job
        let mut jobs: Vec<ApproxQuery> = Vec::new();
        for &(node, k, nprobe) in queries {
            if let Err(e) = self.check_node(node) {
                answers.push(Some(Err(e)));
                continue;
            }
            if k == 0 {
                answers.push(Some(Err(ServeError::InvalidQuery(
                    "k must be at least 1".into(),
                ))));
                continue;
            }
            self.counters.approx_queries.fetch_add(1, Ordering::Relaxed);
            work.push(answers.len());
            answers.push(None);
            jobs.push((node, k.min(n - 1), nprobe));
        }
        if !jobs.is_empty() {
            // Approx answers are not cached (cheap, nprobe-parameterized).
            cost.cache_misses = jobs.len() as u64;
            let mut probe_span = mvag_obs::span("serve.ivf_probe");
            probe_span.counter("queries", jobs.len() as u64);
            // One concurrent query parallelizes over its probed lists;
            // a batch parallelizes across queries instead (same policy
            // as the exact kernel: the batch is the unit of work).
            // Tombstoned rows are still resident in the index, so each
            // query over-fetches by the tombstone count and the dead
            // hits are filtered out below.
            let dead_n = self.artifact.tombstone_count();
            let search = |&(node, k, nprobe): &ApproxQuery| {
                let local = self.local(node);
                index.search(
                    &self.store,
                    self.store.norms(),
                    self.store.row(local),
                    self.store.norms()[local],
                    k + dead_n,
                    nprobe,
                    Some(node),
                    if jobs.len() == 1 {
                        self.config.threads
                    } else {
                        1
                    },
                )
            };
            let threads = self.config.threads.max(1).min(jobs.len());
            let results = if threads > 1 && jobs.len() > 1 {
                parallel::par_map(jobs.len(), threads, |j| search(&jobs[j]))
            } else {
                jobs.iter().map(search).collect()
            };
            let offset = self.artifact.meta.row_start;
            for ((slot, &(_, k, _)), (scored, stats)) in work.into_iter().zip(&jobs).zip(results) {
                self.counters.record_search(&stats);
                cost.lists_probed += stats.lists_scanned as u64;
                cost.rows_scanned += stats.rows_scanned as u64;
                probe_span.counter("lists_scanned", stats.lists_scanned as u64);
                probe_span.counter("rows_scanned", stats.rows_scanned as u64);
                cost.tombstones_masked += scored
                    .iter()
                    .filter(|s| self.is_dead_local(s.id - offset))
                    .count() as u64;
                answers[slot] = Some(Ok(scored
                    .into_iter()
                    .filter(|s| !self.is_dead_local(s.id - offset))
                    .take(k)
                    .map(|s| Neighbor {
                        node: s.id,
                        score: s.score,
                    })
                    .collect()));
            }
        }
        let answers = answers
            .into_iter()
            .map(|a| a.expect("all slots filled"))
            .collect();
        (answers, cost)
    }

    /// The per-shard half of a fanned-out *approximate* top-k: scores
    /// an external query vector against this engine's probed lists
    /// only, returning global ids plus the scan-work accounting (the
    /// caller merges and aggregates — see
    /// [`crate::router::ShardRouter`]).
    ///
    /// # Errors
    /// [`ServeError::InvalidQuery`] when no index is attached.
    pub fn top_k_for_query_approx(
        &self,
        qrow: &[f64],
        qnorm: f64,
        k: usize,
        nprobe: usize,
        exclude: Option<usize>,
    ) -> Result<(Vec<Neighbor>, IvfSearchStats)> {
        let Some(index) = &self.index else {
            return Err(no_index_error());
        };
        let (scored, stats) = index.search(
            &self.store,
            self.store.norms(),
            qrow,
            qnorm,
            k + self.artifact.tombstone_count(),
            nprobe,
            exclude,
            1, // the router owns cross-shard parallelism
        );
        let offset = self.artifact.meta.row_start;
        Ok((
            scored
                .into_iter()
                .filter(|s| !self.is_dead_local(s.id - offset))
                .take(k)
                .map(|s| Neighbor {
                    node: s.id,
                    score: s.score,
                })
                .collect(),
            stats,
        ))
    }

    /// The blocked scoring kernel: walks the embedding matrix in
    /// blocks of [`EngineConfig::block_rows`] rows and scores every
    /// query against the resident block, so a batch of queries reads
    /// the matrix once instead of once per query. Queries are sharded
    /// across the persistent worker pool (no per-batch thread spawns);
    /// each shard keeps the blocked access pattern.
    fn scan_block_topk(&self, jobs: &[(usize, usize)]) -> Vec<Vec<Neighbor>> {
        let threads = self.config.threads.max(1).min(jobs.len().max(1));
        if threads > 1 && jobs.len() > 1 {
            let chunk = jobs.len().div_ceil(threads);
            let shards: Vec<&[(usize, usize)]> = jobs.chunks(chunk).collect();
            let mut out: Vec<Vec<Neighbor>> = Vec::with_capacity(jobs.len());
            for mut shard_result in
                parallel::par_map(shards.len(), shards.len(), |s| self.scan_shard(shards[s]))
            {
                out.append(&mut shard_result);
            }
            out
        } else {
            self.scan_shard(jobs)
        }
    }

    fn scan_shard(&self, jobs: &[(usize, usize)]) -> Vec<Vec<Neighbor>> {
        let vjobs: Vec<VectorJob> = jobs
            .iter()
            .map(|&(q, k)| {
                let local = self.local(q);
                VectorJob {
                    qrow: self.store.row(local),
                    qnorm: self.store.norms()[local],
                    exclude: Some(q),
                    k,
                }
            })
            .collect();
        self.scan_vector_jobs(&vjobs)
    }

    /// Scores an external query vector against this engine's rows and
    /// returns its `k` best neighbours (global ids, best first, same
    /// ordering as [`QueryEngine::top_k_similar`]). `exclude` skips one
    /// global id — the query node itself when this engine owns it.
    ///
    /// This is the per-shard half of a fanned-out top-k: the caller
    /// (see [`crate::router::ShardRouter`]) merges the per-shard
    /// answers, so this scan stays sequential and the caller decides
    /// where the parallelism goes.
    pub fn top_k_for_query(
        &self,
        qrow: &[f64],
        qnorm: f64,
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<Neighbor> {
        self.scan_vector_jobs(&[VectorJob {
            qrow,
            qnorm,
            exclude,
            k,
        }])
        .pop()
        .expect("one job")
    }

    /// The blocked scan over this engine's local rows. Scores are
    /// bit-identical to the monolithic path: the same `dot / (norm ·
    /// norm)` on the same row data, visited in the same ascending row
    /// order.
    // The row index addresses four parallel structures (global id,
    // tombstone mask, norms, store rows); an iterator rewrite would
    // obscure that they advance in lockstep.
    #[allow(clippy::needless_range_loop)]
    fn scan_vector_jobs(&self, jobs: &[VectorJob]) -> Vec<Vec<Neighbor>> {
        let emb = &self.store;
        let norms = self.store.norms();
        let rows = self.artifact.meta.rows();
        let offset = self.artifact.meta.row_start;
        let block = self.config.block_rows.max(1);
        let mut heaps: Vec<TopKHeap> = jobs.iter().map(|j| TopKHeap::new(j.k)).collect();
        for block_start in (0..rows).step_by(block) {
            let block_end = (block_start + block).min(rows);
            for (job, heap) in jobs.iter().zip(heaps.iter_mut()) {
                for row in block_start..block_end {
                    let global = offset + row;
                    if Some(global) == job.exclude || self.is_dead_local(row) {
                        continue;
                    }
                    let denom = job.qnorm * norms[row];
                    let score = if denom > 1e-300 {
                        vecops::dot(job.qrow, emb.row(row)) / denom
                    } else {
                        0.0
                    };
                    heap.push(Neighbor {
                        node: global,
                        score,
                    });
                }
            }
        }
        heaps.into_iter().map(TopKHeap::into_sorted).collect()
    }
}

/// The error every approx entry point returns when the backend has no
/// index attached.
pub(crate) fn no_index_error() -> ServeError {
    ServeError::InvalidQuery(
        "no approximate index loaded (train with --index ivf, or serve with --index ivf to build one)"
            .into(),
    )
}

/// One scoring job against this engine's rows: an external query
/// vector, its norm, and an optional global id to skip.
struct VectorJob<'a> {
    qrow: &'a [f64],
    qnorm: f64,
    exclude: Option<usize>,
    k: usize,
}

/// Bounded worst-out collection of the best `k` neighbours under the
/// serving total order ([`mvag_index::ranks_before`] — the single
/// definition shared with the IVF search path, so exact and approx
/// results can never diverge on ordering): higher score wins; equal
/// scores prefer the smaller node id (total, deterministic order —
/// embedding scores are finite by construction). Also used by the
/// shard router to merge per-shard top-k lists: the order is total on
/// distinct node ids, so the top-k of a union equals the top-k of the
/// per-shard top-k's regardless of insertion order.
#[derive(Debug)]
pub(crate) struct TopKHeap {
    k: usize,
    /// Kept worst-first (simple insertion into a sorted Vec; `k` is
    /// request-sized — tens, not thousands — so O(k) insert is fine
    /// and beats heap constant factors at this size).
    items: Vec<Neighbor>,
}

impl TopKHeap {
    pub(crate) fn new(k: usize) -> Self {
        TopKHeap {
            k,
            items: Vec::with_capacity(k + 1),
        }
    }

    fn better(a: &Neighbor, b: &Neighbor) -> bool {
        mvag_index::ranks_before(a.score, a.node, b.score, b.node)
    }

    pub(crate) fn push(&mut self, cand: Neighbor) {
        if self.items.len() == self.k {
            // items[0] is the current worst.
            if !Self::better(&cand, &self.items[0]) {
                return;
            }
            self.items.remove(0);
        }
        let pos = self
            .items
            .iter()
            .position(|existing| Self::better(existing, &cand))
            .unwrap_or(self.items.len());
        self.items.insert(pos, cand);
    }

    pub(crate) fn into_sorted(self) -> Vec<Neighbor> {
        // Stored worst-first; answer is best-first.
        let mut v = self.items;
        v.reverse();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::TrainConfig;
    use mvag_graph::toy::toy_mvag;

    fn engine() -> QueryEngine {
        let mvag = toy_mvag(80, 2, 7);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        let artifact = Artifact::train(&mvag, &config).unwrap();
        QueryEngine::new(artifact, EngineConfig::default()).unwrap()
    }

    /// Reference top-k: full sort of all cosine scores.
    fn brute_force(e: &QueryEngine, q: usize, k: usize) -> Vec<Neighbor> {
        let emb = e.store();
        let mut all: Vec<Neighbor> = (0..e.artifact().meta.n)
            .filter(|&i| i != q)
            .map(|i| Neighbor {
                node: i,
                score: vecops::cosine(emb.row(q), emb.row(i)),
            })
            .collect();
        all.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then(a.node.cmp(&b.node))
        });
        all.truncate(k);
        all
    }

    #[test]
    fn topk_matches_brute_force() {
        let e = engine();
        for q in [0usize, 7, 41, 79] {
            let got = e.top_k_similar(q, 10).unwrap();
            let want = brute_force(&e, q, 10);
            assert_eq!(got.len(), 10);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.node, w.node, "query {q}");
                assert!((g.score - w.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn batch_matches_single_and_caches() {
        let e = engine();
        let queries: Vec<(usize, usize)> = (0..40).map(|i| (i * 2, 5)).collect();
        let batch = e.top_k_batch(&queries);
        for (q, res) in queries.iter().zip(&batch) {
            let single = e.top_k_similar(q.0, q.1).unwrap();
            assert_eq!(res.as_ref().unwrap(), &single);
        }
        let (hits, _) = e.cache_stats();
        assert!(hits >= 40, "singles after batch should hit the cache");
    }

    #[test]
    fn batch_mixes_valid_and_invalid() {
        let e = engine();
        let res = e.top_k_batch(&[(0, 3), (10_000, 3), (1, 0), (2, 3)]);
        assert!(res[0].is_ok());
        assert!(matches!(res[1], Err(ServeError::InvalidQuery(_))));
        assert!(matches!(res[2], Err(ServeError::InvalidQuery(_))));
        assert!(res[3].is_ok());
    }

    #[test]
    fn k_clamped_to_population() {
        let e = engine();
        let all = e.top_k_similar(3, 10_000).unwrap();
        assert_eq!(all.len(), e.artifact().meta.n - 1);
        // Scores are non-increasing.
        for w in all.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn cluster_of_matches_labels() {
        let e = engine();
        for node in 0..e.artifact().meta.n {
            let info = e.cluster_of(node).unwrap();
            assert_eq!(info.cluster, e.artifact().labels[node]);
            assert!(info.centroid_dist.is_finite());
        }
        assert!(e.cluster_of(99_999).is_err());
    }

    #[test]
    fn embed_batch_returns_rows() {
        let e = engine();
        let rows = e.embed_batch(&[0, 5, 9]).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], e.store().row(5).to_vec());
        assert!(e.embed_batch(&[0, 99_999]).is_err());
    }

    fn engine_with_index(nlist: usize) -> QueryEngine {
        let mvag = toy_mvag(80, 2, 7);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        let artifact = Artifact::train(&mvag, &config).unwrap();
        QueryEngine::new(
            artifact,
            EngineConfig {
                index: Some(mvag_index::IvfConfig { nlist, seed: 5 }),
                ..EngineConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn approx_full_probe_bit_identical_to_exact() {
        let e = engine_with_index(6);
        for q in [0usize, 7, 41, 79] {
            let exact = e.top_k_similar(q, 10).unwrap();
            let approx = e.top_k_approx(q, 10, e.index().unwrap().nlist()).unwrap();
            assert_eq!(exact.len(), approx.len());
            for (x, a) in exact.iter().zip(&approx) {
                assert_eq!(x.node, a.node, "query {q}");
                assert_eq!(x.score.to_bits(), a.score.to_bits(), "query {q}");
            }
        }
        // Huge nprobe clamps to nlist; zero uses the default width.
        assert_eq!(
            e.top_k_approx(3, 5, usize::MAX).unwrap(),
            e.top_k_approx(3, 5, 6).unwrap()
        );
        assert_eq!(e.top_k_approx(3, 5, 0).unwrap().len(), 5);
    }

    #[test]
    fn approx_counters_and_partial_probe_scan_less() {
        let e = engine_with_index(8);
        e.top_k_approx(10, 5, 2).unwrap();
        let stats = e.index_stats();
        assert!(stats.enabled);
        assert_eq!(stats.nlist, 8);
        assert_eq!(stats.approx_queries, 1);
        assert_eq!(stats.lists_scanned, 2);
        assert!(
            stats.rows_scanned < 79,
            "partial probe scanned {} of 79 rows",
            stats.rows_scanned
        );
        e.top_k_similar(10, 5).unwrap();
        assert_eq!(e.index_stats().exact_queries, 1);
    }

    #[test]
    fn approx_batch_mixes_valid_and_invalid() {
        let e = engine_with_index(4);
        let res = e.top_k_batch_approx(&[(0, 3, 2), (10_000, 3, 2), (1, 0, 2), (2, 3, 0)]);
        assert!(res[0].is_ok());
        assert!(matches!(res[1], Err(ServeError::InvalidQuery(_))));
        assert!(matches!(res[2], Err(ServeError::InvalidQuery(_))));
        assert!(res[3].is_ok());
    }

    #[test]
    fn approx_without_index_is_a_clean_error() {
        let e = engine();
        assert!(matches!(
            e.top_k_approx(0, 5, 1),
            Err(ServeError::InvalidQuery(_))
        ));
        assert!(!e.index_stats().enabled);
    }

    #[test]
    fn prebuilt_index_attaches_and_mismatches_are_rejected() {
        let mvag = toy_mvag(80, 2, 7);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        let artifact = Artifact::train(&mvag, &config).unwrap();
        let index = artifact
            .build_ivf(&mvag_index::IvfConfig { nlist: 5, seed: 1 })
            .unwrap();
        let e = QueryEngine::with_index(artifact.clone(), EngineConfig::default(), index.clone())
            .unwrap();
        assert_eq!(e.index().unwrap().nlist(), 5);
        // An index over a different row range must be rejected.
        let shard = artifact.shard(0, 40).unwrap();
        assert!(matches!(
            QueryEngine::with_index(shard, EngineConfig::default(), index),
            Err(ServeError::Corrupt(_))
        ));
    }

    #[test]
    fn tombstoned_nodes_are_masked() {
        let mvag = toy_mvag(80, 2, 7);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        let mut artifact = Artifact::train(&mvag, &config).unwrap();
        artifact.tombstones = vec![5, 41];
        let e = QueryEngine::new(artifact.clone(), EngineConfig::default()).unwrap();
        // Dead ids answer 404-class NotFound on every query path.
        assert!(matches!(e.cluster_of(5), Err(ServeError::NotFound(_))));
        assert!(matches!(e.query_vector(41), Err(ServeError::NotFound(_))));
        assert!(matches!(
            e.embed_batch(&[0, 41]),
            Err(ServeError::NotFound(_))
        ));
        assert!(matches!(
            e.top_k_similar(5, 3),
            Err(ServeError::NotFound(_))
        ));
        // Live nodes still answer, and dead rows never appear as
        // neighbours — the full scan returns exactly the live others.
        let all = e.top_k_similar(3, 10_000).unwrap();
        assert_eq!(all.len(), 80 - 1 - 2);
        assert!(all.iter().all(|nb| nb.node != 5 && nb.node != 41));
        // The approx path filters them too, even at full probe.
        let ivf = QueryEngine::new(
            artifact,
            EngineConfig {
                index: Some(mvag_index::IvfConfig { nlist: 4, seed: 2 }),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            ivf.top_k_approx(41, 3, usize::MAX),
            Err(ServeError::NotFound(_))
        ));
        let approx = ivf.top_k_approx(3, 79, usize::MAX).unwrap();
        assert_eq!(approx.len(), 80 - 1 - 2);
        assert!(approx.iter().all(|nb| nb.node != 5 && nb.node != 41));
        assert_eq!(all, approx, "full probe matches the masked exact scan");
    }

    #[test]
    fn topk_heap_orders_and_bounds() {
        let mut h = TopKHeap::new(3);
        for (node, score) in [(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.9), (4, -0.2)] {
            h.push(Neighbor { node, score });
        }
        let out = h.into_sorted();
        let nodes: Vec<usize> = out.iter().map(|x| x.node).collect();
        // 0.9 tie prefers smaller id.
        assert_eq!(nodes, vec![1, 3, 2]);
    }
}

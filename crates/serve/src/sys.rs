//! Minimal Linux readiness-API bindings for the evented backend.
//!
//! Direct `extern "C"` declarations against the libc the Rust standard
//! library already links — `epoll_create1`/`epoll_ctl`/`epoll_wait`,
//! `eventfd`, and `fcntl(F_SETFL, O_NONBLOCK)` — wrapped in three safe
//! types ([`Epoll`], [`EventFd`], [`set_nonblocking`]). This is the
//! entire unsafe surface of the crate (the crate root carries
//! `#![deny(unsafe_code)]`; this module opts out), kept deliberately
//! tiny: every wrapper owns its fd, translates `-1` into
//! `io::Error::last_os_error()`, and closes on drop.

#![allow(unsafe_code)]

use std::io;
use std::os::unix::io::RawFd;

/// `struct epoll_event`. The kernel ABI packs it on x86-64 (the
/// `__EPOLL_PACKED` attribute in the UAPI headers) and aligns it
/// naturally everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EpollEvent {
    /// Readiness mask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// Caller-owned token, reported back verbatim.
    pub token: u64,
}

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (half-close); surfaced so the loop
/// can reap connections that will never send another request.
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;
const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
    fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
}

fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Marks `fd` nonblocking (`fcntl F_SETFL O_NONBLOCK`), preserving the
/// other status flags.
pub(crate) fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl on a caller-owned fd with integer arguments only.
    let flags = check(unsafe { fcntl(fd, F_GETFL, 0) })?;
    check(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
    Ok(())
}

/// An owned epoll instance (level-triggered registrations only).
#[derive(Debug)]
pub(crate) struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub(crate) fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers.
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, token };
        // SAFETY: `ev` is a live, properly laid out epoll_event for
        // the duration of the call; the kernel copies it.
        check(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` for `events`, tagging readiness with `token`.
    pub(crate) fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Replaces the interest set of a registered `fd`.
    pub(crate) fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd` (best effort on close paths).
    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` for readiness, filling `events`.
    /// `EINTR` reports as zero events rather than an error.
    pub(crate) fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the kernel writes at most `events.len()` entries
        // into the caller's live slice.
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        match check(n) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: closing an fd this type exclusively owns.
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd: the cross-thread doorbell that wakes the
/// event loop out of `epoll_wait` when executor threads finish work
/// (or shutdown is requested).
#[derive(Debug)]
pub(crate) struct EventFd {
    fd: RawFd,
}

impl EventFd {
    pub(crate) fn new() -> io::Result<EventFd> {
        // SAFETY: plain syscall, no pointers.
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    pub(crate) fn as_raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Rings the doorbell. Best effort: a full counter (`EAGAIN`)
    /// already guarantees a pending wakeup.
    pub(crate) fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack value.
        unsafe { write(self.fd, (&raw const one).cast(), 8) };
    }

    /// Drains the counter so level-triggered epoll stops reporting it.
    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer.
        unsafe { read(self.fd, buf.as_mut_ptr().cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: closing an fd this type exclusively owns.
        unsafe { close(self.fd) };
    }
}

// ---------------------------------------------------------------------
// Memory mapping (out-of-core artifact serving).

const PROT_READ: i32 = 0x1;
const MAP_PRIVATE: i32 = 0x02;

/// `madvise` advice values accepted by [`Mmap::advise`]. The full
/// vocabulary is declared even though the serving paths only issue
/// RANDOM (on open) and DONTNEED (residency hints): callers choose the
/// policy, this module only names the constants.
pub(crate) const MADV_RANDOM: i32 = 1;
#[allow(dead_code)]
pub(crate) const MADV_SEQUENTIAL: i32 = 2;
#[allow(dead_code)]
pub(crate) const MADV_WILLNEED: i32 = 3;
pub(crate) const MADV_DONTNEED: i32 = 4;

extern "C" {
    fn mmap(
        addr: *mut core::ffi::c_void,
        length: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut core::ffi::c_void;
    fn munmap(addr: *mut core::ffi::c_void, length: usize) -> i32;
    fn madvise(addr: *mut core::ffi::c_void, length: usize, advice: i32) -> i32;
}

/// A read-only, private memory mapping of a whole file, unmapped on
/// drop. The RAII twin of [`Epoll`]/[`EventFd`] for the out-of-core
/// artifact path: all pointer arithmetic stays inside this type, and
/// everything above it sees only safe `&[u8]` / `&[f64]` borrows tied
/// to the map's lifetime.
#[derive(Debug)]
pub(crate) struct Mmap {
    ptr: *mut core::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE, file open
// read-only) for its whole lifetime, so shared references to it may
// cross threads freely; the raw pointer is owned, not aliased mutably.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps all of `file` read-only. Fails on empty files (a zero
    /// length `mmap` is EINVAL) and on any syscall error.
    pub(crate) fn map_file(file: &std::fs::File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        // SAFETY: NULL hint, length checked nonzero, read-only private
        // mapping of an fd the caller owns; the kernel picks the
        // address. MAP_FAILED is (void*)-1, checked below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// Length of the mapping in bytes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The mapped file as a byte slice.
    pub(crate) fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes for as long as `self` lives; the file is opened
        // read-only and mapped privately, so the contents cannot be
        // mutated behind the borrow.
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
    }

    /// Borrows `count` `f64`s starting at byte `offset`, without
    /// copying. `None` unless the range is in bounds and 8-byte
    /// aligned — the v5 codec guarantees 64-byte-aligned sections, so
    /// a miss here means a corrupt or misproduced file, never UB.
    pub(crate) fn f64_slice(&self, offset: usize, count: usize) -> Option<&[f64]> {
        let bytes = count.checked_mul(8)?;
        let end = offset.checked_add(bytes)?;
        if end > self.len {
            return None;
        }
        // SAFETY: range checked in bounds above; alignment checked
        // here; the mapping is immutable and outlives the borrow; any
        // bit pattern is a valid f64.
        let ptr = unsafe { self.ptr.cast::<u8>().add(offset) };
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<f64>()) {
            return None;
        }
        Some(unsafe { std::slice::from_raw_parts(ptr.cast::<f64>(), count) })
    }

    /// Applies `madvise` advice to the whole mapping (best effort —
    /// advice is a hint; errors are returned for observability, not
    /// correctness).
    pub(crate) fn advise(&self, advice: i32) -> io::Result<()> {
        // SAFETY: advising the exact live mapping this type owns.
        check(unsafe { madvise(self.ptr, self.len, advice) })?;
        Ok(())
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: unmapping the exact mapping this type exclusively
        // owns; no borrows can outlive self (lifetimes above).
        unsafe { munmap(self.ptr, self.len) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.add(efd.as_raw_fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent::default(); 4];
        // Nothing pending: times out empty.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        efd.wake();
        efd.wake();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].token }, 7);
        assert_ne!({ events[0].events } & EPOLLIN, 0);
        // Drained: level-triggered readiness clears.
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        // Interest can be rewritten and removed.
        epoll
            .modify(efd.as_raw_fd(), EPOLLIN | EPOLLOUT, 9)
            .unwrap();
        epoll.delete(efd.as_raw_fd()).unwrap();
    }

    #[test]
    fn mmap_reads_file_and_borrows_aligned_f64s() {
        let dir = std::env::temp_dir().join(format!("sgla-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.bin");
        let vals = [1.5f64, -2.25, 0.0, 1e300];
        let mut raw = vec![0u8; 64]; // 64 bytes of padding, then f64s
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &raw).unwrap();
        let map = Mmap::map_file(&std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(map.len(), raw.len());
        assert_eq!(map.as_slice(), &raw[..]);
        let got = map.f64_slice(64, 4).unwrap();
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Out of bounds and misaligned borrows are refused, not UB.
        assert!(map.f64_slice(64, 5).is_none());
        assert!(map.f64_slice(61, 1).is_none());
        assert!(map.f64_slice(usize::MAX, 1).is_none());
        // Advice is accepted on a live mapping.
        map.advise(MADV_RANDOM).unwrap();
        map.advise(MADV_WILLNEED).unwrap();
        map.advise(MADV_SEQUENTIAL).unwrap();
        map.advise(MADV_DONTNEED).unwrap();
        drop(map);
        // Empty files cannot be mapped.
        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        assert!(Mmap::map_file(&std::fs::File::open(&empty).unwrap()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn set_nonblocking_applies() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        use std::os::unix::io::AsRawFd;
        set_nonblocking(listener.as_raw_fd()).unwrap();
        // Accept on an idle nonblocking listener must not hang.
        let err = listener.accept().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}

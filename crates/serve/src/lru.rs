//! A fixed-capacity O(1) LRU cache for query results.
//!
//! Hand-rolled (no external deps): a slot arena doubly linked through
//! indices plus a `HashMap` from key to slot. `get` promotes to
//! most-recently-used; `insert` evicts the least-recently-used entry
//! when full.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Fixed-capacity least-recently-used cache.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries. A capacity
    /// of 0 disables caching (every lookup misses, inserts are no-ops).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.attach_front(idx);
                Some(&self.slots[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts or replaces `key`, evicting the least-recently-used
    /// entry if at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        let idx = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Reuse the LRU slot.
            let idx = self.tail;
            debug_assert_ne!(idx, NIL, "capacity > 0 but no tail");
            self.detach(idx);
            self.map.remove(&self.slots[idx].key);
            self.slots[idx].key = key.clone();
            self.slots[idx].value = value;
            idx
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_promotion() {
        let mut c: LruCache<u32, String> = LruCache::new(2);
        assert!(c.get(&1).is_none());
        c.insert(1, "one".into());
        c.insert(2, "two".into());
        assert_eq!(c.get(&1).unwrap(), "one"); // 1 now MRU
        c.insert(3, "three".into()); // evicts 2
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&1).unwrap(), "one");
        assert_eq!(c.get(&3).unwrap(), "three");
        let (hits, misses) = c.stats();
        assert_eq!(hits, 3);
        assert_eq!(misses, 2);
    }

    #[test]
    fn replace_updates_value() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(*c.get(&1).unwrap(), 11);
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert!(c.get(&1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn exhaustive_small_trace_matches_reference() {
        // Cross-check against a naive Vec-based LRU on a pseudo-random
        // trace of gets/inserts.
        let cap = 4;
        let mut fast: LruCache<u8, u64> = LruCache::new(cap);
        let mut slow: Vec<(u8, u64)> = Vec::new(); // front = MRU
        let mut x: u64 = 0x12345;
        for step in 0..2000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 9) as u8;
            if x & 1 == 0 {
                let got = fast.get(&key).copied();
                let pos = slow.iter().position(|&(k, _)| k == key);
                let want = pos.map(|p| {
                    let e = slow.remove(p);
                    let v = e.1;
                    slow.insert(0, e);
                    v
                });
                assert_eq!(got, want, "step {step} get {key}");
            } else {
                fast.insert(key, step);
                if let Some(p) = slow.iter().position(|&(k, _)| k == key) {
                    slow.remove(p);
                } else if slow.len() == cap {
                    slow.pop();
                }
                slow.insert(0, (key, step));
            }
        }
        assert_eq!(fast.len(), slow.len());
    }
}

//! Per-endpoint latency/QPS counters for the HTTP front end.
//!
//! Lock-free on the hot path: each recorded request does one atomic
//! add on a request counter and one on a log₂-bucketed latency
//! histogram slot. Quantiles (p50/p99) are read from the histogram by
//! linear interpolation inside the winning bucket, which is accurate
//! to well under a factor of 2 — plenty for dashboards and the serve
//! benchmark's regression tracking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of log₂ latency buckets: bucket `i` holds durations in
/// `[2^i, 2^{i+1})` microseconds; the last bucket is open-ended
/// (≥ ~34 s — nothing a healthy endpoint produces).
const BUCKETS: usize = 36;

/// Counters for one endpoint.
#[derive(Debug)]
pub struct EndpointMetrics {
    /// Endpoint label (e.g. `"topk"`).
    pub name: &'static str,
    requests: AtomicU64,
    errors: AtomicU64,
    total_micros: AtomicU64,
    histogram: [AtomicU64; BUCKETS],
}

impl EndpointMetrics {
    fn new(name: &'static str) -> Self {
        EndpointMetrics {
            name,
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
            histogram: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_of(micros: u64) -> usize {
        ((64 - micros.max(1).leading_zeros()) as usize - 1).min(BUCKETS - 1)
    }

    /// Records one completed request.
    pub fn record(&self, latency: Duration, ok: bool) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.histogram[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the counters.
    pub fn snapshot(&self) -> EndpointSnapshot {
        let histogram: Vec<u64> = self
            .histogram
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        EndpointSnapshot {
            name: self.name,
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
            histogram,
        }
    }
}

/// Point-in-time copy of one endpoint's counters.
#[derive(Debug, Clone)]
pub struct EndpointSnapshot {
    /// Endpoint label.
    pub name: &'static str,
    /// Requests served (including errors).
    pub requests: u64,
    /// Requests that returned a non-2xx status.
    pub errors: u64,
    /// Sum of request latencies in microseconds.
    pub total_micros: u64,
    /// Log₂ latency histogram (microsecond buckets).
    pub histogram: Vec<u64>,
}

impl EndpointSnapshot {
    /// Mean latency in microseconds.
    pub fn mean_micros(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.requests as f64
        }
    }

    /// Approximate latency quantile (`q` in `[0, 1]`) in microseconds,
    /// by linear interpolation within the winning histogram bucket.
    pub fn quantile_micros(&self, q: f64) -> f64 {
        let total: u64 = self.histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.histogram.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if seen + count >= rank {
                let lo = (1u64 << i) as f64;
                let frac = (rank - seen) as f64 / count as f64;
                return lo + frac * lo; // bucket spans [2^i, 2^{i+1})
            }
            seen += count;
        }
        (1u64 << (BUCKETS - 1)) as f64
    }
}

/// All endpoints served by the front end, plus server-wide counters.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Per-endpoint counters.
    pub endpoints: Vec<EndpointMetrics>,
    started: Instant,
}

/// Endpoint labels, in registry order. `other` collects requests that
/// matched no route (404s, wrong methods).
pub const ENDPOINTS: [&str; 7] = [
    "healthz", "stats", "artifact", "cluster", "topk", "embed", "other",
];

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Fresh registry with one slot per endpoint in [`ENDPOINTS`].
    pub fn new() -> Self {
        MetricsRegistry {
            endpoints: ENDPOINTS.iter().map(|n| EndpointMetrics::new(n)).collect(),
            started: Instant::now(),
        }
    }

    /// The counters for an endpoint label, if known.
    pub fn endpoint(&self, name: &str) -> Option<&EndpointMetrics> {
        self.endpoints.iter().find(|e| e.name == name)
    }

    /// Seconds since the registry (≈ server) started.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Total requests across endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|e| e.requests.load(Ordering::Relaxed))
            .sum()
    }

    /// Overall queries per second since start.
    pub fn qps(&self) -> f64 {
        let secs = self.uptime_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_requests() as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(EndpointMetrics::bucket_of(0), 0);
        assert_eq!(EndpointMetrics::bucket_of(1), 0);
        assert_eq!(EndpointMetrics::bucket_of(2), 1);
        assert_eq!(EndpointMetrics::bucket_of(3), 1);
        assert_eq!(EndpointMetrics::bucket_of(4), 2);
        assert_eq!(EndpointMetrics::bucket_of(1024), 10);
        assert_eq!(EndpointMetrics::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bracket_recorded_latency() {
        let m = EndpointMetrics::new("x");
        for _ in 0..100 {
            m.record(Duration::from_micros(100), true);
        }
        m.record(Duration::from_micros(90_000), false);
        let snap = m.snapshot();
        assert_eq!(snap.requests, 101);
        assert_eq!(snap.errors, 1);
        let p50 = snap.quantile_micros(0.5);
        assert!((64.0..256.0).contains(&p50), "p50 = {p50}");
        let p999 = snap.quantile_micros(0.999);
        assert!(p999 >= 65_536.0, "p99.9 = {p999}");
        assert!(snap.mean_micros() > 100.0);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let m = EndpointMetrics::new("x");
        let snap = m.snapshot();
        assert_eq!(snap.quantile_micros(0.5), 0.0);
        assert_eq!(snap.mean_micros(), 0.0);
    }

    #[test]
    fn registry_lookup_and_totals() {
        let r = MetricsRegistry::new();
        r.endpoint("topk")
            .unwrap()
            .record(Duration::from_micros(5), true);
        r.endpoint("cluster")
            .unwrap()
            .record(Duration::from_micros(5), true);
        assert!(r.endpoint("nope").is_none());
        assert_eq!(r.total_requests(), 2);
    }
}

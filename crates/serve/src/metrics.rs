//! Per-endpoint latency/QPS counters for the HTTP front end.
//!
//! Lock-free on the hot path: each recorded request does one atomic
//! add on a request counter and one on a log₂-bucketed latency
//! histogram slot. Quantiles (p50/p99) are read from the histogram by
//! linear interpolation inside the winning bucket, which is accurate
//! to well under a factor of 2 — plenty for dashboards and the serve
//! benchmark's regression tracking.
//!
//! Two read modes over the same counters:
//!
//! * **cumulative** — what `/metrics` (Prometheus text format) and the
//!   plain `/stats` endpoint report; counters only ever grow.
//! * **reset-on-read deltas** — `/stats?reset=true` reports activity
//!   *since the previous reset-read* ([`MetricsRegistry::delta_snapshots`]):
//!   the registry remembers the last-read snapshot as a baseline and
//!   subtracts, so scrapers without their own rate() machinery get
//!   per-window numbers while the cumulative view stays intact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of log₂ latency buckets: bucket `i` holds durations in
/// `[2^i, 2^{i+1})` microseconds; the last bucket is open-ended
/// (≥ ~34 s — nothing a healthy endpoint produces).
const BUCKETS: usize = 36;

/// Counters for one endpoint.
#[derive(Debug)]
pub struct EndpointMetrics {
    /// Endpoint label (e.g. `"topk"`).
    pub name: &'static str,
    requests: AtomicU64,
    errors: AtomicU64,
    total_micros: AtomicU64,
    histogram: [AtomicU64; BUCKETS],
}

impl EndpointMetrics {
    fn new(name: &'static str) -> Self {
        EndpointMetrics {
            name,
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
            histogram: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_of(micros: u64) -> usize {
        ((64 - micros.max(1).leading_zeros()) as usize - 1).min(BUCKETS - 1)
    }

    /// Records one completed request.
    pub fn record(&self, latency: Duration, ok: bool) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.histogram[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the counters.
    pub fn snapshot(&self) -> EndpointSnapshot {
        let histogram: Vec<u64> = self
            .histogram
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        EndpointSnapshot {
            name: self.name,
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
            histogram,
        }
    }
}

/// Point-in-time copy of one endpoint's counters.
#[derive(Debug, Clone)]
pub struct EndpointSnapshot {
    /// Endpoint label.
    pub name: &'static str,
    /// Requests served (including errors).
    pub requests: u64,
    /// Requests that returned a non-2xx status.
    pub errors: u64,
    /// Sum of request latencies in microseconds.
    pub total_micros: u64,
    /// Log₂ latency histogram (microsecond buckets).
    pub histogram: Vec<u64>,
}

impl EndpointSnapshot {
    /// Mean latency in microseconds.
    pub fn mean_micros(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.requests as f64
        }
    }

    /// The counters accumulated since `baseline` was taken
    /// (element-wise saturating subtraction — a fresh baseline of
    /// zeros yields the cumulative view).
    pub fn delta_since(&self, baseline: &EndpointSnapshot) -> EndpointSnapshot {
        EndpointSnapshot {
            name: self.name,
            requests: self.requests.saturating_sub(baseline.requests),
            errors: self.errors.saturating_sub(baseline.errors),
            total_micros: self.total_micros.saturating_sub(baseline.total_micros),
            histogram: self
                .histogram
                .iter()
                .zip(&baseline.histogram)
                .map(|(c, b)| c.saturating_sub(*b))
                .collect(),
        }
    }

    /// Approximate latency quantile (`q` in `[0, 1]`) in microseconds,
    /// by linear interpolation within the winning histogram bucket.
    pub fn quantile_micros(&self, q: f64) -> f64 {
        let total: u64 = self.histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.histogram.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if seen + count >= rank {
                let lo = (1u64 << i) as f64;
                let frac = (rank - seen) as f64 / count as f64;
                return lo + frac * lo; // bucket spans [2^i, 2^{i+1})
            }
            seen += count;
        }
        (1u64 << (BUCKETS - 1)) as f64
    }
}

/// All endpoints served by the front end, plus server-wide counters.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Per-endpoint counters.
    pub endpoints: Vec<EndpointMetrics>,
    started: Instant,
    /// Baseline of the last reset-read (`/stats?reset=true`): the
    /// snapshots handed out then, plus when. Cumulative atomics are
    /// never zeroed, so `/metrics` keeps monotone counters while
    /// delta reads subtract against this.
    baseline: Mutex<(Vec<EndpointSnapshot>, Instant)>,
}

/// Endpoint labels, in registry order. `traces` covers both
/// `/traces` and `/traces/slow`; `debug` covers the `/debug/*`
/// operator endpoints (slow-query log, live SLO/threshold tuning);
/// `other` collects requests that matched no route (404s, wrong
/// methods).
pub const ENDPOINTS: [&str; 13] = [
    "healthz", "health", "stats", "metrics", "artifact", "cluster", "topk", "embed", "reload",
    "traces", "version", "debug", "other",
];

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Fresh registry with one slot per endpoint in [`ENDPOINTS`].
    pub fn new() -> Self {
        let endpoints: Vec<EndpointMetrics> =
            ENDPOINTS.iter().map(|n| EndpointMetrics::new(n)).collect();
        let zero = endpoints.iter().map(|e| e.snapshot()).collect();
        MetricsRegistry {
            endpoints,
            started: Instant::now(),
            baseline: Mutex::new((zero, Instant::now())),
        }
    }

    /// Cumulative snapshots of every endpoint, in registry order.
    pub fn snapshots(&self) -> Vec<EndpointSnapshot> {
        self.endpoints.iter().map(|e| e.snapshot()).collect()
    }

    /// Reset-on-read: per-endpoint deltas since the previous call
    /// (or since start, for the first), plus the window length in
    /// seconds. Advances the baseline — the cumulative counters
    /// themselves are untouched.
    pub fn delta_snapshots(&self) -> (Vec<EndpointSnapshot>, f64) {
        // Snapshot *inside* the baseline lock: two concurrent
        // reset-reads must see disjoint, gap-free windows (a snapshot
        // taken outside could be older than the baseline another
        // reader just installed, zeroing its whole window).
        let mut guard = self.baseline.lock().expect("metrics baseline lock");
        let current = self.snapshots();
        let (prev, since) = &mut *guard;
        let window = since.elapsed().as_secs_f64();
        let delta = current
            .iter()
            .zip(prev.iter())
            .map(|(c, p)| c.delta_since(p))
            .collect();
        *prev = current;
        *since = Instant::now();
        (delta, window)
    }

    /// Renders the endpoint counters in the Prometheus text exposition
    /// format (cumulative; the log₂ histogram becomes a classic
    /// `_bucket{le=...}` series). The caller appends its own gauges
    /// (cache, shards, index work) before serving the page.
    pub fn render_prometheus(&self, out: &mut String) {
        use std::fmt::Write;
        let snaps = self.snapshots();
        out.push_str("# HELP sgla_requests_total Requests served per endpoint.\n");
        out.push_str("# TYPE sgla_requests_total counter\n");
        for s in &snaps {
            let _ = writeln!(
                out,
                "sgla_requests_total{{endpoint=\"{}\"}} {}",
                s.name, s.requests
            );
        }
        out.push_str("# HELP sgla_request_errors_total Non-2xx responses per endpoint.\n");
        out.push_str("# TYPE sgla_request_errors_total counter\n");
        for s in &snaps {
            let _ = writeln!(
                out,
                "sgla_request_errors_total{{endpoint=\"{}\"}} {}",
                s.name, s.errors
            );
        }
        out.push_str(
            "# HELP sgla_request_latency_us Request latency per endpoint (microseconds).\n",
        );
        out.push_str("# TYPE sgla_request_latency_us histogram\n");
        for s in &snaps {
            let mut cumulative = 0u64;
            for (i, &count) in s.histogram.iter().enumerate() {
                cumulative += count;
                if count == 0 && i + 1 != s.histogram.len() {
                    continue; // keep the page small: emit touched buckets + the tail
                }
                let _ = writeln!(
                    out,
                    "sgla_request_latency_us_bucket{{endpoint=\"{}\",le=\"{}\"}} {cumulative}",
                    s.name,
                    1u128 << (i + 1)
                );
            }
            let _ = writeln!(
                out,
                "sgla_request_latency_us_bucket{{endpoint=\"{}\",le=\"+Inf\"}} {cumulative}",
                s.name
            );
            let _ = writeln!(
                out,
                "sgla_request_latency_us_sum{{endpoint=\"{}\"}} {}",
                s.name, s.total_micros
            );
            let _ = writeln!(
                out,
                "sgla_request_latency_us_count{{endpoint=\"{}\"}} {}",
                s.name, s.requests
            );
        }
        out.push_str("# HELP sgla_uptime_seconds Seconds since the server started.\n");
        out.push_str("# TYPE sgla_uptime_seconds gauge\n");
        let _ = writeln!(out, "sgla_uptime_seconds {}", self.uptime_secs());
    }

    /// The counters for an endpoint label, if known.
    pub fn endpoint(&self, name: &str) -> Option<&EndpointMetrics> {
        self.endpoints.iter().find(|e| e.name == name)
    }

    /// Seconds since the registry (≈ server) started.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Total requests across endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|e| e.requests.load(Ordering::Relaxed))
            .sum()
    }

    /// Overall queries per second since start.
    pub fn qps(&self) -> f64 {
        let secs = self.uptime_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_requests() as f64 / secs
        }
    }
}

/// Connection-level counters shared by both transport backends:
/// accepts, currently-open connections, idle-timeout reaps, shed
/// (503-at-capacity) closes, and read/write buffer high-water marks.
/// All atomics, all relaxed — the evented loop touches these on every
/// accept/close and must not synchronize with anything.
#[derive(Debug)]
pub struct ConnGauges {
    accepts: AtomicU64,
    open: AtomicU64,
    timeouts: AtomicU64,
    shed: AtomicU64,
    read_buf_hwm: AtomicU64,
    write_buf_hwm: AtomicU64,
}

/// A point-in-time copy of [`ConnGauges`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnSnapshot {
    /// Connections currently open (accepted and not yet closed).
    pub open: u64,
    /// Total connections accepted since start.
    pub accepts: u64,
    /// Connections reaped by the idle/slowloris timeout.
    pub timeouts: u64,
    /// Connections shed with a 503 at the connection cap.
    pub shed: u64,
    /// Largest per-connection read buffer observed (bytes).
    pub read_buf_hwm: u64,
    /// Largest per-connection staged write buffer observed (bytes).
    pub write_buf_hwm: u64,
}

impl ConnGauges {
    pub(crate) fn new() -> ConnGauges {
        ConnGauges {
            accepts: AtomicU64::new(0),
            open: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            read_buf_hwm: AtomicU64::new(0),
            write_buf_hwm: AtomicU64::new(0),
        }
    }

    /// A connection was accepted (counted even if immediately shed).
    pub(crate) fn accepted(&self) {
        self.accepts.fetch_add(1, Ordering::Relaxed);
    }

    /// An accepted connection entered service.
    pub(crate) fn opened(&self) {
        self.open.fetch_add(1, Ordering::Relaxed);
    }

    /// An in-service connection closed (any reason).
    pub(crate) fn closed(&self) {
        self.open.fetch_sub(1, Ordering::Relaxed);
    }

    /// A connection was reaped by the idle timeout.
    pub(crate) fn timed_out(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was refused with a 503 at the cap.
    pub(crate) fn shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    fn raise_hwm(slot: &AtomicU64, observed: u64) {
        let mut current = slot.load(Ordering::Relaxed);
        while observed > current {
            match slot.compare_exchange_weak(
                current,
                observed,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => current = now,
            }
        }
    }

    /// Folds a read-buffer length into the high-water mark.
    pub(crate) fn observe_read_buf(&self, bytes: usize) {
        Self::raise_hwm(&self.read_buf_hwm, bytes as u64);
    }

    /// Folds a staged write-buffer length into the high-water mark.
    pub(crate) fn observe_write_buf(&self, bytes: usize) {
        Self::raise_hwm(&self.write_buf_hwm, bytes as u64);
    }

    /// A consistent-enough copy of the counters.
    pub fn snapshot(&self) -> ConnSnapshot {
        ConnSnapshot {
            open: self.open.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            read_buf_hwm: self.read_buf_hwm.load(Ordering::Relaxed),
            write_buf_hwm: self.write_buf_hwm.load(Ordering::Relaxed),
        }
    }

    /// Appends the connection gauges/counters to a Prometheus text
    /// page (every `sgla_conn_*` family carries `# HELP` + `# TYPE`,
    /// as [`validate_prometheus`] requires).
    pub fn render_prometheus(&self, out: &mut String) {
        use std::fmt::Write;
        let s = self.snapshot();
        out.push_str("# HELP sgla_conn_open Connections currently open.\n");
        out.push_str("# TYPE sgla_conn_open gauge\n");
        let _ = writeln!(out, "sgla_conn_open {}", s.open);
        out.push_str("# HELP sgla_conn_accepts_total Connections accepted since start.\n");
        out.push_str("# TYPE sgla_conn_accepts_total counter\n");
        let _ = writeln!(out, "sgla_conn_accepts_total {}", s.accepts);
        out.push_str("# HELP sgla_conn_timeouts_total Connections reaped by the idle timeout.\n");
        out.push_str("# TYPE sgla_conn_timeouts_total counter\n");
        let _ = writeln!(out, "sgla_conn_timeouts_total {}", s.timeouts);
        out.push_str(
            "# HELP sgla_conn_shed_total Connections shed with a 503 at the connection cap.\n",
        );
        out.push_str("# TYPE sgla_conn_shed_total counter\n");
        let _ = writeln!(out, "sgla_conn_shed_total {}", s.shed);
        out.push_str(
            "# HELP sgla_conn_read_buf_hwm_bytes Largest per-connection read buffer observed.\n",
        );
        out.push_str("# TYPE sgla_conn_read_buf_hwm_bytes gauge\n");
        let _ = writeln!(out, "sgla_conn_read_buf_hwm_bytes {}", s.read_buf_hwm);
        out.push_str(
            "# HELP sgla_conn_write_buf_hwm_bytes Largest per-connection staged write buffer \
             observed.\n",
        );
        out.push_str("# TYPE sgla_conn_write_buf_hwm_bytes gauge\n");
        let _ = writeln!(out, "sgla_conn_write_buf_hwm_bytes {}", s.write_buf_hwm);
    }
}

/// Appends the pipeline-stage duration histograms collected by
/// `mvag_obs` (one `sgla_stage_duration_us{stage=...}` series per
/// distinct span name) and the worker-pool gauges from the process
/// pool to a Prometheus text page. Stage counters are cumulative
/// since process start and only grow while tracing is enabled.
pub fn render_observability(out: &mut String) {
    use std::fmt::Write;
    let stages = mvag_obs::stage_snapshot();
    out.push_str(
        "# HELP sgla_stage_duration_us Duration of pipeline stages (training phases and \
         serve request stages), microseconds.\n",
    );
    out.push_str("# TYPE sgla_stage_duration_us histogram\n");
    for s in &stages {
        let mut cumulative = 0u64;
        for (i, &count) in s.buckets.iter().enumerate() {
            cumulative += count;
            if count == 0 && i + 1 != s.buckets.len() {
                continue; // same compaction as the endpoint histograms
            }
            let _ = writeln!(
                out,
                "sgla_stage_duration_us_bucket{{stage=\"{}\",le=\"{}\"}} {cumulative}",
                s.name,
                1u128 << (i + 1)
            );
        }
        let _ = writeln!(
            out,
            "sgla_stage_duration_us_bucket{{stage=\"{}\",le=\"+Inf\"}} {cumulative}",
            s.name
        );
        let _ = writeln!(
            out,
            "sgla_stage_duration_us_sum{{stage=\"{}\"}} {}",
            s.name, s.sum_us
        );
        let _ = writeln!(
            out,
            "sgla_stage_duration_us_count{{stage=\"{}\"}} {}",
            s.name, s.count
        );
    }
    let pool = mvag_sparse::pool::WorkerPool::global().stats();
    out.push_str("# HELP sgla_pool_threads Persistent worker-pool threads (resolved size).\n");
    out.push_str("# TYPE sgla_pool_threads gauge\n");
    let _ = writeln!(out, "sgla_pool_threads {}", pool.threads);
    out.push_str("# HELP sgla_pool_jobs_total Broadcasts dispatched to the worker pool.\n");
    out.push_str("# TYPE sgla_pool_jobs_total counter\n");
    let _ = writeln!(out, "sgla_pool_jobs_total {}", pool.jobs);
    out.push_str(
        "# HELP sgla_pool_inline_jobs_total Broadcasts run inline (reentrant or single-thread).\n",
    );
    out.push_str("# TYPE sgla_pool_inline_jobs_total counter\n");
    let _ = writeln!(out, "sgla_pool_inline_jobs_total {}", pool.inline_jobs);
    out.push_str(
        "# HELP sgla_pool_dispatch_wait_seconds_total Time the dispatching thread spent \
         waiting for workers to pick up broadcasts.\n",
    );
    out.push_str("# TYPE sgla_pool_dispatch_wait_seconds_total counter\n");
    let _ = writeln!(
        out,
        "sgla_pool_dispatch_wait_seconds_total {}",
        pool.dispatch_wait_ns as f64 / 1e9
    );
    out.push_str("# HELP sgla_pool_parks_total Times a pool worker parked on the condvar.\n");
    out.push_str("# TYPE sgla_pool_parks_total counter\n");
    let _ = writeln!(out, "sgla_pool_parks_total {}", pool.parks);
    out.push_str("# HELP sgla_pool_unparks_total Times a parked pool worker was woken.\n");
    out.push_str("# TYPE sgla_pool_unparks_total counter\n");
    let _ = writeln!(out, "sgla_pool_unparks_total {}", pool.unparks);
}

/// Validates a Prometheus text-exposition page:
///
/// * every sample's metric family is preceded by a `# TYPE` line;
/// * histogram `_bucket` series have strictly increasing `le` bounds
///   with non-decreasing cumulative counts, end in `le="+Inf"`, and
///   the `+Inf` count equals the family's `_count` sample;
/// * every `sgla_stage_*`, `sgla_pool_*`, and `sgla_conn_*` family
///   carries a `# HELP`.
///
/// Shared by the e2e conformance test and the serve benchmark's
/// scrape-and-validate step.
///
/// # Errors
/// A human-readable description of the first violation found.
pub fn validate_prometheus(page: &str) -> std::result::Result<(), String> {
    use std::collections::{BTreeMap, HashMap, HashSet};
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashSet<String> = HashSet::new();
    // (family, labels-without-le) → ordered (le, cumulative count).
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: HashMap<(String, String), f64> = HashMap::new();
    for (lineno, line) in page.lines().enumerate() {
        let where_ = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                return Err(where_("malformed # TYPE line".into()));
            };
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some(name) = rest.split_whitespace().next() else {
                return Err(where_("malformed # HELP line".into()));
            };
            helps.insert(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // arbitrary comment
        }
        // Sample: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| where_("sample line without a value".into()))?;
        let value: f64 = value
            .parse()
            .map_err(|_| where_(format!("unparsable sample value '{value}'")))?;
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| where_("unterminated label set".into()))?;
                (n, labels)
            }
            None => (name_labels, ""),
        };
        // Resolve the family: histogram sample suffixes collapse.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                name.strip_suffix(suffix)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(name);
        if !types.contains_key(family) {
            return Err(where_(format!("sample '{name}' has no preceding # TYPE")));
        }
        let base_labels: String = labels
            .split(',')
            .filter(|l| !l.starts_with("le=") && !l.is_empty())
            .collect::<Vec<_>>()
            .join(",");
        let key = (family.to_string(), base_labels);
        if name.ends_with("_bucket") && types.get(family).map(String::as_str) == Some("histogram") {
            let le_raw = labels
                .split(',')
                .find_map(|l| l.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"')))
                .ok_or_else(|| where_(format!("bucket sample '{name}' without le label")))?;
            let le = if le_raw == "+Inf" {
                f64::INFINITY
            } else {
                le_raw
                    .parse()
                    .map_err(|_| where_(format!("unparsable le bound '{le_raw}'")))?
            };
            buckets.entry(key).or_default().push((le, value));
        } else if name.ends_with("_count")
            && types.get(family).map(String::as_str) == Some("histogram")
        {
            counts.insert(key, value);
        }
    }
    for ((family, labels), series) in &buckets {
        let label = if labels.is_empty() {
            family.clone()
        } else {
            format!("{family}{{{labels}}}")
        };
        for pair in series.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(format!("{label}: le bounds not increasing"));
            }
            if pair[1].1 < pair[0].1 {
                return Err(format!("{label}: bucket counts not cumulative"));
            }
        }
        let Some(&(last_le, last_count)) = series.last() else {
            continue;
        };
        if !last_le.is_infinite() {
            return Err(format!("{label}: histogram missing le=\"+Inf\" bucket"));
        }
        match counts.get(&(family.clone(), labels.clone())) {
            Some(&count) if count == last_count => {}
            Some(&count) => {
                return Err(format!(
                    "{label}: +Inf bucket {last_count} != _count {count}"
                ))
            }
            None => return Err(format!("{label}: histogram without a _count sample")),
        }
    }
    for family in types.keys() {
        if (family.starts_with("sgla_stage_")
            || family.starts_with("sgla_pool_")
            || family.starts_with("sgla_conn_")
            || family.starts_with("sgla_slow_query_")
            || family.starts_with("sgla_slo_")
            || family.starts_with("sgla_compact_")
            || family.starts_with("sgla_store_"))
            && !helps.contains(family)
        {
            return Err(format!("{family}: observability family without # HELP"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(EndpointMetrics::bucket_of(0), 0);
        assert_eq!(EndpointMetrics::bucket_of(1), 0);
        assert_eq!(EndpointMetrics::bucket_of(2), 1);
        assert_eq!(EndpointMetrics::bucket_of(3), 1);
        assert_eq!(EndpointMetrics::bucket_of(4), 2);
        assert_eq!(EndpointMetrics::bucket_of(1024), 10);
        assert_eq!(EndpointMetrics::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bracket_recorded_latency() {
        let m = EndpointMetrics::new("x");
        for _ in 0..100 {
            m.record(Duration::from_micros(100), true);
        }
        m.record(Duration::from_micros(90_000), false);
        let snap = m.snapshot();
        assert_eq!(snap.requests, 101);
        assert_eq!(snap.errors, 1);
        let p50 = snap.quantile_micros(0.5);
        assert!((64.0..256.0).contains(&p50), "p50 = {p50}");
        let p999 = snap.quantile_micros(0.999);
        assert!(p999 >= 65_536.0, "p99.9 = {p999}");
        assert!(snap.mean_micros() > 100.0);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let m = EndpointMetrics::new("x");
        let snap = m.snapshot();
        assert_eq!(snap.quantile_micros(0.5), 0.0);
        assert_eq!(snap.mean_micros(), 0.0);
    }

    #[test]
    fn registry_lookup_and_totals() {
        let r = MetricsRegistry::new();
        r.endpoint("topk")
            .unwrap()
            .record(Duration::from_micros(5), true);
        r.endpoint("cluster")
            .unwrap()
            .record(Duration::from_micros(5), true);
        assert!(r.endpoint("nope").is_none());
        assert_eq!(r.total_requests(), 2);
    }

    #[test]
    fn delta_snapshots_reset_on_read_without_losing_totals() {
        let r = MetricsRegistry::new();
        let topk = r.endpoint("topk").unwrap();
        topk.record(Duration::from_micros(10), true);
        topk.record(Duration::from_micros(10), false);
        let (d1, w1) = r.delta_snapshots();
        let topk_d1 = d1.iter().find(|s| s.name == "topk").unwrap();
        assert_eq!(topk_d1.requests, 2);
        assert_eq!(topk_d1.errors, 1);
        assert!(w1 >= 0.0);
        // Nothing since the reset: the next delta is empty...
        let (d2, _) = r.delta_snapshots();
        assert_eq!(d2.iter().find(|s| s.name == "topk").unwrap().requests, 0);
        // ...one more request shows up as exactly one...
        topk.record(Duration::from_micros(10), true);
        let (d3, _) = r.delta_snapshots();
        let topk_d3 = d3.iter().find(|s| s.name == "topk").unwrap();
        assert_eq!(topk_d3.requests, 1);
        assert_eq!(topk_d3.errors, 0);
        assert_eq!(topk_d3.quantile_micros(0.5), 16.0, "delta histograms work");
        // ...and the cumulative view never lost anything.
        assert_eq!(r.total_requests(), 3);
    }

    #[test]
    fn prometheus_rendering_has_counters_and_histogram() {
        let r = MetricsRegistry::new();
        r.endpoint("topk")
            .unwrap()
            .record(Duration::from_micros(100), true);
        let mut page = String::new();
        r.render_prometheus(&mut page);
        assert!(page.contains("# TYPE sgla_requests_total counter"));
        assert!(page.contains("sgla_requests_total{endpoint=\"topk\"} 1"));
        assert!(page.contains("sgla_request_latency_us_bucket{endpoint=\"topk\",le=\"128\"} 1"));
        assert!(page.contains("sgla_request_latency_us_bucket{endpoint=\"topk\",le=\"+Inf\"} 1"));
        assert!(page.contains("sgla_request_latency_us_sum{endpoint=\"topk\"} 100"));
        assert!(page.contains("sgla_uptime_seconds"));
    }

    #[test]
    fn rendered_page_passes_validation() {
        let r = MetricsRegistry::new();
        r.endpoint("topk")
            .unwrap()
            .record(Duration::from_micros(100), true);
        r.endpoint("embed")
            .unwrap()
            .record(Duration::from_micros(7), false);
        let mut page = String::new();
        r.render_prometheus(&mut page);
        render_observability(&mut page);
        validate_prometheus(&page).unwrap();
        assert!(page.contains("# HELP sgla_pool_threads"));
        assert!(page.contains("sgla_pool_threads "));
    }

    #[test]
    fn validator_rejects_violations() {
        // Sample before its TYPE line.
        let page = "sgla_x_total 1\n# TYPE sgla_x_total counter\n";
        assert!(validate_prometheus(page).unwrap_err().contains("# TYPE"));
        // Non-cumulative buckets.
        let page = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
                    h_count 5\nh_sum 9\n";
        assert!(validate_prometheus(page)
            .unwrap_err()
            .contains("cumulative"));
        // +Inf bucket disagrees with _count.
        let page = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_count 6\nh_sum 9\n";
        assert!(validate_prometheus(page).unwrap_err().contains("_count"));
        // Missing +Inf bucket entirely.
        let page = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\nh_sum 9\n";
        assert!(validate_prometheus(page).unwrap_err().contains("+Inf"));
        // Observability family without HELP.
        let page = "# TYPE sgla_pool_threads gauge\nsgla_pool_threads 4\n";
        assert!(validate_prometheus(page).unwrap_err().contains("# HELP"));
    }
}

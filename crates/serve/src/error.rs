//! Error type for the serving subsystem.

use std::fmt;

/// Errors raised by artifact persistence, the query engine, and the
/// HTTP front end.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem or socket I/O failed.
    Io(std::io::Error),
    /// An artifact failed structural validation while decoding: bad
    /// magic, unsupported version, truncation, or checksum mismatch.
    Corrupt(String),
    /// A query referenced a node/cluster outside the artifact.
    InvalidQuery(String),
    /// A query referenced a node that exists structurally but has been
    /// deleted (tombstoned). Distinct from [`ServeError::InvalidQuery`]
    /// so the HTTP layer can answer 404 (the id was valid once and may
    /// reappear after writes) instead of 400 (the request itself is
    /// malformed).
    NotFound(String),
    /// Structurally invalid input (training parameters, config).
    InvalidArgument(String),
    /// Training the artifact failed in the core pipeline.
    Train(sgla_core::SglaError),
    /// The server failed to start or shut down cleanly.
    Server(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            ServeError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            ServeError::NotFound(msg) => write!(f, "not found: {msg}"),
            ServeError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            ServeError::Train(e) => write!(f, "training failed: {e}"),
            ServeError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Train(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<sgla_core::SglaError> for ServeError {
    fn from(e: sgla_core::SglaError) -> Self {
        ServeError::Train(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ServeError::Corrupt("x".into())
            .to_string()
            .contains("corrupt"));
        assert!(ServeError::InvalidQuery("x".into())
            .to_string()
            .contains("query"));
        assert!(ServeError::NotFound("node 7".into())
            .to_string()
            .contains("not found"));
        let io: ServeError = std::io::Error::new(std::io::ErrorKind::NotFound, "n").into();
        assert!(io.to_string().contains("io error"));
    }
}

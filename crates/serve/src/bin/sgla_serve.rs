//! `sgla-serve` — train an artifact, inspect it, or serve it.
//!
//! ```bash
//! # Train on the synthetic toy dataset and write an artifact:
//! sgla-serve train --out toy.sgla --n 300 --k 3 --seed 42
//!
//! # Train and write a sharded layout (directory with manifest.json):
//! sgla-serve train --out toy-sharded/ --shards 4 --n 300 --k 3
//!
//! # Also build the IVF approximate top-k index (sidecar file(s)):
//! sgla-serve train --out toy.sgla --index ivf --nlist 32
//!
//! # Train on a Table-II synthetic stand-in from the registry:
//! sgla-serve train --out imdb.sgla --dataset imdb --scale 0.25
//!
//! # Inspect an artifact (single file, manifest, or shard directory):
//! sgla-serve info --artifact toy.sgla
//! sgla-serve info --artifact toy-sharded/
//!
//! # Serve it (sharded layouts and index sidecars are detected
//! # automatically; --index ivf builds an index at startup if no
//! # sidecar exists):
//! sgla-serve serve --artifact toy.sgla --addr 127.0.0.1:7878 --workers 8
//! sgla-serve serve --artifact toy-sharded/ --max-resident 2
//! sgla-serve serve --artifact toy.sgla --index ivf
//! ```

use sgla_serve::{
    Artifact, EngineConfig, IvfConfig, IvfIndex, QueryBackend, QueryEngine, RouterConfig, Server,
    ServerConfig, ShardRouter, TrainConfig,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command {
        "train" => train(&args[1..]),
        "info" => info(&args[1..]),
        "serve" => serve(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  sgla-serve train --out <file|dir> [--shards N] [--index ivf] [--nlist N]
                   [--dataset toy|<registry name>]
                   [--n N] [--k K] [--dim D] [--seed S] [--scale F]
  sgla-serve info  --artifact <file|manifest.json|shard dir>
  sgla-serve serve --artifact <file|manifest.json|shard dir> [--addr HOST:PORT]
                   [--workers N] [--cache N] [--batch N] [--max-resident N]
                   [--index ivf] [--nlist N]";

/// Tiny flag parser: `--key value` pairs after the subcommand.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got '{key}'"));
            };
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Flags(pairs))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{raw}'")),
        }
    }

    /// `--index ivf [--nlist N]` → an IVF config (`None` without the
    /// flag; only `ivf` is a known index kind).
    fn parse_index(&self) -> Result<Option<IvfConfig>, String> {
        match self.get("index") {
            None => Ok(None),
            Some("ivf") => Ok(Some(IvfConfig {
                nlist: self.parse_num("nlist", 0)?,
                ..IvfConfig::default()
            })),
            Some(other) => Err(format!("--index: unknown kind '{other}' (try ivf)")),
        }
    }
}

fn train(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let out = PathBuf::from(flags.get("out").ok_or("train needs --out <file>")?);
    let dataset = flags.get("dataset").unwrap_or("toy");
    let seed: u64 = flags.parse_num("seed", 42)?;
    let scale: f64 = flags.parse_num("scale", 0.25)?;
    let mvag = if dataset == "toy" {
        let n: usize = flags.parse_num("n", 300)?;
        let k: usize = flags.parse_num("k", 3)?;
        mvag_data::toy_mvag(n, k, seed)
    } else {
        let spec = mvag_data::by_name(dataset).ok_or_else(|| {
            let names: Vec<String> = mvag_data::full_registry()
                .iter()
                .map(|s| s.name.to_string())
                .collect();
            format!(
                "unknown dataset '{dataset}' (try: toy, {})",
                names.join(", ")
            )
        })?;
        spec.generate(scale, seed).map_err(|e| e.to_string())?
    };
    println!("training on {}", mvag.summary());
    let mut config = TrainConfig::default();
    config.sgla.seed = seed;
    config.embed.dim = flags.parse_num("dim", 64)?;
    // Parse before training: a bad value must not cost a training run.
    let shards: usize = flags.parse_num("shards", 1)?;
    let index_config = flags.parse_index()?;
    let started = std::time::Instant::now();
    let artifact = Artifact::train(&mvag, &config).map_err(|e| e.to_string())?;
    println!(
        "trained in {:.2}s: weights {:?}",
        started.elapsed().as_secs_f64(),
        artifact.weights
    );
    if shards > 1 {
        // Sharded layout: --out is a directory holding the manifest
        // plus one self-contained v2 artifact per row-range shard.
        let manifest = artifact
            .save_sharded(&out, shards)
            .map_err(|e| e.to_string())?;
        let total: u64 = manifest.shards.iter().map(|s| s.bytes).sum();
        println!(
            "wrote {} shards + {} to {} ({total} bytes total)",
            manifest.shards.len(),
            Artifact::MANIFEST_FILE,
            out.display()
        );
        print_shard_table(&manifest);
        if let Some(ivf) = &index_config {
            // One IVF sidecar per shard, over that shard's rows, so
            // the router can probe shards independently.
            for (i, entry) in manifest.shards.iter().enumerate() {
                let shard = artifact
                    .shard(entry.row_start, entry.row_end)
                    .map_err(|e| e.to_string())?;
                let index = shard.build_ivf(ivf).map_err(|e| e.to_string())?;
                let path = out.join(Artifact::shard_index_file_name(i));
                index.save(&path).map_err(|e| e.to_string())?;
                println!(
                    "  {}  ivf nlist={} over rows {}..{}",
                    path.file_name().and_then(|f| f.to_str()).unwrap_or("?"),
                    index.nlist(),
                    entry.row_start,
                    entry.row_end
                );
            }
        }
    } else {
        // Encode once: save() would re-run the full encode (including
        // the CRC pass) just to learn the byte count.
        let encoded = artifact.encode();
        std::fs::write(&out, encoded.as_ref()).map_err(|e| e.to_string())?;
        println!("wrote {} ({} bytes)", out.display(), encoded.len());
        if let Some(ivf) = &index_config {
            let index = artifact.build_ivf(ivf).map_err(|e| e.to_string())?;
            let path = Artifact::index_sidecar_path(&out);
            index.save(&path).map_err(|e| e.to_string())?;
            println!(
                "wrote {} (ivf, nlist={}, {} rows)",
                path.display(),
                index.nlist(),
                index.rows()
            );
        }
    }
    Ok(())
}

/// Is `path` a sharded layout (a directory with a manifest, or the
/// manifest file itself) rather than a single artifact file? Files are
/// decided by content, not extension: a monolithic artifact starts
/// with the binary `SGLA` magic, a manifest is JSON text — so an
/// artifact trained to a `.json` name still loads as an artifact.
fn is_sharded_path(path: &Path) -> bool {
    if path.is_dir() {
        return true;
    }
    use std::io::Read;
    let mut head = [0u8; 4];
    match std::fs::File::open(path).and_then(|mut f| f.read_exact(&mut head)) {
        Ok(()) => head != *b"SGLA",
        // Unreadable/short files: let Artifact::load produce the error.
        Err(_) => false,
    }
}

fn print_shard_table(manifest: &mvag_data::ShardManifest) {
    for s in &manifest.shards {
        println!(
            "  {}  rows {:>6}..{:<6}  {} bytes  crc32 {:08x}",
            s.file, s.row_start, s.row_end, s.bytes, s.crc32
        );
    }
}

fn info(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .get("artifact")
        .ok_or("info needs --artifact <file>")?;
    let path = Path::new(path);
    if is_sharded_path(path) {
        let router = ShardRouter::open(path, RouterConfig::default()).map_err(|e| e.to_string())?;
        let manifest = router.manifest();
        println!(
            "layout:    sharded (format v{})",
            manifest.artifact_format_version
        );
        println!("dataset:   {}", manifest.dataset);
        println!("n:         {}", manifest.n);
        println!("k:         {}", manifest.k);
        println!("dim:       {}", manifest.dim);
        println!("seed:      {}", manifest.seed);
        println!("weights:   {:?}", router.weights());
        println!("shards:    {}", manifest.shards.len());
        print_shard_table(manifest);
        return Ok(());
    }
    let artifact = Artifact::load(path).map_err(|e| e.to_string())?;
    let m = &artifact.meta;
    println!("artifact:  {}", path.display());
    println!("dataset:   {}", m.dataset);
    println!("n:         {}", m.n);
    println!("k:         {}", m.k);
    println!("dim:       {}", m.dim);
    println!("seed:      {}", m.seed);
    println!("rows:      {}..{}", m.row_start, m.row_end);
    println!("weights:   {:?}", artifact.weights);
    println!("laplacian: {} nnz", artifact.laplacian.nnz());
    let sidecar = Artifact::index_sidecar_path(path);
    if sidecar.is_file() {
        let index = IvfIndex::load(&sidecar).map_err(|e| e.to_string())?;
        println!(
            "index:     ivf ({}, nlist={})",
            sidecar.display(),
            index.nlist()
        );
    }
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .get("artifact")
        .ok_or("serve needs --artifact <file>")?;
    let path = Path::new(path);
    let engine_config = EngineConfig {
        cache_capacity: flags.parse_num("cache", 4096)?,
        // With --index ivf the backend builds an index at startup
        // wherever no persisted sidecar exists; sidecars always load.
        index: flags.parse_index()?,
        ..EngineConfig::default()
    };
    let backend: Arc<dyn QueryBackend> = if is_sharded_path(path) {
        let router_config = RouterConfig {
            // --cache sizes the router's merged-answer cache here (the
            // per-shard engine caches are disabled by the router).
            cache_capacity: engine_config.cache_capacity,
            engine: engine_config,
            max_resident: flags.parse_num("max-resident", 0)?,
        };
        let router = ShardRouter::open(path, router_config).map_err(|e| e.to_string())?;
        println!(
            "loaded sharded {} (n = {}, k = {}, dim = {}, {} shards{})",
            router.meta().dataset,
            router.meta().n,
            router.meta().k,
            router.meta().dim,
            router.manifest().shards.len(),
            if QueryBackend::index_stats(&router).enabled {
                ", ivf index"
            } else {
                ""
            }
        );
        Arc::new(router)
    } else {
        let artifact = Artifact::load(path).map_err(|e| e.to_string())?;
        println!(
            "loaded {} (n = {}, k = {}, dim = {})",
            artifact.meta.dataset, artifact.meta.n, artifact.meta.k, artifact.meta.dim
        );
        let sidecar = Artifact::index_sidecar_path(path);
        let engine = if sidecar.is_file() {
            let index = IvfIndex::load(&sidecar).map_err(|e| e.to_string())?;
            println!(
                "loaded index {} (ivf, nlist={})",
                sidecar.display(),
                index.nlist()
            );
            let engine_config = EngineConfig {
                index: None,
                ..engine_config
            };
            QueryEngine::with_index(artifact, engine_config, index).map_err(|e| e.to_string())?
        } else {
            if engine_config.index.is_some() {
                println!("building ivf index (no sidecar found; see train --index ivf)");
            }
            QueryEngine::new(artifact, engine_config).map_err(|e| e.to_string())?
        };
        Arc::new(engine)
    };
    let server_config = ServerConfig {
        addr: flags
            .get("addr")
            .unwrap_or("127.0.0.1:7878")
            .parse()
            .map_err(|e| format!("--addr: {e}"))?,
        workers: flags.parse_num("workers", 8)?,
        max_batch: flags.parse_num("batch", 64)?,
        ..ServerConfig::default()
    };
    let server = Server::start_backend(backend, &server_config).map_err(|e| e.to_string())?;
    println!("serving on http://{}", server.local_addr());
    println!(
        "endpoints: /healthz /stats /metrics /artifact /cluster/{{node}} \
         /topk/{{node}}?k=K[&mode=approx&nprobe=N] /embed"
    );
    println!("press Ctrl-C to stop");
    // Foreground serve: park until killed. Workers own the sockets.
    loop {
        std::thread::park();
    }
}

//! `sgla-serve` — train an artifact, inspect it, or serve it.
//!
//! ```bash
//! # Train on the synthetic toy dataset and write an artifact:
//! sgla-serve train --out toy.sgla --n 300 --k 3 --seed 42
//!
//! # Train and write a sharded layout (directory with manifest.json):
//! sgla-serve train --out toy-sharded/ --shards 4 --n 300 --k 3
//!
//! # Also build the IVF approximate top-k index (sidecar file(s)):
//! sgla-serve train --out toy.sgla --index ivf --nlist 32
//!
//! # Train on a Table-II synthetic stand-in from the registry:
//! sgla-serve train --out imdb.sgla --dataset imdb --scale 0.25
//!
//! # Inspect an artifact (single file, manifest, or shard directory):
//! sgla-serve info --artifact toy.sgla
//! sgla-serve info --artifact toy-sharded/
//!
//! # Serve it (sharded layouts and index sidecars are detected
//! # automatically; --index ivf builds an index at startup if no
//! # sidecar exists):
//! sgla-serve serve --artifact toy.sgla --addr 127.0.0.1:7878 --workers 8
//! sgla-serve serve --artifact toy-sharded/ --max-resident 2
//! sgla-serve serve --artifact toy.sgla --index ivf
//!
//! # Incrementally update a served artifact (append 5% new nodes,
//! # retrain any IVF sidecar over the new rows, save the delta for
//! # replay, hot-swap the running server):
//! sgla-serve update --artifact toy.sgla --n 300 --k 3 --seed 42 \
//!                   --delta-out d1.mvd --notify 127.0.0.1:7878
//!
//! # A second update replays the first delta to reconstruct the base:
//! sgla-serve update --artifact toy.sgla --n 300 --k 3 --seed 42 \
//!                   --replay d1.mvd --notify 127.0.0.1:7878
//! ```

use mvag_graph::generators::{random_append_delta, AppendConfig};
use sgla_serve::store::MmapMode;
use sgla_serve::{
    Artifact, BackendLoader, EngineConfig, IvfConfig, IvfIndex, QueryBackend, QueryEngine,
    RouterConfig, Server, ServerConfig, ShardRouter, TrainConfig,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command {
        "train" => train(&args[1..]),
        "info" => info(&args[1..]),
        "serve" => serve(&args[1..]),
        "update" => update(&args[1..]),
        "compact" => compact(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  sgla-serve train  --out <file|dir> [--shards N] [--index ivf] [--nlist N]
                    [--dataset toy|<registry name>]
                    [--n N] [--k K] [--dim D] [--seed S] [--scale F]
                    [--trace out.json]
  sgla-serve info   --artifact <file|manifest.json|shard dir>
  sgla-serve serve  --artifact <file|manifest.json|shard dir> [--addr HOST:PORT]
                    [--backend threaded|evented] [--workers N]
                    [--max-conns N] [--idle-timeout SECS]
                    [--cache N] [--batch N] [--max-resident N]
                    [--mmap auto|on|off]
                    [--index ivf] [--nlist N] [--trace on]
                    [--auto-compact F] [--slow-query-us N]
                    [--slo-p99-us N] [--slo-error-rate F]
  sgla-serve update --artifact <file> [--out <file|dir>] [--shards N]
                    [--dataset toy|<name>] [--n N] [--k K] [--dim D] [--seed S]
                    [--scale F] [--replay d1.mvd,d2.mvd]
                    [--add-nodes M] [--update-seed S]
                    [--delta file.mvd] [--delta-out file.mvd]
                    [--index ivf] [--nlist N] [--notify HOST:PORT]
                    [--trace out.json]
  sgla-serve compact --artifact <file|manifest.json|shard dir>
                    [--out <file>] [--notify HOST:PORT]

  train/update --trace writes a Chrome trace-event JSON file of the
  pipeline's phase spans (open in chrome://tracing or Perfetto);
  serve --trace on enables request tracing (GET /traces).
  serve --backend evented runs the single-threaded epoll loop (Linux);
  --max-conns caps open connections (503 shed beyond it, 0 = off) and
  --idle-timeout reaps silent keep-alive connections.
  serve --auto-compact F compacts the artifact at (re)load whenever
  the tombstoned fraction reaches F (e.g. 0.2); 0 disables.
  serve --mmap controls out-of-core serving of v5 artifacts: auto
  (default) memory-maps v5 files where supported and falls back to an
  owned load otherwise; on requires mapping; off always loads owned.
  Mapped shards turn --max-resident into a page-cache hint
  (madvise) instead of an eviction. Pre-v5 artifacts always load
  owned; `sgla-serve compact` rewrites them as v5.
  serve --slow-query-us N captures requests at least N µs long into
  GET /debug/slow_queries (default 10000, 0 = off; live-tunable via
  PUT /debug/slow_threshold). --slo-p99-us / --slo-error-rate set the
  objectives GET /health grades against (0 = objective off;
  live-tunable via PUT /debug/slo).
  update --artifact <shard dir> --delta d.mvd appends in place:
  only the tail shard and the manifest are rewritten.
  compact purges tombstones: sharded layouts rewrite only dirty
  shards and re-point the rest via the id-map sidecar.";

/// Arms pipeline tracing when `--trace <path>` was passed: clears any
/// stale spans and returns the output path.
fn trace_path(flags: &Flags) -> Option<PathBuf> {
    let path = flags.get("trace").map(PathBuf::from)?;
    mvag_obs::set_enabled(true);
    mvag_obs::clear();
    Some(path)
}

/// Drains the recorded spans into a Chrome trace-event JSON file.
fn write_trace(path: &Path) -> Result<(), String> {
    let records = mvag_obs::drain();
    mvag_obs::set_enabled(false);
    std::fs::write(path, mvag_obs::chrome_trace_json(&records))
        .map_err(|e| format!("--trace {}: {e}", path.display()))?;
    println!(
        "wrote {} ({} spans, chrome://tracing / Perfetto format)",
        path.display(),
        records.len()
    );
    Ok(())
}

/// Tiny flag parser: `--key value` pairs after the subcommand.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got '{key}'"));
            };
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Flags(pairs))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{raw}'")),
        }
    }

    /// `--index ivf [--nlist N]` → an IVF config (`None` without the
    /// flag; only `ivf` is a known index kind).
    fn parse_index(&self) -> Result<Option<IvfConfig>, String> {
        match self.get("index") {
            None => Ok(None),
            Some("ivf") => Ok(Some(IvfConfig {
                nlist: self.parse_num("nlist", 0)?,
                ..IvfConfig::default()
            })),
            Some(other) => Err(format!("--index: unknown kind '{other}' (try ivf)")),
        }
    }
}

/// Deterministically regenerates the dataset described by the common
/// `--dataset/--n/--k/--seed/--scale` flags (shared by `train` and
/// `update` — the update path must be able to reconstruct the base
/// graph an artifact was trained on).
fn generate_mvag(flags: &Flags) -> Result<mvag_graph::Mvag, String> {
    let dataset = flags.get("dataset").unwrap_or("toy");
    let seed: u64 = flags.parse_num("seed", 42)?;
    let scale: f64 = flags.parse_num("scale", 0.25)?;
    if dataset == "toy" {
        let n: usize = flags.parse_num("n", 300)?;
        let k: usize = flags.parse_num("k", 3)?;
        Ok(mvag_data::toy_mvag(n, k, seed))
    } else {
        let spec = mvag_data::by_name(dataset).ok_or_else(|| {
            let names: Vec<String> = mvag_data::full_registry()
                .iter()
                .map(|s| s.name.to_string())
                .collect();
            format!(
                "unknown dataset '{dataset}' (try: toy, {})",
                names.join(", ")
            )
        })?;
        spec.generate(scale, seed).map_err(|e| e.to_string())
    }
}

fn train(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let out = PathBuf::from(flags.get("out").ok_or("train needs --out <file>")?);
    let seed: u64 = flags.parse_num("seed", 42)?;
    let mvag = generate_mvag(&flags)?;
    println!("training on {}", mvag.summary());
    let mut config = TrainConfig::default();
    config.sgla.seed = seed;
    config.embed.dim = flags.parse_num("dim", 64)?;
    // Parse before training: a bad value must not cost a training run.
    let shards: usize = flags.parse_num("shards", 1)?;
    let index_config = flags.parse_index()?;
    let trace_out = trace_path(&flags);
    let started = std::time::Instant::now();
    // One trace id for the whole pipeline run, so the exported spans
    // group like a single request.
    let artifact = mvag_obs::with_trace(mvag_obs::next_request_id(), || {
        Artifact::train(&mvag, &config)
    })
    .map_err(|e| e.to_string())?;
    println!(
        "trained in {:.2}s: weights {:?}",
        started.elapsed().as_secs_f64(),
        artifact.weights
    );
    if let Some(path) = &trace_out {
        write_trace(path)?;
    }
    if shards > 1 {
        // Sharded layout: --out is a directory holding the manifest
        // plus one self-contained v2 artifact per row-range shard.
        let manifest = artifact
            .save_sharded(&out, shards)
            .map_err(|e| e.to_string())?;
        let total: u64 = manifest.shards.iter().map(|s| s.bytes).sum();
        println!(
            "wrote {} shards + {} to {} ({total} bytes total)",
            manifest.shards.len(),
            Artifact::MANIFEST_FILE,
            out.display()
        );
        print_shard_table(&manifest);
        if let Some(ivf) = &index_config {
            // One IVF sidecar per shard, over that shard's rows, so
            // the router can probe shards independently.
            for (i, entry) in manifest.shards.iter().enumerate() {
                let shard = artifact
                    .shard(entry.row_start, entry.row_end)
                    .map_err(|e| e.to_string())?;
                let index = shard.build_ivf(ivf).map_err(|e| e.to_string())?;
                let path = out.join(Artifact::shard_index_file_name(i));
                index.save(&path).map_err(|e| e.to_string())?;
                println!(
                    "  {}  ivf nlist={} over rows {}..{}",
                    path.file_name().and_then(|f| f.to_str()).unwrap_or("?"),
                    index.nlist(),
                    entry.row_start,
                    entry.row_end
                );
            }
        }
    } else {
        // Encode once: save() would re-run the full encode (including
        // the CRC pass) just to learn the byte count.
        let encoded = artifact.encode().map_err(|e| e.to_string())?;
        std::fs::write(&out, encoded.as_ref()).map_err(|e| e.to_string())?;
        println!("wrote {} ({} bytes)", out.display(), encoded.len());
        if let Some(ivf) = &index_config {
            let index = artifact.build_ivf(ivf).map_err(|e| e.to_string())?;
            let path = Artifact::index_sidecar_path(&out);
            index.save(&path).map_err(|e| e.to_string())?;
            println!(
                "wrote {} (ivf, nlist={}, {} rows)",
                path.display(),
                index.nlist(),
                index.rows()
            );
        }
    }
    Ok(())
}

/// Is `path` a sharded layout (a directory with a manifest, or the
/// manifest file itself) rather than a single artifact file? Files are
/// decided by content, not extension: a monolithic artifact starts
/// with the binary `SGLA` magic, a manifest is JSON text — so an
/// artifact trained to a `.json` name still loads as an artifact.
fn is_sharded_path(path: &Path) -> bool {
    if path.is_dir() {
        return true;
    }
    use std::io::Read;
    let mut head = [0u8; 4];
    match std::fs::File::open(path).and_then(|mut f| f.read_exact(&mut head)) {
        Ok(()) => head != *b"SGLA",
        // Unreadable/short files: let Artifact::load produce the error.
        Err(_) => false,
    }
}

fn print_shard_table(manifest: &mvag_data::ShardManifest) {
    for s in &manifest.shards {
        println!(
            "  {}  rows {:>6}..{:<6}  {} bytes  crc32 {:08x}",
            s.file, s.row_start, s.row_end, s.bytes, s.crc32
        );
    }
}

fn info(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .get("artifact")
        .ok_or("info needs --artifact <file>")?;
    let path = Path::new(path);
    if is_sharded_path(path) {
        let router = ShardRouter::open(path, RouterConfig::default()).map_err(|e| e.to_string())?;
        let manifest = router.manifest();
        println!(
            "layout:    sharded (format v{})",
            manifest.artifact_format_version
        );
        println!("dataset:   {}", manifest.dataset);
        println!("n:         {}", manifest.n);
        println!("k:         {}", manifest.k);
        println!("dim:       {}", manifest.dim);
        println!("seed:      {}", manifest.seed);
        println!("weights:   {:?}", router.weights());
        println!("shards:    {}", manifest.shards.len());
        print_shard_table(manifest);
        return Ok(());
    }
    let artifact = Artifact::load(path).map_err(|e| e.to_string())?;
    let file_info = Artifact::read_file_info(path).map_err(|e| e.to_string())?;
    let m = &artifact.meta;
    println!("artifact:  {}", path.display());
    println!(
        "format:    v{} ({} bytes)",
        file_info.version, file_info.file_bytes
    );
    println!("dataset:   {}", m.dataset);
    println!("n:         {}", m.n);
    println!("k:         {}", m.k);
    println!("dim:       {}", m.dim);
    println!("seed:      {}", m.seed);
    println!("rows:      {}..{}", m.row_start, m.row_end);
    println!(
        "lineage:   parent seed {}, {} update(s) applied",
        m.parent_seed, m.update_count
    );
    println!("weights:   {:?}", artifact.weights);
    println!("laplacian: {} nnz", artifact.laplacian.nnz());
    match &file_info.sections {
        Some(sections) => {
            println!("sections:");
            for s in sections {
                println!(
                    "  {:<10} offset {:>10}  {:>12} bytes  crc32 {:08x}",
                    s.name(),
                    s.offset,
                    s.len,
                    s.crc32
                );
            }
        }
        None => println!("sections:  none (packed pre-v5 body; compact to rewrite as v5)"),
    }
    let sidecar = Artifact::index_sidecar_path(path);
    if sidecar.is_file() {
        let index = IvfIndex::load(&sidecar).map_err(|e| e.to_string())?;
        println!(
            "index:     ivf ({}, nlist={})",
            sidecar.display(),
            index.nlist()
        );
    }
    Ok(())
}

/// Builds the serving backend for `path` with the given configs —
/// used both at startup and on every `POST /reload` (the loader
/// re-reads the files from disk, so a hot-swap picks up whatever
/// `sgla-serve update` wrote there).
fn load_backend(
    path: &Path,
    engine_config: &EngineConfig,
    max_resident: usize,
    mmap: MmapMode,
    quiet: bool,
) -> Result<Arc<dyn QueryBackend>, sgla_serve::ServeError> {
    if is_sharded_path(path) {
        let router_config = RouterConfig {
            // --cache sizes the router's merged-answer cache here (the
            // per-shard engine caches are disabled by the router).
            cache_capacity: engine_config.cache_capacity,
            engine: engine_config.clone(),
            max_resident,
            mmap,
        };
        let router = ShardRouter::open(path, router_config)?;
        if !quiet {
            println!(
                "loaded sharded {} (n = {}, k = {}, dim = {}, {} shards{})",
                router.meta().dataset,
                router.meta().n,
                router.meta().k,
                router.meta().dim,
                router.manifest().shards.len(),
                if QueryBackend::index_stats(&router).enabled {
                    ", ivf index"
                } else {
                    ""
                }
            );
        }
        Ok(Arc::new(router))
    } else {
        let sidecar = Artifact::index_sidecar_path(path);
        let sidecar_index = if sidecar.is_file() {
            Some(
                IvfIndex::load(&sidecar)
                    .map_err(|e| sgla_serve::ServeError::Corrupt(e.to_string()))?,
            )
        } else {
            None
        };
        if !quiet {
            if let Some(index) = &sidecar_index {
                println!(
                    "loaded index {} (ivf, nlist={})",
                    sidecar.display(),
                    index.nlist()
                );
            }
        }
        // Mapped open first under auto/on: the engine borrows rows
        // from the page cache instead of decoding the whole file.
        // Training an index needs the owned path; under auto that and
        // any pre-v5 file silently fall back below.
        if mmap != MmapMode::Off {
            let attempt = sgla_serve::store::open_mapped(path).and_then(|mapped| {
                // Leave `index` in the config when no sidecar exists:
                // from_mapped rejects the train request, routing it to
                // the owned fallback.
                let config = if sidecar_index.is_some() {
                    EngineConfig {
                        index: None,
                        ..engine_config.clone()
                    }
                } else {
                    engine_config.clone()
                };
                QueryEngine::from_mapped(mapped, config, sidecar_index.clone())
            });
            match (attempt, mmap) {
                (Ok(engine), _) => {
                    if !quiet {
                        println!(
                            "loaded {} memory-mapped (n = {}, k = {}, dim = {}, {} update(s))",
                            engine.artifact().meta.dataset,
                            engine.artifact().meta.n,
                            engine.artifact().meta.k,
                            engine.artifact().meta.dim,
                            engine.artifact().meta.update_count
                        );
                    }
                    return Ok(Arc::new(engine));
                }
                (Err(e), MmapMode::On) => {
                    return Err(sgla_serve::ServeError::InvalidArgument(format!(
                        "cannot serve memory-mapped (--mmap on): {e}"
                    )))
                }
                (Err(_), _) => {} // auto: owned fallback
            }
        }
        let (artifact, norms) = Artifact::load_with_norms(path)?;
        if !quiet {
            println!(
                "loaded {} (n = {}, k = {}, dim = {}, {} update(s))",
                artifact.meta.dataset,
                artifact.meta.n,
                artifact.meta.k,
                artifact.meta.dim,
                artifact.meta.update_count
            );
        }
        let engine = if let Some(index) = sidecar_index {
            let engine_config = EngineConfig {
                index: None,
                ..engine_config.clone()
            };
            QueryEngine::with_index_and_norms(artifact, engine_config, index, norms)?
        } else {
            if engine_config.index.is_some() && !quiet {
                println!("building ivf index (no sidecar found; see train --index ivf)");
            }
            QueryEngine::new_with_norms(artifact, engine_config.clone(), norms)?
        };
        Ok(Arc::new(engine))
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .get("artifact")
        .ok_or("serve needs --artifact <file>")?;
    let path = PathBuf::from(path);
    let engine_config = EngineConfig {
        cache_capacity: flags.parse_num("cache", 4096)?,
        // With --index ivf the backend builds an index at startup
        // wherever no persisted sidecar exists; sidecars always load.
        index: flags.parse_index()?,
        ..EngineConfig::default()
    };
    let max_resident: usize = flags.parse_num("max-resident", 0)?;
    let mmap: MmapMode = flags
        .get("mmap")
        .map(str::parse)
        .transpose()?
        .unwrap_or(MmapMode::Auto);
    let auto_compact: f64 = flags.parse_num("auto-compact", 0.0)?;
    if !(0.0..=1.0).contains(&auto_compact) {
        return Err(format!(
            "--auto-compact: threshold {auto_compact} must be a fraction in 0..=1"
        ));
    }
    let slo_error_rate: f64 = flags.parse_num("slo-error-rate", 0.0)?;
    if !(0.0..=1.0).contains(&slo_error_rate) {
        return Err(format!(
            "--slo-error-rate: {slo_error_rate} must be a fraction in 0..=1"
        ));
    }
    let server_config = ServerConfig {
        addr: flags
            .get("addr")
            .unwrap_or("127.0.0.1:7878")
            .parse()
            .map_err(|e| format!("--addr: {e}"))?,
        backend: flags
            .get("backend")
            .map(str::parse)
            .transpose()?
            .unwrap_or_default(),
        workers: flags.parse_num("workers", 8)?,
        max_batch: flags.parse_num("batch", 64)?,
        max_connections: flags.parse_num("max-conns", 10_000)?,
        read_timeout: Duration::from_secs(flags.parse_num("idle-timeout", 30)?),
        trace: matches!(flags.get("trace"), Some("on" | "true" | "1")),
        slow_query_us: flags.parse_num("slow-query-us", 10_000)?,
        slo_p99_us: flags.parse_num("slo-p99-us", 0)?,
        slo_error_rate,
        ..ServerConfig::default()
    };
    // Reloadable serving: the loader closure re-reads the same path on
    // POST /reload, and the fresh backend is hot-swapped in while
    // in-flight queries finish on the old one.
    let first_load = std::sync::atomic::AtomicBool::new(true);
    let loader: BackendLoader = Box::new(move || {
        let quiet = !first_load.swap(false, std::sync::atomic::Ordering::Relaxed);
        if auto_compact > 0.0 {
            maybe_auto_compact(&path, auto_compact);
        }
        load_backend(&path, &engine_config, max_resident, mmap, quiet)
    });
    let server = Server::start_reloadable(loader, &server_config).map_err(|e| e.to_string())?;
    println!("serving on http://{}", server.local_addr());
    println!(
        "endpoints: /healthz /health /version /stats /metrics /artifact /cluster/{{node}} \
         /topk/{{node}}?k=K[&mode=approx&nprobe=N] /embed /reload (POST) \
         /debug/slow_queries /debug/slow_threshold (PUT) /debug/slo (PUT)"
    );
    println!("query endpoints accept ?explain=1 for a per-query cost profile");
    println!("press Ctrl-C to stop");
    // Foreground serve: park until killed. Workers own the sockets.
    loop {
        std::thread::park();
    }
}

/// Compacts the artifact at `path` before a (re)load when its
/// tombstoned fraction has reached `threshold`. Failures are logged,
/// not fatal: the uncompacted artifact still serves correctly
/// (tombstones are masked at query time), so a broken background
/// compaction must never take the server down.
fn maybe_auto_compact(path: &Path, threshold: f64) {
    let result = (|| -> Result<Option<sgla_serve::CompactionStats>, String> {
        let (dead, n) = if is_sharded_path(path) {
            let manifest_path = if path.is_dir() {
                path.join(Artifact::MANIFEST_FILE)
            } else {
                path.to_path_buf()
            };
            let manifest =
                mvag_data::ShardManifest::load(&manifest_path).map_err(|e| e.to_string())?;
            let dead: usize = manifest.shards.iter().map(|e| e.tombstones).sum();
            (dead, manifest.n)
        } else {
            let artifact = Artifact::load(path).map_err(|e| e.to_string())?;
            (artifact.tombstone_count(), artifact.meta.n)
        };
        if n == 0 || (dead as f64) < threshold * n as f64 {
            return Ok(None);
        }
        let stats = if is_sharded_path(path) {
            sgla_serve::compact_sharded(path, &mut mvag_data::FsWriter)
        } else {
            sgla_serve::compact_monolithic(path, path, &mut mvag_data::FsWriter)
        }
        .map_err(|e| e.to_string())?;
        Ok(Some(stats))
    })();
    match result {
        Ok(Some(stats)) if !stats.is_noop() => println!(
            "auto-compact: purged {} row(s), rewrote {} shard(s) ({} bytes)",
            stats.purged, stats.shards_rewritten, stats.bytes_written
        ),
        Ok(_) => {}
        Err(e) => eprintln!("auto-compact: {e} (serving the uncompacted artifact)"),
    }
}

/// With `--notify HOST:PORT`, POSTs `/reload` to a running server so
/// it hot-swaps whatever the preceding command wrote to disk.
fn notify_reload(flags: &Flags) -> Result<(), String> {
    let Some(addr) = flags.get("notify") else {
        return Ok(());
    };
    let addr: std::net::SocketAddr = addr.parse().map_err(|e| format!("--notify: {e}"))?;
    let mut client = sgla_serve::HttpClient::connect(addr).map_err(|e| e.to_string())?;
    let response = client
        .post("/reload", &mvag_data::json::Value::object(vec![]))
        .map_err(|e| e.to_string())?;
    if response.status == 200 {
        println!("notified {addr}: server hot-swapped the updated artifact");
        Ok(())
    } else {
        Err(format!(
            "notify {addr}: POST /reload answered {} ({})",
            response.status, response.body
        ))
    }
}

/// `sgla-serve compact` — purge tombstones from an artifact on disk.
///
/// Sharded layouts compact in place: only dirty shards (tombstoned or
/// stale) are rewritten, clean shard files stay byte-identical and are
/// re-pointed through the id-map sidecar, and the new manifest commits
/// with one atomic rename (a kill at any point leaves either the old
/// or the new layout fully loadable). Monolithic artifacts are
/// rewritten whole (to `--out`, default in place) with the same
/// tmp-file + rename commit. `--notify` hot-swaps a running server.
fn compact(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = PathBuf::from(
        flags
            .get("artifact")
            .ok_or("compact needs --artifact <file|shard dir>")?,
    );
    let stats = if is_sharded_path(&path) {
        if flags.get("out").is_some() {
            return Err("sharded layouts compact in place; --out applies to single files".into());
        }
        sgla_serve::compact_sharded(&path, &mut mvag_data::FsWriter).map_err(|e| e.to_string())?
    } else {
        let out = flags
            .get("out")
            .map(PathBuf::from)
            .unwrap_or_else(|| path.clone());
        sgla_serve::compact_monolithic(&path, &out, &mut mvag_data::FsWriter)
            .map_err(|e| e.to_string())?
    };
    if stats.is_noop() {
        println!("nothing to compact: no tombstones, no stale shards");
        return Ok(());
    }
    println!(
        "compacted {}: purged {} row(s); rewrote {} shard(s), kept {}, dropped {} \
         ({} bytes written over {} dirty bytes)",
        path.display(),
        stats.purged,
        stats.shards_rewritten,
        stats.shards_kept,
        stats.shards_dropped,
        stats.bytes_written,
        stats.dirty_bytes_before
    );
    notify_reload(&flags)
}

/// `sgla-serve update` — incremental artifact refresh for an
/// append-only graph change, without a full retrain:
///
/// 1. loads the full artifact and regenerates its base MVAG from the
///    same `--dataset/--n/--k/--seed` flags `train` used (replaying
///    any previously saved deltas via `--replay` for artifacts that
///    have already been updated — the lineage header records how many
///    are expected);
/// 2. obtains the delta: `--delta file.mvd` loads a saved one,
///    otherwise a structure-preserving random append of `--add-nodes`
///    nodes (default 5% of n) is synthesized (persist it with
///    `--delta-out` to keep the update replayable);
/// 3. runs `Artifact::update` (reused weights, warm-started
///    eigensolves, incremental centroid/label refresh) and writes the
///    updated v3 artifact (monolithic, or a re-manifested sharded
///    layout with `--shards N`);
/// 4. invalidates IVF sidecars: any existing index over the old rows
///    is retrained over the updated artifact with its original
///    parameters and overwritten (stale shard files/sidecars beyond
///    the new shard count are deleted), so approximate top-k can never
///    serve rows the index does not cover;
/// 5. with `--notify HOST:PORT`, POSTs `/reload` to a running
///    `sgla-serve serve` so it hot-swaps the updated artifact in.
fn update(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let artifact_path = PathBuf::from(
        flags
            .get("artifact")
            .ok_or("update needs --artifact <file>")?,
    );
    if is_sharded_path(&artifact_path) {
        return update_sharded_in_place(&flags, &artifact_path);
    }
    let artifact = Artifact::load(&artifact_path).map_err(|e| e.to_string())?;
    let out = flags
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| artifact_path.clone());
    let shards: usize = flags.parse_num("shards", 1)?;

    // Reconstruct the base MVAG the artifact describes: regenerate the
    // root dataset, then replay any persisted deltas.
    let mut base = generate_mvag(&flags)?;
    let mut replayed = 0u64;
    if let Some(list) = flags.get("replay") {
        for file in list.split(',').filter(|s| !s.is_empty()) {
            let delta = mvag_data::load_delta(Path::new(file)).map_err(|e| e.to_string())?;
            base = base.apply_delta(&delta).map_err(|e| e.to_string())?;
            replayed += 1;
        }
    }
    let m = &artifact.meta;
    if base.n() != m.n || base.k() != m.k || base.name != m.dataset {
        return Err(format!(
            "regenerated base is '{}' (n = {}, k = {}) but the artifact was trained on '{}' \
             (n = {}, k = {}, {} update(s) applied); pass the training flags \
             (--dataset/--n/--k/--seed) and --replay the {} saved delta(s)",
            base.name,
            base.n(),
            base.k(),
            m.dataset,
            m.n,
            m.k,
            m.update_count,
            m.update_count
        ));
    }
    // The lineage counter exists precisely to catch a wrong history:
    // an edge-only delta leaves n unchanged, so the size check above
    // cannot detect a missing --replay. Hard error, not a note — a
    // base reconstructed from the wrong history would be warm-updated
    // and served silently wrong.
    if replayed != m.update_count {
        return Err(format!(
            "replayed {replayed} delta(s) but the artifact's lineage records {} update(s); \
             pass every saved delta in order via --replay (see --delta-out)",
            m.update_count
        ));
    }

    // The delta: loaded, or synthesized (default 5% append).
    let delta = match flags.get("delta") {
        Some(file) => mvag_data::load_delta(Path::new(file)).map_err(|e| e.to_string())?,
        None => {
            let added: usize = flags.parse_num("add-nodes", (m.n / 20).max(1))?;
            let update_seed: u64 = flags.parse_num("update-seed", m.seed ^ (m.update_count + 1))?;
            random_append_delta(
                &base,
                &AppendConfig {
                    added_nodes: added,
                    seed: update_seed,
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?
        }
    };
    if let Some(delta_out) = flags.get("delta-out") {
        mvag_data::save_delta(&delta, Path::new(delta_out)).map_err(|e| e.to_string())?;
        println!("wrote {delta_out} (replayable delta)");
    }
    println!(
        "updating {} (n = {} -> {}, update {} -> {})",
        m.dataset,
        m.n,
        m.n + delta.added_nodes,
        m.update_count,
        m.update_count + 1
    );

    let mut config = TrainConfig::default();
    config.sgla.seed = m.seed;
    config.embed.dim = flags.parse_num("dim", m.dim)?;
    let trace_out = trace_path(&flags);
    let update_trace = mvag_obs::next_request_id();
    let started = std::time::Instant::now();
    let views = mvag_obs::with_trace(update_trace, || {
        sgla_core::views::ViewLaplacians::build(&base, &config.knn)
    })
    .map_err(|e| e.to_string())?;
    let views_secs = started.elapsed().as_secs_f64();
    let started = std::time::Instant::now();
    let outcome = mvag_obs::with_trace(update_trace, || {
        artifact.update(&views, &base, &delta, &config)
    })
    .map_err(|e| e.to_string())?;
    println!(
        "updated in {:.2}s (+{:.2}s rebuilding base view Laplacians — a resident trainer \
         keeps these cached)",
        started.elapsed().as_secs_f64(),
        views_secs
    );
    if let Some(path) = &trace_out {
        write_trace(path)?;
    }
    let updated = &outcome.artifact;

    if shards > 1 {
        let manifest = updated
            .save_sharded(&out, shards)
            .map_err(|e| e.to_string())?;
        println!(
            "wrote {} shards + {} to {}",
            manifest.shards.len(),
            Artifact::MANIFEST_FILE,
            out.display()
        );
        // Sidecar invalidation: retrain per-shard indexes if the old
        // layout had any (same parameters as shard 0's old index), and
        // delete stale files beyond the new shard count.
        let old_sidecar = out.join(Artifact::shard_index_file_name(0));
        let ivf = match flags.parse_index()? {
            Some(cfg) => Some(cfg),
            None => match IvfIndex::load(&old_sidecar) {
                Ok(old) => Some(old.config()),
                Err(_) => None,
            },
        };
        if let Some(ivf) = &ivf {
            for (i, entry) in manifest.shards.iter().enumerate() {
                let shard = updated
                    .shard(entry.row_start, entry.row_end)
                    .map_err(|e| e.to_string())?;
                let index = shard.build_ivf(ivf).map_err(|e| e.to_string())?;
                index
                    .save(&out.join(Artifact::shard_index_file_name(i)))
                    .map_err(|e| e.to_string())?;
            }
            println!(
                "retrained {} ivf sidecar(s) (nlist={}) over the updated rows",
                manifest.shards.len(),
                ivf.nlist
            );
        }
        // Remove leftovers of a previously larger layout: a stale
        // shard or index past the new count must never be picked up.
        let mut stale = manifest.shards.len();
        loop {
            let shard_file = out.join(Artifact::shard_file_name(stale));
            let index_file = out.join(Artifact::shard_index_file_name(stale));
            let any = std::fs::remove_file(&shard_file).is_ok()
                | std::fs::remove_file(&index_file).is_ok();
            if !any {
                break;
            }
            stale += 1;
        }
    } else {
        let encoded = updated.encode().map_err(|e| e.to_string())?;
        std::fs::write(&out, encoded.as_ref()).map_err(|e| e.to_string())?;
        println!("wrote {} ({} bytes)", out.display(), encoded.len());
        // Sidecar invalidation: a stale monolithic index no longer
        // covers the appended rows — retrain it with its original
        // parameters (or --index ivf's) and overwrite.
        let sidecar = Artifact::index_sidecar_path(&out);
        let ivf = match flags.parse_index()? {
            Some(cfg) => Some(cfg),
            None => match IvfIndex::load(&sidecar) {
                Ok(old) => Some(old.config()),
                Err(_) => None,
            },
        };
        if let Some(ivf) = &ivf {
            let index = updated.build_ivf(ivf).map_err(|e| e.to_string())?;
            index.save(&sidecar).map_err(|e| e.to_string())?;
            println!(
                "retrained ivf sidecar {} (nlist={}, {} rows)",
                sidecar.display(),
                index.nlist(),
                index.rows()
            );
        }
    }

    notify_reload(&flags)
}

/// `sgla-serve update --artifact <shard dir>` — in-place tail append.
///
/// A pure-append delta (from `--delta`) is routed to the layout's tail
/// shard: exactly one shard file plus the manifest are rewritten,
/// every other shard file stays byte-identical on disk. The base stays
/// frozen — appended rows get serving state estimated from their
/// resident neighbors — so this is the cheap ingest path; a later full
/// `update` on the monolithic artifact folds the rows in exactly.
fn update_sharded_in_place(flags: &Flags, path: &Path) -> Result<(), String> {
    let delta_file = flags.get("delta").ok_or(
        "updating a sharded layout in place needs --delta <file.mvd> carrying a pure append; \
         removals/edits retrain via the monolithic artifact (then re-shard with --shards N), \
         and tombstones are purged with `sgla-serve compact`",
    )?;
    let delta = mvag_data::load_delta(Path::new(delta_file)).map_err(|e| e.to_string())?;
    let stats = sgla_serve::append_sharded(path, &delta, &mut mvag_data::FsWriter)
        .map_err(|e| e.to_string())?;
    println!(
        "appended {} node(s) in place: rewrote shard {} + manifest ({} bytes), \
         {} shard file(s) untouched",
        stats.added, stats.tail_shard, stats.bytes_written, stats.shards_kept
    );
    notify_reload(flags)
}

//! Per-query cost accounting for the EXPLAIN path.
//!
//! Every query served over HTTP assembles a [`QueryCost`] describing
//! the work done on its behalf: which backend path ran (exact scan or
//! IVF probe), how many shards/lists/rows were touched, what the
//! result cache did, and where the wall time went (queue wait vs
//! compute). `?explain=1` on `/cluster`, `/topk/{node}`, and `/embed`
//! returns the cost object alongside the answer — the answer bytes
//! are guaranteed identical to the unexplained response — and the
//! slow-query log ([`crate::slowlog`]) captures the same object for
//! any request that crosses the live-tunable threshold.
//!
//! Accounting is always on: the counters are a handful of integer
//! adds per query, cheap enough to stay inside the serve benchmark's
//! 3% observability budget, so the slow-query log always has a real
//! cost profile to show even for requests that did not ask for
//! EXPLAIN.

/// Cost profile of one query.
///
/// For batched top-k the counters describe the kernel *pass* that
/// served the query: a query that shared its pass with others sees the
/// shared cost (the batch size is visible as `cache_hits +
/// cache_misses`). Point lookups (`/cluster`, `/embed`) describe just
/// themselves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Backend path taken: `"exact"` (full blocked scan) or `"ivf"`
    /// (inverted-list probe).
    pub path: &'static str,
    /// Shards consulted by the query (1 for a monolithic engine).
    pub shards_touched: u64,
    /// Shards loaded from disk while serving this query (0 when every
    /// fan-out target was already resident).
    pub shards_loaded: u64,
    /// Shards resident in memory after the query finished.
    pub shards_resident: u64,
    /// IVF inverted lists probed (0 on the exact path).
    pub lists_probed: u64,
    /// Candidate rows scored by the scan/probe kernels.
    pub rows_scanned: u64,
    /// Tombstoned rows masked out of the candidate set.
    pub tombstones_masked: u64,
    /// Queries in the pass answered from the result cache.
    pub cache_hits: u64,
    /// Queries in the pass that missed the result cache.
    pub cache_misses: u64,
    /// Microseconds spent queued behind the micro-batcher (0 for
    /// point lookups, which bypass the queue).
    pub queue_wait_us: u64,
    /// Microseconds of backend compute (the kernel pass wall time).
    pub compute_us: u64,
    /// Bytes of the unexplained JSON answer body (the cost object
    /// itself is excluded so the number is stable under EXPLAIN).
    pub response_bytes: u64,
}

impl QueryCost {
    /// Fresh cost labelled for the exact scan path.
    pub fn exact() -> QueryCost {
        QueryCost {
            path: "exact",
            ..QueryCost::default()
        }
    }

    /// Fresh cost labelled for the IVF probe path.
    pub fn ivf() -> QueryCost {
        QueryCost {
            path: "ivf",
            ..QueryCost::default()
        }
    }

    /// Folds another cost's counters into this one (used when a query
    /// fans out across shards). Keeps `self.path` unless it is unset.
    pub fn absorb(&mut self, other: &QueryCost) {
        if self.path.is_empty() {
            self.path = other.path;
        }
        self.shards_touched += other.shards_touched;
        self.shards_loaded += other.shards_loaded;
        self.shards_resident = self.shards_resident.max(other.shards_resident);
        self.lists_probed += other.lists_probed;
        self.rows_scanned += other.rows_scanned;
        self.tombstones_masked += other.tombstones_masked;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.queue_wait_us += other.queue_wait_us;
        self.compute_us += other.compute_us;
        self.response_bytes += other.response_bytes;
    }

    /// Renders the cost as a JSON object with a stable key order.
    pub fn json(&self) -> String {
        format!(
            "{{\"path\":{:?},\"shards_touched\":{},\"shards_loaded\":{},\
             \"shards_resident\":{},\"lists_probed\":{},\"rows_scanned\":{},\
             \"tombstones_masked\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"queue_wait_us\":{},\"compute_us\":{},\"response_bytes\":{}}}",
            self.path,
            self.shards_touched,
            self.shards_loaded,
            self.shards_resident,
            self.lists_probed,
            self.rows_scanned,
            self.tombstones_masked,
            self.cache_hits,
            self.cache_misses,
            self.queue_wait_us,
            self.compute_us,
            self.response_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters_and_keeps_path() {
        let mut a = QueryCost::exact();
        a.rows_scanned = 10;
        a.shards_touched = 1;
        a.shards_resident = 2;
        let mut b = QueryCost::ivf();
        b.rows_scanned = 5;
        b.lists_probed = 3;
        b.shards_touched = 1;
        b.shards_resident = 4;
        a.absorb(&b);
        assert_eq!(a.path, "exact");
        assert_eq!(a.rows_scanned, 15);
        assert_eq!(a.lists_probed, 3);
        assert_eq!(a.shards_touched, 2);
        assert_eq!(a.shards_resident, 4);

        let mut unset = QueryCost::default();
        unset.absorb(&b);
        assert_eq!(unset.path, "ivf");
    }

    #[test]
    fn json_has_stable_shape() {
        let cost = QueryCost::exact();
        let json = cost.json();
        assert!(json.starts_with("{\"path\":\"exact\""));
        assert!(json.contains("\"rows_scanned\":0"));
        assert!(json.ends_with("\"response_bytes\":0}"));
    }
}

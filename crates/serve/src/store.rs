//! The embedding row store: the seam between the codec and the query
//! engine that decides whether rows live on the heap or in the page
//! cache.
//!
//! [`EmbeddingStore`] answers the one question every scan kernel,
//! centroid lookup, and IVF probe asks — `row(i) -> &[f64]` — from two
//! backings behind the same API:
//!
//! * **Owned** — the embedding matrix and per-row norms as plain heap
//!   allocations (every pre-v5 load, every non-Linux platform, and
//!   training/compaction paths that mutate rows).
//! * **Mapped** (Linux, little-endian) — a private read-only `mmap` of
//!   a v5 artifact file, rows borrowed in place from the 64-byte
//!   aligned little-endian embedding section. Opening faults only the
//!   head and the small sections (labels, centroids); embedding pages
//!   stream in on demand as queries touch them, so time-to-first-query
//!   and resident memory are decoupled from artifact size.
//!
//! Integrity model for mapped opens: the head CRC and the label /
//! centroid section CRCs are verified eagerly (small, already
//! faulted); the norms and embedding sections are *not* checksummed —
//! doing so would fault every page the map exists to avoid. The
//! whole-body CRC still protects owned loads, `compact` verification,
//! and layout repair; see `docs/ARCHITECTURE.md` ("Out-of-core
//! serving") for the full matrix.

use crate::artifact::{Artifact, ArtifactMeta};
use crate::{Result, ServeError};
use mvag_data::manifest::ShardManifest;
use mvag_sparse::{vecops, CsrMatrix, DenseMatrix, RowMatrix};
use std::path::Path;

/// Whether this build can serve memory-mapped v5 artifacts (Linux and
/// little-endian — the zero-copy sections are raw little-endian
/// `f64`s). Elsewhere every open falls back to the owned path.
pub const MMAP_SUPPORTED: bool = cfg!(all(target_os = "linux", target_endian = "little"));

/// Whether artifacts are served memory-mapped or heap-owned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MmapMode {
    /// Map when the file is v5 and the platform supports it
    /// ([`MMAP_SUPPORTED`]); silently fall back to an owned load
    /// otherwise. What `sgla-serve serve` defaults to.
    Auto,
    /// Require mapping; fail instead of falling back.
    On,
    /// Never map (every load is heap-owned). The library default, so
    /// embedding existing [`crate::RouterConfig`] users see unchanged
    /// residency behaviour.
    #[default]
    Off,
}

impl std::str::FromStr for MmapMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "auto" => Ok(MmapMode::Auto),
            "on" => Ok(MmapMode::On),
            "off" => Ok(MmapMode::Off),
            other => Err(format!("invalid --mmap value '{other}' (auto|on|off)")),
        }
    }
}

impl std::fmt::Display for MmapMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MmapMode::Auto => "auto",
            MmapMode::On => "on",
            MmapMode::Off => "off",
        })
    }
}

/// Embedding rows plus their precomputed Euclidean norms, owned or
/// memory-mapped, behind one `row(i) -> &[f64]` API.
pub enum EmbeddingStore {
    /// Heap-resident rows and norms.
    Owned {
        /// The `rows × dim` embedding matrix.
        embedding: DenseMatrix,
        /// Euclidean norm of each row.
        norms: Vec<f64>,
    },
    /// Rows borrowed from a mapped v5 artifact file.
    #[cfg(all(target_os = "linux", target_endian = "little"))]
    Mapped(MappedStore),
}

/// The mapped backing: the whole artifact file mapped privately, with
/// the norms and embedding sections addressed by offset.
#[cfg(all(target_os = "linux", target_endian = "little"))]
pub struct MappedStore {
    map: crate::sys::Mmap,
    rows: usize,
    dim: usize,
    norms_offset: usize,
    emb_offset: usize,
}

#[cfg(all(target_os = "linux", target_endian = "little"))]
impl MappedStore {
    #[inline]
    fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        self.map
            .f64_slice(self.emb_offset + r * self.dim * 8, self.dim)
            .expect("row range validated at open")
    }

    #[inline]
    fn norms(&self) -> &[f64] {
        self.map
            .f64_slice(self.norms_offset, self.rows)
            .expect("norms range validated at open")
    }
}

impl EmbeddingStore {
    /// Wraps heap-resident rows, computing the per-row norms unless
    /// the caller already has them (from a v5 file's norms section).
    pub fn owned(embedding: DenseMatrix, norms: Option<Vec<f64>>) -> Self {
        let norms = match norms {
            Some(n) => {
                debug_assert_eq!(n.len(), embedding.nrows());
                n
            }
            None => (0..embedding.nrows())
                .map(|r| vecops::norm2(embedding.row(r)))
                .collect(),
        };
        EmbeddingStore::Owned { embedding, norms }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        match self {
            EmbeddingStore::Owned { embedding, .. } => embedding.nrows(),
            #[cfg(all(target_os = "linux", target_endian = "little"))]
            EmbeddingStore::Mapped(m) => m.rows,
        }
    }

    /// Row length (embedding dimension).
    #[inline]
    pub fn ncols(&self) -> usize {
        match self {
            EmbeddingStore::Owned { embedding, .. } => embedding.ncols(),
            #[cfg(all(target_os = "linux", target_endian = "little"))]
            EmbeddingStore::Mapped(m) => m.dim,
        }
    }

    /// Row `r` as a borrowed slice (zero-copy from the map when
    /// mapped).
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        match self {
            EmbeddingStore::Owned { embedding, .. } => embedding.row(r),
            #[cfg(all(target_os = "linux", target_endian = "little"))]
            EmbeddingStore::Mapped(m) => m.row(r),
        }
    }

    /// Euclidean norms of every row, one per row.
    #[inline]
    pub fn norms(&self) -> &[f64] {
        match self {
            EmbeddingStore::Owned { norms, .. } => norms,
            #[cfg(all(target_os = "linux", target_endian = "little"))]
            EmbeddingStore::Mapped(m) => m.norms(),
        }
    }

    /// `"owned"` or `"mapped"` (for `/stats` and `/metrics`).
    pub fn kind(&self) -> &'static str {
        match self {
            EmbeddingStore::Owned { .. } => "owned",
            #[cfg(all(target_os = "linux", target_endian = "little"))]
            EmbeddingStore::Mapped(_) => "mapped",
        }
    }

    /// Whether the rows are served from a memory map.
    pub fn is_mapped(&self) -> bool {
        !matches!(self, EmbeddingStore::Owned { .. })
    }

    /// Heap bytes pinned by this store (embedding + norms when owned;
    /// zero when mapped — the pages belong to the page cache).
    pub fn owned_bytes(&self) -> u64 {
        match self {
            EmbeddingStore::Owned { embedding, norms } => {
                (embedding.data().len() * 8 + norms.len() * 8) as u64
            }
            #[cfg(all(target_os = "linux", target_endian = "little"))]
            EmbeddingStore::Mapped(_) => 0,
        }
    }

    /// Bytes of address space mapped by this store (the whole artifact
    /// file when mapped; zero when owned).
    pub fn mapped_bytes(&self) -> u64 {
        match self {
            EmbeddingStore::Owned { .. } => 0,
            #[cfg(all(target_os = "linux", target_endian = "little"))]
            EmbeddingStore::Mapped(m) => m.map.len() as u64,
        }
    }

    /// Hints the kernel that this store's pages will not be needed
    /// soon (`madvise(MADV_DONTNEED)`) — the mapped-layout analogue of
    /// evicting an owned shard under `--max-resident`. Returns whether
    /// a hint was actually issued (owned stores have no pages to
    /// hint). Purely advisory: the next access faults pages back in
    /// with identical contents.
    pub fn advise_dontneed(&self) -> bool {
        match self {
            EmbeddingStore::Owned { .. } => false,
            #[cfg(all(target_os = "linux", target_endian = "little"))]
            EmbeddingStore::Mapped(m) => m.map.advise(crate::sys::MADV_DONTNEED).is_ok(),
        }
    }

    /// Hints the kernel that access will be random point lookups (the
    /// serving access pattern — disables readahead so a top-k query
    /// does not drag neighbouring rows into memory).
    pub fn advise_random(&self) -> bool {
        match self {
            EmbeddingStore::Owned { .. } => false,
            #[cfg(all(target_os = "linux", target_endian = "little"))]
            EmbeddingStore::Mapped(m) => m.map.advise(crate::sys::MADV_RANDOM).is_ok(),
        }
    }
}

impl std::fmt::Debug for EmbeddingStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingStore")
            .field("kind", &self.kind())
            .field("nrows", &self.nrows())
            .field("ncols", &self.ncols())
            .finish()
    }
}

impl RowMatrix for EmbeddingStore {
    #[inline]
    fn nrows(&self) -> usize {
        EmbeddingStore::nrows(self)
    }
    #[inline]
    fn ncols(&self) -> usize {
        EmbeddingStore::ncols(self)
    }
    #[inline]
    fn row(&self, r: usize) -> &[f64] {
        EmbeddingStore::row(self, r)
    }
}

/// A v5 artifact opened for out-of-core serving: the query-side state
/// decoded owned (meta, weights, labels, centroids, tombstones) and
/// the big sections left in the map. `artifact.embedding` is an empty
/// placeholder (rows live in `store`) and `artifact.laplacian` is an
/// empty `0 × n` matrix (queries never read it, and decoding it would
/// fault its pages).
#[derive(Debug)]
pub struct MappedArtifact {
    /// The query-side artifact state (embedding/laplacian empty).
    pub artifact: Artifact,
    /// The mapped row store (norms included).
    pub store: EmbeddingStore,
}

/// Per-backend memory accounting for `/stats` and `/metrics`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreMemory {
    /// Heap bytes pinned by resident stores (embeddings + norms).
    pub owned_bytes: u64,
    /// Bytes of mapped address space (page-cache backed, reclaimable).
    pub mapped_bytes: u64,
    /// Store kind per shard slot: `"owned"`, `"mapped"`, or `"-"`
    /// (not resident). Monolithic backends report one entry.
    pub stores: Vec<String>,
    /// How `--max-resident` is enforced: `"none"` (no budget),
    /// `"evict"` (owned shards are dropped), or `"madvise"` (mapped
    /// shards get a page-cache hint instead).
    pub resident_hint: String,
}

/// Opens a monolithic v5 artifact memory-mapped.
///
/// # Errors
/// [`ServeError::InvalidArgument`] on platforms without mmap support
/// or for pre-v5 files (callers fall back to [`Artifact::load`]);
/// [`ServeError::Corrupt`] for malformed files; I/O errors from the
/// open/map syscalls.
#[cfg(all(target_os = "linux", target_endian = "little"))]
pub fn open_mapped(path: &Path) -> Result<MappedArtifact> {
    let file = std::fs::File::open(path)?;
    let map = crate::sys::Mmap::map_file(&file)?;
    mapped_from(map)
}

/// Stub for platforms without mmap support: always errors, callers
/// fall back to owned loading.
#[cfg(not(all(target_os = "linux", target_endian = "little")))]
pub fn open_mapped(path: &Path) -> Result<MappedArtifact> {
    let _ = path;
    Err(ServeError::InvalidArgument(
        "memory-mapped serving requires Linux on a little-endian target".into(),
    ))
}

/// Opens shard `idx` of a sharded layout memory-mapped, cross-checking
/// the manifest entry (file size; row range and graph shape). Stale
/// entries (pending rebase) and non-v5 files are rejected — the router
/// falls back to the owned `read_shard` path for those.
///
/// # Errors
/// See [`open_mapped`]; additionally [`ServeError::Corrupt`] when the
/// file disagrees with its manifest entry.
pub fn open_shard_mapped(
    dir: &Path,
    manifest: &ShardManifest,
    idx: usize,
) -> Result<MappedArtifact> {
    let entry = &manifest.shards[idx];
    let fail = |msg: String| ServeError::Corrupt(format!("shard {idx} ({}): {msg}", entry.file));
    if entry.is_stale() {
        return Err(ServeError::InvalidArgument(format!(
            "shard {idx} is stale (pending rebase) and cannot be served mapped"
        )));
    }
    let opened = open_mapped(&dir.join(&entry.file))?;
    let m = &opened.artifact.meta;
    if entry.bytes != 0 && opened.store.mapped_bytes() != entry.bytes {
        return Err(fail(format!(
            "file is {} bytes, manifest says {}",
            opened.store.mapped_bytes(),
            entry.bytes
        )));
    }
    if m.row_start != entry.row_start || m.row_end != entry.row_end {
        return Err(fail(format!(
            "covers rows {}..{}, manifest says {}..{}",
            m.row_start, m.row_end, entry.row_start, entry.row_end
        )));
    }
    if m.n != manifest.n
        || m.k != manifest.k
        || m.dim != manifest.dim
        || m.dataset != manifest.dataset
    {
        return Err(fail("shard metadata disagrees with the manifest".into()));
    }
    Ok(opened)
}

/// Builds a [`MappedArtifact`] from a fresh map: parses and verifies
/// the v5 head, checks the small sections' CRCs, decodes the
/// query-side state, and validates every invariant the engine relies
/// on — without touching a single laplacian or embedding page.
#[cfg(all(target_os = "linux", target_endian = "little"))]
fn mapped_from(map: crate::sys::Mmap) -> Result<MappedArtifact> {
    use crate::artifact::parse_v5_head;
    use bytes::Buf;

    let fail = |msg: String| ServeError::Corrupt(msg);
    let head = parse_v5_head(map.as_slice())?;
    head.verify_head_crc(map.as_slice())?;
    let raw = map.as_slice();
    let meta = head.meta.clone();
    let rows = meta.rows();

    // Small sections: CRC then decode, owned. Section ids are fixed
    // by parse_v5_head (1 = laplacian, 2 = labels, 3 = centroids,
    // 4 = norms, 5 = embedding).
    let verified = |i: usize| -> Result<&[u8]> {
        let s = head.sections[i];
        let payload = &raw[s.offset..s.offset + s.len];
        if crate::artifact::crc32(payload) != s.crc32 {
            return Err(fail(format!(
                "{} section checksum mismatch (bytes were altered)",
                s.name()
            )));
        }
        Ok(payload)
    };
    let mut lab = bytes::Bytes::from(verified(1)?.to_vec());
    if lab.remaining() < 8 {
        return Err(fail("truncated label count".into()));
    }
    let num_labels = lab.get_u64() as usize;
    let labels = mvag_data::codec::get_u32s(&mut lab, num_labels)
        .ok_or_else(|| fail("truncated labels".into()))?;
    if lab.remaining() != 0 {
        return Err(fail("trailing bytes in the label section".into()));
    }
    let mut cen = bytes::Bytes::from(verified(2)?.to_vec());
    if cen.remaining() < 16 {
        return Err(fail("centroids: truncated header".into()));
    }
    let c_rows = cen.get_u64() as usize;
    let c_cols = cen.get_u64() as usize;
    let count = c_rows
        .checked_mul(c_cols)
        .ok_or_else(|| fail("centroids: shape overflow".into()))?;
    let data = mvag_data::codec::get_f64s(&mut cen, count)
        .ok_or_else(|| fail("centroids: truncated data".into()))?;
    let centroids =
        DenseMatrix::from_vec(c_rows, c_cols, data).map_err(|e| fail(format!("centroids: {e}")))?;

    // Big sections: geometry only (length must frame rows exactly and
    // sit 8-byte aligned — guaranteed by the 64-byte section
    // alignment, revalidated by the checked borrow).
    let norms_s = head.sections[3];
    let emb_s = head.sections[4];
    if map.f64_slice(norms_s.offset, rows).is_none() || norms_s.len != rows * 8 {
        return Err(fail(
            "norms section length does not match the row count".into(),
        ));
    }
    let emb_count = rows
        .checked_mul(meta.dim)
        .ok_or_else(|| fail("embedding shape overflow".into()))?;
    if map.f64_slice(emb_s.offset, emb_count).is_none() || emb_s.len != emb_count * 8 {
        return Err(fail(
            "embedding section length does not match rows × dim".into(),
        ));
    }

    // Engine invariants normally enforced by Artifact::validate()
    // (which cannot run here: the embedding stays in the map).
    validate_query_state(&meta, &labels, &centroids, &head.weights, &head.tombstones)?;

    let artifact = Artifact {
        meta,
        weights: head.weights.clone(),
        laplacian: CsrMatrix::from_raw_parts(0, head.meta.n, vec![0], Vec::new(), Vec::new())
            .map_err(|e| fail(format!("placeholder laplacian: {e}")))?,
        labels,
        centroids,
        embedding: DenseMatrix::zeros(0, 0),
        tombstones: head.tombstones,
    };
    let store = EmbeddingStore::Mapped(MappedStore {
        map,
        rows,
        dim: artifact.meta.dim,
        norms_offset: norms_s.offset,
        emb_offset: emb_s.offset,
    });
    // Serving is point lookups; readahead would fault pages queries
    // never asked for.
    store.advise_random();
    Ok(MappedArtifact { artifact, store })
}

/// The subset of [`Artifact::validate`] the mapped path can and must
/// check: everything except the laplacian/embedding shapes (the
/// former is skipped entirely, the latter is framed by the section
/// geometry checks above).
fn validate_query_state(
    meta: &ArtifactMeta,
    labels: &[usize],
    centroids: &DenseMatrix,
    weights: &[f64],
    tombstones: &[usize],
) -> Result<()> {
    let fail = |msg: String| Err(ServeError::Corrupt(msg));
    if meta.row_start > meta.row_end || meta.row_end > meta.n {
        return fail(format!(
            "row range {}..{} outside 0..{}",
            meta.row_start, meta.row_end, meta.n
        ));
    }
    let rows = meta.rows();
    if labels.len() != rows {
        return fail(format!("{} labels for {rows} rows in range", labels.len()));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= meta.k) {
        return fail(format!("label {bad} >= k = {}", meta.k));
    }
    if centroids.nrows() != meta.k || centroids.ncols() != meta.dim {
        return fail(format!(
            "centroids are {}x{} for k = {}, dim = {}",
            centroids.nrows(),
            centroids.ncols(),
            meta.k,
            meta.dim
        ));
    }
    if weights.is_empty() {
        return fail("no view weights".to_string());
    }
    for pair in tombstones.windows(2) {
        if pair[0] >= pair[1] {
            return fail(format!(
                "tombstones not strictly increasing ({} then {})",
                pair[0], pair[1]
            ));
        }
    }
    if let (Some(&first), Some(&last)) = (tombstones.first(), tombstones.last()) {
        if first < meta.row_start || last >= meta.row_end {
            return fail(format!(
                "tombstones {first}..={last} outside the row range {}..{}",
                meta.row_start, meta.row_end
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrainConfig;

    fn small_artifact() -> Artifact {
        let mvag = mvag_graph::toy::toy_mvag(60, 2, 11);
        let mut config = TrainConfig::default();
        config.embed.dim = 8;
        Artifact::train(&mvag, &config).unwrap()
    }

    #[test]
    fn owned_store_serves_rows_and_norms() {
        let a = small_artifact();
        let store = EmbeddingStore::owned(a.embedding.clone(), None);
        assert_eq!(store.kind(), "owned");
        assert!(!store.is_mapped());
        assert_eq!(store.nrows(), 60);
        assert_eq!(store.ncols(), 8);
        assert_eq!(store.row(13), a.embedding.row(13));
        assert_eq!(store.norms().len(), 60);
        assert_eq!(
            store.norms()[13].to_bits(),
            vecops::norm2(a.embedding.row(13)).to_bits()
        );
        assert!(store.owned_bytes() > 0);
        assert_eq!(store.mapped_bytes(), 0);
        assert!(!store.advise_dontneed(), "owned stores have no pages");
        // Precomputed norms are taken verbatim.
        let canned: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let store = EmbeddingStore::owned(a.embedding.clone(), Some(canned.clone()));
        assert_eq!(store.norms(), &canned[..]);
    }

    #[cfg(all(target_os = "linux", target_endian = "little"))]
    #[test]
    fn mapped_store_is_bit_identical_to_owned() {
        let mut a = small_artifact();
        a.tombstones = vec![5, 41];
        let dir = std::env::temp_dir().join(format!("sgla-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.sgla");
        a.save(&path).unwrap();

        let opened = open_mapped(&path).unwrap();
        assert_eq!(opened.store.kind(), "mapped");
        assert!(opened.store.is_mapped());
        assert_eq!(opened.store.owned_bytes(), 0);
        assert_eq!(
            opened.store.mapped_bytes(),
            std::fs::metadata(&path).unwrap().len()
        );
        assert_eq!(opened.artifact.meta, a.meta);
        assert_eq!(opened.artifact.labels, a.labels);
        assert_eq!(opened.artifact.centroids, a.centroids);
        assert_eq!(opened.artifact.tombstones, a.tombstones);
        assert_eq!(opened.artifact.weights, a.weights);
        for r in 0..60 {
            let owned_row = a.embedding.row(r);
            let mapped_row = opened.store.row(r);
            assert_eq!(
                owned_row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                mapped_row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "row {r}"
            );
            assert_eq!(
                opened.store.norms()[r].to_bits(),
                vecops::norm2(owned_row).to_bits(),
                "norm {r}"
            );
        }
        // Page-cache hints are accepted on a live map.
        assert!(opened.store.advise_dontneed());
        assert_eq!(opened.store.row(30), a.embedding.row(30));

        // Pre-v5 files are rejected (callers fall back to owned).
        let v4_path = dir.join("toy-v4.sgla");
        std::fs::write(&v4_path, a.encode_v4().unwrap().as_ref()).unwrap();
        assert!(open_mapped(&v4_path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(all(target_os = "linux", target_endian = "little"))]
    #[test]
    fn mapped_open_detects_small_section_corruption_but_not_padding() {
        let a = small_artifact();
        let dir = std::env::temp_dir().join(format!("sgla-store-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.sgla");
        a.save(&path).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let head = crate::artifact::parse_v5_head(&raw).unwrap();

        // A flipped byte in the labels payload fails the eager
        // per-section CRC even though the mapped path never computes
        // the whole-body CRC.
        let mut bad = raw.clone();
        bad[head.sections[1].offset + 9] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        let err = open_mapped(&path).unwrap_err();
        assert!(err.to_string().contains("labels section checksum"), "{err}");

        // A flipped byte in the head fails the head CRC (flip a
        // reserved section-table word so parsing itself still
        // succeeds).
        let table_at = head.head_end - 4 - 5 * 32;
        let mut bad = raw.clone();
        bad[table_at + 4] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        let err = open_mapped(&path).unwrap_err();
        assert!(err.to_string().contains("head checksum"), "{err}");

        // A flipped byte in inter-section *padding* is invisible to
        // the mapped fast path (the owned decoder still rejects it via
        // the whole-body CRC) — the documented trade-off.
        let pad_at = head.sections[0].offset - 1;
        assert_eq!(raw[pad_at], 0);
        let mut bad = raw.clone();
        bad[pad_at] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert!(
            open_mapped(&path).is_ok(),
            "padding is outside the mapped trust boundary"
        );
        assert!(Artifact::load(&path).is_err(), "owned path still rejects");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(all(target_os = "linux", target_endian = "little"))]
    #[test]
    fn mapped_open_rejects_truncation_and_misaligned_sections() {
        let a = small_artifact();
        let dir = std::env::temp_dir().join(format!("sgla-store-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.sgla");
        a.save(&path).unwrap();
        let raw = std::fs::read(&path).unwrap();

        // Every strided prefix (plus all short ones) must error
        // cleanly: the mapped open's bounds come from the parsed head,
        // so a file cut anywhere — mid-header, mid-table, mid-section
        // — must never produce an out-of-bounds borrow or a panic.
        let cut = dir.join("cut.sgla");
        for len in (0..raw.len()).step_by(97).chain(1..32) {
            std::fs::write(&cut, &raw[..len]).unwrap();
            assert!(open_mapped(&cut).is_err(), "prefix of {len} mapped");
        }

        // A section offset bent off its 64-byte alignment fails the
        // head's structural validation before any payload page is
        // touched (no CRC re-stamping needed: geometry is checked
        // first).
        let head = crate::artifact::parse_v5_head(&raw).unwrap();
        let table_at = head.head_end - 4 - 5 * 32;
        let emb_entry = table_at + 4 * 32;
        let mut bad = raw.clone();
        let off = u64::from_be_bytes(bad[emb_entry + 8..emb_entry + 16].try_into().unwrap());
        bad[emb_entry + 8..emb_entry + 16].copy_from_slice(&(off + 8).to_be_bytes());
        std::fs::write(&path, &bad).unwrap();
        let err = open_mapped(&path).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(_)), "unexpected {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

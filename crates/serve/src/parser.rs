//! HTTP/1.1 request parsing, shared by both server backends.
//!
//! Two entry points over the same grammar and limits:
//!
//! * [`read_request`] — the blocking one-shot reader used by the
//!   threaded backend: pulls one request off a `BufReader`, waiting
//!   for bytes as needed.
//! * [`parse_request`] — the incremental parser used by the evented
//!   backend: inspects a byte buffer as it stands and answers
//!   [`Parse::Complete`], [`Parse::Partial`] (keep reading), or
//!   [`Parse::Bad`] (answer 400 and close). It never blocks and never
//!   commits to a partial request, so it tolerates requests split at
//!   any byte boundary and pipelined requests back to back — calling
//!   it again on the remainder after [`Parse::Complete`] yields the
//!   next request.
//!
//! Both enforce the same caps ([`MAX_HEADER_BYTES`], [`MAX_BODY`]),
//! reject `Transfer-Encoding` with the same message, and produce the
//! same [`Request`] for the same bytes — a property pinned down by the
//! `parser_proptests` suite, which diffs them at every split point.

use std::io::{BufRead, BufReader, Read};

/// 8 KiB cap on the request line plus all headers combined: hostile
/// clients must not grow server memory by streaming an endless header
/// section (the body has its own [`MAX_BODY`] cap).
pub const MAX_HEADER_BYTES: usize = 8 << 10;

/// 4 MiB request-body cap: the only body-bearing endpoint is `/embed`,
/// whose batches are node-id lists.
pub const MAX_BODY: usize = 4 << 20;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Path component of the request target (before any `?`).
    pub path: String,
    /// Raw query string (after `?`), empty when absent.
    pub query: String,
    /// Request body (`Content-Length` bytes).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by a `Connection` header).
    pub keep_alive: bool,
    /// Client-supplied `X-Request-Id` header, sanitized (at most
    /// [`MAX_REQUEST_ID_LEN`] bytes of `[A-Za-z0-9._-]`). `None` when
    /// absent or rejected — the server mints its own id then.
    pub client_id: Option<String>,
}

/// Longest client-supplied `X-Request-Id` the server will echo back;
/// longer (or otherwise malformed) ids are ignored, not truncated, so
/// an id either round-trips exactly or not at all.
pub const MAX_REQUEST_ID_LEN: usize = 64;

/// Validates a client-supplied request id: 1 to
/// [`MAX_REQUEST_ID_LEN`] bytes drawn from `[A-Za-z0-9._-]`. The
/// charset keeps ids safe to echo into response headers, JSON bodies,
/// and log lines without escaping.
pub fn sanitize_request_id(value: &str) -> Option<String> {
    let ok = !value.is_empty()
        && value.len() <= MAX_REQUEST_ID_LEN
        && value
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
    ok.then(|| value.to_string())
}

/// Outcome of one [`parse_request`] attempt over a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// A full request; `.1` is how many bytes of the buffer it
    /// consumed (the remainder may hold pipelined follow-ups).
    Complete(Request, usize),
    /// The buffer holds a valid prefix; more bytes are needed.
    Partial,
    /// The bytes can never become a valid request: answer 400 with
    /// this message and close the connection.
    Bad(String),
}

/// One header-section line pulled out of the buffer, budget-charged.
enum Line<'a> {
    /// The line without its terminator, trimmed of trailing whitespace.
    Some(&'a str),
    /// No full line in the buffer yet (within budget).
    NeedMore,
    /// No newline within the remaining budget — the header section can
    /// only get too large from here.
    TooBig,
}

/// Finds the next LF-terminated line at `pos`, charging its length
/// (including the terminator) against `budget` — the same accounting
/// as the blocking reader's `take(budget + 1)` guard.
fn next_line<'a>(buf: &'a [u8], pos: &mut usize, budget: &mut usize) -> Result<Line<'a>, String> {
    let window = &buf[*pos..];
    let limit = window.len().min(*budget + 1);
    match window[..limit].iter().position(|&b| b == b'\n') {
        Some(idx) => {
            let n = idx + 1;
            let raw = &window[..idx]; // terminator stripped
            *budget -= n.min(*budget);
            *pos += n;
            let line = std::str::from_utf8(raw).map_err(|_| "header not UTF-8".to_string())?;
            Ok(Line::Some(line.trim_end()))
        }
        None if window.len() > *budget => Ok(Line::TooBig),
        None => Ok(Line::NeedMore),
    }
}

/// Parsed header section (everything before the body).
struct Head {
    method: String,
    target: String,
    keep_alive: bool,
    content_length: usize,
    client_id: Option<String>,
}

/// Parses the request line and headers starting at `pos`. `Ok(None)`
/// means the buffer ran out before the blank line (keep reading).
fn parse_head(buf: &[u8], pos: &mut usize) -> Result<Option<Head>, String> {
    let mut budget = MAX_HEADER_BYTES;
    let too_big = || "header section too large or truncated".to_string();
    let line = match next_line(buf, pos, &mut budget)? {
        Line::Some(line) => line,
        Line::NeedMore => return Ok(None),
        Line::TooBig => return Err(too_big()),
    };
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v),
        _ => return Err("malformed request line".to_string()),
    };
    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version.eq_ignore_ascii_case("HTTP/1.1");
    let mut client_id = None;
    loop {
        let header = match next_line(buf, pos, &mut budget)? {
            Line::Some(line) => line,
            Line::NeedMore => return Ok(None),
            Line::TooBig => return Err(too_big()),
        };
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| "bad content-length".to_string())?;
                if content_length > MAX_BODY {
                    return Err("body too large".to_string());
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // Chunked bodies are not implemented; accepting the
                // request while ignoring the header would desync the
                // keep-alive stream (the body would be parsed as the
                // next request), so reject explicitly.
                return Err(
                    "transfer-encoding not supported (send a content-length body)".to_string(),
                );
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("x-request-id") {
                client_id = sanitize_request_id(value);
            }
        }
    }
    Ok(Some(Head {
        method,
        target,
        keep_alive,
        content_length,
        client_id,
    }))
}

/// Attempts to parse one request from the front of `buf` without
/// consuming it — the caller drains the reported byte count on
/// [`Parse::Complete`]. Stateless: re-parsing a grown buffer repeats
/// the (cheap, allocation-light) scan from the start, which keeps
/// torn-request handling trivially correct.
pub fn parse_request(buf: &[u8]) -> Parse {
    let mut pos = 0usize;
    let head = match parse_head(buf, &mut pos) {
        Ok(Some(head)) => head,
        Ok(None) => return Parse::Partial,
        Err(msg) => return Parse::Bad(msg),
    };
    if buf.len() - pos < head.content_length {
        return Parse::Partial;
    }
    let body = buf[pos..pos + head.content_length].to_vec();
    let (path, query) = split_target(head.target);
    Parse::Complete(
        Request {
            method: head.method,
            path,
            query,
            body,
            keep_alive: head.keep_alive,
            client_id: head.client_id,
        },
        pos + head.content_length,
    )
}

fn split_target(target: String) -> (String, String) {
    match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    }
}

/// Reads one CRLF/LF-terminated line, charging it against `budget`.
/// `Ok(None)` means clean EOF before any byte; a line that exhausts
/// the budget or hits EOF mid-line is an error.
fn read_line_limited<R: Read>(
    reader: &mut BufReader<R>,
    budget: &mut usize,
) -> std::io::Result<Option<String>> {
    let mut raw = Vec::new();
    let n = reader
        .by_ref()
        .take(*budget as u64 + 1)
        .read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None);
    }
    if raw.last() != Some(&b'\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "header section too large or truncated",
        ));
    }
    *budget -= n.min(*budget);
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "header not UTF-8"))
}

/// Blocking one-shot reader: pulls one request off `reader`, waiting
/// for bytes as the transport delivers them. `Ok(None)` is a clean EOF
/// before any request byte (keep-alive connection closed between
/// requests). Same grammar, limits, and error messages as
/// [`parse_request`].
///
/// # Errors
/// Transport errors, plus `InvalidData` for malformed or over-limit
/// requests and `UnexpectedEof` for connections torn mid-request.
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> std::io::Result<Option<Request>> {
    let invalid = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut budget = MAX_HEADER_BYTES;
    let Some(line) = read_line_limited(reader, &mut budget)? else {
        return Ok(None);
    };
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v.to_string()),
        _ => return Err(invalid("malformed request line")),
    };
    let mut content_length = 0usize;
    let mut keep_alive = version.eq_ignore_ascii_case("HTTP/1.1");
    let mut client_id = None;
    loop {
        let Some(header) = read_line_limited(reader, &mut budget)? else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof inside headers",
            ));
        };
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| invalid("bad content-length"))?;
                if content_length > MAX_BODY {
                    return Err(invalid("body too large"));
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(invalid(
                    "transfer-encoding not supported (send a content-length body)",
                ));
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("x-request-id") {
                client_id = sanitize_request_id(value);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let (path, query) = split_target(target);
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        keep_alive,
        client_id,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_get_with_query() {
        let raw = b"GET /topk/3?k=5 HTTP/1.1\r\nhost: x\r\n\r\n";
        let Parse::Complete(req, consumed) = parse_request(raw) else {
            panic!("expected complete");
        };
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/topk/3");
        assert_eq!(req.query, "k=5");
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_body_and_pipelined_follow_up() {
        let raw =
            b"POST /embed HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcdGET /healthz HTTP/1.1\r\n\r\n";
        let Parse::Complete(req, consumed) = parse_request(raw) else {
            panic!("expected complete");
        };
        assert_eq!(req.body, b"abcd");
        let Parse::Complete(next, rest) = parse_request(&raw[consumed..]) else {
            panic!("expected pipelined follow-up");
        };
        assert_eq!(next.path, "/healthz");
        assert_eq!(consumed + rest, raw.len());
    }

    #[test]
    fn every_prefix_is_partial_until_complete() {
        let raw = b"POST /embed HTTP/1.1\r\ncontent-length: 3\r\nconnection: close\r\n\r\nxyz";
        let Parse::Complete(req, consumed) = parse_request(raw) else {
            panic!("expected complete");
        };
        assert_eq!(consumed, raw.len());
        assert!(!req.keep_alive);
        for cut in 0..raw.len() {
            assert_eq!(parse_request(&raw[..cut]), Parse::Partial, "cut {cut}");
        }
    }

    #[test]
    fn bad_inputs_are_bad_never_partial() {
        assert!(matches!(
            parse_request(b"nonsense\r\n\r\n"),
            Parse::Bad(msg) if msg.contains("request line")
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\ncontent-length: eleven\r\n\r\n"),
            Parse::Bad(msg) if msg.contains("content-length")
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n"),
            Parse::Bad(msg) if msg.contains("too large")
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            Parse::Bad(msg) if msg.contains("transfer-encoding")
        ));
        assert!(matches!(
            parse_request(b"GET /\xff\xfe HTTP/1.1\r\n\r\n"),
            Parse::Bad(msg) if msg.contains("UTF-8")
        ));
    }

    #[test]
    fn oversized_header_section_is_bad() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(b"x-junk: ");
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES));
        // No terminator yet, but the budget is already unreachable.
        assert!(matches!(parse_request(&raw), Parse::Bad(_)));
    }

    #[test]
    fn client_request_id_is_captured_and_sanitized() {
        let raw: &[u8] = b"GET /healthz HTTP/1.1\r\nX-Request-Id: trace-42.a_b\r\n\r\n";
        let Parse::Complete(req, _) = parse_request(raw) else {
            panic!("expected complete");
        };
        assert_eq!(req.client_id.as_deref(), Some("trace-42.a_b"));
        let mut reader = BufReader::new(std::io::Cursor::new(raw));
        let blocking = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(blocking, req, "both parsers capture the id identically");

        // Malformed ids are dropped, not truncated or escaped.
        for bad in [
            "has space",
            "quote\"inject",
            "",
            &"x".repeat(MAX_REQUEST_ID_LEN + 1),
        ] {
            assert_eq!(sanitize_request_id(bad), None, "{bad:?}");
        }
        let longest = "y".repeat(MAX_REQUEST_ID_LEN);
        assert_eq!(sanitize_request_id(&longest).as_deref(), Some(&*longest));
        let raw = b"GET / HTTP/1.1\r\nx-request-id: bad id!\r\n\r\n";
        let Parse::Complete(req, _) = parse_request(raw) else {
            panic!("expected complete");
        };
        assert_eq!(req.client_id, None);
    }

    #[test]
    fn blocking_reader_matches_incremental() {
        let raw: &[u8] =
            b"POST /embed?x=1 HTTP/1.0\r\ncontent-length: 2\r\nconnection: keep-alive\r\n\r\nok";
        let Parse::Complete(incremental, consumed) = parse_request(raw) else {
            panic!("expected complete");
        };
        assert_eq!(consumed, raw.len());
        let mut reader = BufReader::new(std::io::Cursor::new(raw));
        let blocking = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(blocking, incremental);
        assert!(blocking.keep_alive, "explicit keep-alive on HTTP/1.0");
    }
}

//! Dependency-light HTTP/1.1 JSON front end over [`QueryEngine`].
//!
//! Built directly on `std::net`: an acceptor thread hands connections
//! to a fixed worker pool over a channel; each worker speaks enough
//! HTTP/1.1 (request line, headers, `Content-Length` bodies,
//! keep-alive) to serve the query API. Graceful shutdown: a flag plus
//! a self-connect to unblock `accept`, then the pool drains.
//!
//! Endpoints:
//!
//! | Method/path            | Answer                                     |
//! |------------------------|--------------------------------------------|
//! | `GET /healthz`         | liveness + artifact name                   |
//! | `GET /stats`           | per-endpoint latency/QPS counters (add     |
//! |                        | `?reset=true` for reset-on-read deltas)    |
//! | `GET /metrics`         | Prometheus text exposition (cumulative)    |
//! | `GET /artifact`        | artifact metadata + learned view weights   |
//! | `GET /cluster/{node}`  | cluster assignment + centroid distance     |
//! | `GET /topk/{node}?k=K` | K nearest nodes by embedding cosine;       |
//! |                        | `&mode=approx[&nprobe=N]` probes the IVF   |
//! |                        | index instead of scanning every row        |
//! | `POST /embed`          | `{"nodes":[...]}` → embedding rows         |
//! | `POST /reload`         | re-load the artifact and hot-swap it in    |
//! |                        | (reloadable servers only — see             |
//! |                        | [`Server::start_reloadable`])              |
//! | `GET /traces?n=K`      | the K most recent request traces (span     |
//! |                        | trees from the `mvag_obs` ring buffer)     |
//! | `GET /traces/slow`     | recent requests slower than                |
//! |                        | `?threshold_us=T` (trace-ring filter)      |
//! | `GET /health`          | SLO health state machine: `ok` /           |
//! |                        | `degraded` (HTTP 200) / `unhealthy` (503)  |
//! | `GET /version`         | crate version, supported artifact/delta    |
//! |                        | format versions, uptime                    |
//! | `GET /debug/slow_queries` | captured slow queries with cost         |
//! |                        | profiles (`?drain=1` empties the ring)     |
//! | `PUT /debug/slow_threshold` | live-tune the slow-query threshold    |
//! | `PUT /debug/slo`       | live-tune the SLO objectives               |
//!
//! The query endpoints (`/cluster`, `/topk`, `/embed`) accept
//! `?explain=1`: the response carries a `"cost"` object — the query's
//! [`QueryCost`] profile — spliced onto the *identical* answer bytes,
//! so EXPLAIN can never perturb a result.
//!
//! Top-k requests go through the [`Batcher`], so concurrent clients
//! are micro-batched into shared kernel passes (exact and approx
//! queries each share passes with their own kind).
//!
//! Every response (including early 400s for malformed requests and
//! 5xx error paths) carries an `x-request-id` header: a sanitized
//! client-supplied `X-Request-Id` is echoed back verbatim (and hashed
//! into the trace id), otherwise a minted `req-<16 hex digits>`; with
//! [`ServerConfig::trace`] enabled the same id keys the request's
//! span tree in `/traces`.

use crate::backend::QueryBackend;
use crate::batch::Batcher;
use crate::cost::QueryCost;
use crate::engine::QueryEngine;
use crate::metrics::{ConnGauges, MetricsRegistry};
use crate::parser::{self, Request};
use crate::slo::SloTracker;
use crate::slowlog::{SlowQuery, SlowQueryLog};
use crate::swap::HotSwapBackend;
use crate::{Result, ServeError};
use mvag_data::json::{self, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which transport backend a [`Server`] runs connections on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeBackend {
    /// Thread-per-connection over blocking `std::net`: an acceptor
    /// thread hands sockets to a fixed worker pool. Simple, portable,
    /// and kept as the correctness oracle — but an idle keep-alive
    /// client pins a worker, so concurrency caps at the pool size.
    #[default]
    Threaded,
    /// Single-threaded epoll readiness loop (Linux only): one loop
    /// thread owns all connection I/O, compute runs on an executor
    /// pool, and idle connections cost one epoll registration — see
    /// the `evented` module.
    Evented,
}

impl ServeBackend {
    /// The label `/stats` reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ServeBackend::Threaded => "threaded",
            ServeBackend::Evented => "evented",
        }
    }
}

impl std::str::FromStr for ServeBackend {
    type Err = String;

    fn from_str(raw: &str) -> std::result::Result<ServeBackend, String> {
        match raw {
            "threaded" => Ok(ServeBackend::Threaded),
            "evented" => Ok(ServeBackend::Evented),
            other => Err(format!("unknown backend '{other}' (threaded or evented)")),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: SocketAddr,
    /// Transport backend (see [`ServeBackend`]).
    pub backend: ServeBackend,
    /// Threaded backend: worker threads handling connections.
    /// Defaults to the unified
    /// `mvag_sparse::parallel::default_threads()` sizing (≤ 16,
    /// `SGLA_THREADS` override) with a floor of 4: connection handlers
    /// are I/O-bound, and on a 1–2 core host a single idle keep-alive
    /// client must not pin the only worker. The evented backend
    /// spawns this many compute executors instead (its I/O needs no
    /// threads).
    pub workers: usize,
    /// Upper bound on queries absorbed into one top-k kernel pass.
    pub max_batch: usize,
    /// Per-connection read timeout; on the evented backend this is
    /// the idle timeout after which silent connections are reaped
    /// (half-sent requests get a 408).
    pub read_timeout: Duration,
    /// Evented backend: cap on simultaneously open connections —
    /// accepts beyond it are answered with a best-effort 503 and
    /// closed (load shedding). `0` means unlimited.
    pub max_connections: usize,
    /// Enable request tracing at startup (`mvag_obs::set_enabled`):
    /// every request records a span tree served back on `/traces`.
    /// Off by default — the disabled instrumentation path is a single
    /// atomic load per site.
    pub trace: bool,
    /// Slow-query log threshold in microseconds: requests whose wall
    /// time meets it are captured (with their [`QueryCost`] and span
    /// tree) into the `GET /debug/slow_queries` ring. `0` disables
    /// capture. Live-tunable via `PUT /debug/slow_threshold`.
    pub slow_query_us: u64,
    /// SLO latency objective: the per-endpoint p99 (microseconds) the
    /// `/health` burn-rate math holds the server to. `0` disables the
    /// latency objective. Live-tunable via `PUT /debug/slo`.
    pub slo_p99_us: u64,
    /// SLO error-rate objective (fraction of requests allowed to fail,
    /// e.g. `0.001`). `0` disables the error objective. Live-tunable
    /// via `PUT /debug/slo`.
    pub slo_error_rate: f64,
    /// Rolling SLO window lengths in seconds, shortest first. The two
    /// shortest drive `/health`; all are exported as `sgla_slo_*`.
    pub slo_windows: Vec<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".parse().expect("static addr"),
            backend: ServeBackend::default(),
            workers: mvag_sparse::parallel::default_threads().max(4),
            max_batch: 64,
            read_timeout: Duration::from_secs(30),
            max_connections: 10_000,
            trace: false,
            slow_query_us: 10_000,
            slo_p99_us: 0,
            slo_error_rate: 0.0,
            slo_windows: vec![60, 300, 3600],
        }
    }
}

/// Builds a replacement backend for `POST /reload` — typically by
/// re-reading the artifact path the server was started with. Runs on
/// the request's worker thread; a failure leaves the old backend
/// serving untouched.
pub type BackendLoader = Box<dyn Fn() -> Result<Arc<dyn QueryBackend>> + Send + Sync>;

/// The hot-swap half of a reloadable server.
struct ReloadState {
    swap: Arc<HotSwapBackend>,
    loader: BackendLoader,
}

/// Result of the most recent `POST /reload`, remembered for `/health`:
/// a failed reload means the server is knowingly serving stale data.
pub(crate) struct ReloadOutcome {
    pub(crate) ok: bool,
    pub(crate) detail: String,
    pub(crate) at_secs: u64,
}

pub(crate) struct ServerShared {
    backend: Arc<dyn QueryBackend>,
    batcher: Batcher,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) stop: AtomicBool,
    /// Connection-level counters (accepts, open, timeouts, shed,
    /// buffer high-water marks) surfaced on `/stats` and `/metrics`.
    pub(crate) conns: ConnGauges,
    /// `Some` only for servers started via [`Server::start_reloadable`].
    reload: Option<ReloadState>,
    /// Which transport backend is serving (reported on `/stats`).
    backend_kind: ServeBackend,
    max_connections: usize,
    idle_timeout: Duration,
    /// Slow-query ring (`GET /debug/slow_queries`).
    pub(crate) slow_log: SlowQueryLog,
    /// Rolling SLO windows and objectives backing `/health`.
    pub(crate) slo: SloTracker,
    /// Most recent reload outcome, reflected in `/health`.
    last_reload: Mutex<Option<ReloadOutcome>>,
}

/// The backend-specific thread handles of a running server.
enum Runtime {
    Threaded {
        acceptor: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
    },
    #[cfg(target_os = "linux")]
    Evented(crate::evented::EventedRuntime),
}

/// A running server; dropping it (or calling [`Server::shutdown`])
/// stops the transport and drains in-flight requests.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    runtime: Runtime,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("backend", &self.shared.backend_kind)
            .finish()
    }
}

impl Server {
    /// Binds, spawns the worker pool, and starts accepting — serving a
    /// single in-memory [`QueryEngine`].
    ///
    /// # Errors
    /// [`ServeError::Io`] if the bind fails.
    pub fn start(engine: Arc<QueryEngine>, config: &ServerConfig) -> Result<Server> {
        Server::start_backend(engine, config)
    }

    /// Binds, spawns the worker pool, and starts accepting over any
    /// [`QueryBackend`] — a monolithic engine or a
    /// [`ShardRouter`](crate::router::ShardRouter).
    ///
    /// # Errors
    /// [`ServeError::Io`] if the bind fails.
    pub fn start_backend(backend: Arc<dyn QueryBackend>, config: &ServerConfig) -> Result<Server> {
        Server::start_inner(backend, None, config)
    }

    /// Starts a *reloadable* server: the initial backend comes from
    /// `loader()`, is wrapped in a [`HotSwapBackend`], and
    /// `POST /reload` re-runs the loader and atomically swaps the
    /// fresh backend in — in-flight queries finish on the backend they
    /// started on, and a failed reload leaves the old one serving.
    /// This is how a serving process picks up an incrementally updated
    /// artifact (`sgla-serve update` + `POST /reload`) with zero
    /// downtime.
    ///
    /// # Errors
    /// [`ServeError::Io`] if the bind fails; loader failures building
    /// the initial backend.
    pub fn start_reloadable(loader: BackendLoader, config: &ServerConfig) -> Result<Server> {
        let swap = Arc::new(HotSwapBackend::new(loader()?));
        let backend: Arc<dyn QueryBackend> = Arc::clone(&swap) as Arc<dyn QueryBackend>;
        Server::start_inner(backend, Some(ReloadState { swap, loader }), config)
    }

    fn start_inner(
        backend: Arc<dyn QueryBackend>,
        reload: Option<ReloadState>,
        config: &ServerConfig,
    ) -> Result<Server> {
        if config.trace {
            mvag_obs::set_enabled(true);
        }
        let listener = TcpListener::bind(config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            batcher: Batcher::new(Arc::clone(&backend), config.max_batch),
            backend,
            metrics: MetricsRegistry::new(),
            stop: AtomicBool::new(false),
            conns: ConnGauges::new(),
            reload,
            backend_kind: config.backend,
            max_connections: config.max_connections,
            idle_timeout: config.read_timeout,
            slow_log: SlowQueryLog::new(config.slow_query_us),
            slo: SloTracker::new(
                &config.slo_windows,
                config.slo_p99_us,
                config.slo_error_rate,
            ),
            last_reload: Mutex::new(None),
        });

        if config.backend == ServeBackend::Evented {
            #[cfg(target_os = "linux")]
            {
                let runtime = crate::evented::EventedRuntime::start(
                    listener,
                    Arc::clone(&shared),
                    config.workers.max(1),
                    config.max_connections,
                    config.read_timeout,
                )?;
                return Ok(Server {
                    local_addr,
                    shared,
                    runtime: Runtime::Evented(runtime),
                });
            }
            #[cfg(not(target_os = "linux"))]
            return Err(ServeError::Server(
                "the evented backend requires Linux (epoll); use ServeBackend::Threaded".into(),
            ));
        }

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = Arc::clone(&conn_rx);
            let shared_ref = Arc::clone(&shared);
            let read_timeout = config.read_timeout;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sgla-serve-{i}"))
                    .spawn(move || worker_loop(&rx, &shared_ref, read_timeout))
                    .map_err(|e| ServeError::Server(format!("spawn worker: {e}")))?,
            );
        }

        // Nonblocking accept loop: the acceptor polls the stop flag
        // instead of parking in accept(), so shutdown never depends on
        // being able to open a wake-up connection to itself.
        listener.set_nonblocking(true)?;
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("sgla-serve-accept".into())
            .spawn(move || {
                while !acceptor_shared.stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((s, _peer)) => {
                            acceptor_shared.conns.accepted();
                            // Connection sockets must block; they do
                            // not inherit nonblocking on all platforms,
                            // so set it explicitly.
                            if s.set_nonblocking(false).is_err() {
                                continue;
                            }
                            // Dropping the send side stops workers; a
                            // send failure means we're shutting down.
                            if conn_tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => continue,
                    }
                }
                // conn_tx drops here; workers drain and exit.
            })
            .map_err(|e| ServeError::Server(format!("spawn acceptor: {e}")))?;

        Ok(Server {
            local_addr,
            shared,
            runtime: Runtime::Threaded {
                acceptor: Some(acceptor),
                workers,
            },
        })
    }

    /// The actually-bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Metrics for this server.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// Graceful shutdown: stop accepting, drain workers, stop the
    /// batcher. In-flight requests finish; keep-alive connections are
    /// closed after their current request.
    pub fn shutdown(mut self) {
        self.stop_internal();
    }

    fn stop_internal(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        match &mut self.runtime {
            // The acceptor polls the stop flag (nonblocking accept),
            // and idle workers poll it between requests, so joins are
            // bounded.
            Runtime::Threaded { acceptor, workers } => {
                if let Some(acceptor) = acceptor.take() {
                    let _ = acceptor.join();
                }
                for worker in workers.drain(..) {
                    let _ = worker.join();
                }
            }
            // The eventfd kicks the loop out of epoll_wait; the loop
            // dropping its job queue releases the executors.
            #[cfg(target_os = "linux")]
            Runtime::Evented(runtime) => {
                runtime.wake();
                runtime.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_internal();
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    shared: &ServerShared,
    read_timeout: Duration,
) {
    loop {
        let stream = {
            let guard = rx.lock().expect("conn queue lock");
            guard.recv()
        };
        match stream {
            Ok(s) => handle_connection(s, shared, read_timeout),
            Err(_) => return, // acceptor gone: shutdown
        }
    }
}

/// Poll interval for idle keep-alive connections: workers waiting for
/// the next request wake this often to observe the shutdown flag, so
/// `Server::shutdown` never blocks on idle clients.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Poll interval of the nonblocking accept loop (bounds both accept
/// latency under no load and shutdown latency).
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Counts a connection open against the gauges and guarantees the
/// matching close on every exit path of `handle_connection`.
struct OpenScope<'a>(&'a ConnGauges);

impl Drop for OpenScope<'_> {
    fn drop(&mut self) {
        self.0.closed();
    }
}

fn handle_connection(stream: TcpStream, shared: &ServerShared, read_timeout: Duration) {
    shared.conns.opened();
    let _open = OpenScope(&shared.conns);
    let _ = stream.set_nodelay(true);
    let peer = stream.peer_addr().ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        // Idle phase: wait for the first byte of the next request
        // under a short timeout, re-checking the stop flag each wake.
        // A connection idle past `read_timeout` is closed so silent
        // clients cannot pin workers from the fixed pool forever.
        let _ = reader.get_ref().set_read_timeout(Some(IDLE_POLL));
        let idle_since = Instant::now();
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            match reader.fill_buf() {
                Ok([]) => return, // clean EOF between requests
                Ok(_) => break,   // request bytes waiting
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if idle_since.elapsed() >= read_timeout {
                        // Idle deadline: free the worker.
                        shared.conns.timed_out();
                        return;
                    }
                    continue;
                }
                Err(_) => return,
            }
        }
        // Request phase: the full read timeout applies.
        let _ = reader.get_ref().set_read_timeout(Some(read_timeout));
        let request = match parser::read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean EOF between requests
            Err(e) => {
                // Malformed request: answer 400 if the peer is still
                // there, then drop the connection. Even this path gets
                // a request id, so the failure is referenceable.
                let bytes = response_bytes(
                    400,
                    "Bad Request",
                    "application/json",
                    &error_body(&e.to_string()),
                    false,
                    mvag_obs::next_request_id(),
                );
                let _ = writer.write_all(&bytes);
                return;
            }
        };
        let _ = peer; // kept for future access logging
        let keep_alive = request.keep_alive && !shared.stop.load(Ordering::SeqCst);
        // One id per request: a sanitized client `X-Request-Id` hashes
        // to the trace id (so a caller can find its own spans), else a
        // fresh id is minted. It rides the response as `x-request-id`
        // and — when tracing is on — is the trace id every span of
        // this request attaches to, all the way down through the
        // batcher and the shard fan-out.
        let request_id = trace_id_for(&request);
        let bytes = process_request(&request, shared, request_id, Instant::now(), keep_alive);
        let written = writer.write_all(&bytes).and_then(|()| writer.flush());
        if written.is_err() || !keep_alive {
            return;
        }
    }
}

/// Cap on ids per `/embed` request, bounding the response to
/// `MAX_EMBED_NODES × dim` floats regardless of how many ids fit in
/// [`parser::MAX_BODY`].
const MAX_EMBED_NODES: usize = 4096;

/// Formats a request id the way it appears in the `x-request-id`
/// header and in `/traces` bodies.
fn format_request_id(id: u64) -> String {
    format!("req-{id:016x}")
}

/// Routes one parsed request, records its span tree and endpoint
/// metrics, and renders the full response — the single request path
/// both backends share (the threaded worker writes the bytes
/// directly; the evented executor queues them for the loop). Latency
/// is measured from `started`, which the caller sets at read/enqueue
/// time so queueing is part of the recorded number.
pub(crate) fn process_request(
    request: &Request,
    shared: &ServerShared,
    request_id: u64,
    started: Instant,
    keep_alive: bool,
) -> Vec<u8> {
    let (endpoint, status, body, cost) = mvag_obs::with_trace(request_id, || {
        let mut root = mvag_obs::span("serve.request");
        let out = route(request, shared);
        root.counter("status", u64::from(out.1));
        out
    });
    let elapsed = started.elapsed();
    let wall_us = elapsed.as_micros() as u64;
    if let Some(m) = shared.metrics.endpoint(endpoint) {
        m.record(elapsed, status < 400);
    }
    shared.slo.record(
        endpoint,
        shared.metrics.uptime_secs() as u64,
        wall_us,
        status < 400,
    );
    // The echoed id: the client's verbatim when one was supplied (its
    // hash is the trace id), the minted `req-…` form otherwise.
    let id_text = request
        .client_id
        .clone()
        .unwrap_or_else(|| format_request_id(request_id));
    if shared.slow_log.is_slow(wall_us) {
        let spans = if mvag_obs::enabled() {
            let mut spans = mvag_obs::snapshot();
            spans.retain(|s| s.trace == request_id);
            spans
        } else {
            Vec::new()
        };
        shared.slow_log.record(SlowQuery {
            request_id: id_text.clone(),
            endpoint,
            status,
            wall_us,
            threshold_us: shared.slow_log.threshold_us(),
            cost,
            spans,
            at_us: mvag_obs::now_us(),
        });
    }
    // The metrics page is the one non-JSON endpoint (Prometheus
    // text exposition format).
    let content_type = if endpoint == "metrics" && status == 200 {
        "text/plain; version=0.0.4"
    } else {
        "application/json"
    };
    response_bytes_for_id(
        status,
        reason_for(status),
        content_type,
        &body,
        keep_alive,
        &id_text,
    )
}

/// The canonical reason phrase for the statuses this server emits.
pub(crate) fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Renders a complete response (status line, headers, body) as one
/// byte vector — shared by the threaded writer, the evented staging
/// path, and the shed/timeout short-circuits.
pub(crate) fn response_bytes(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    request_id: u64,
) -> Vec<u8> {
    response_bytes_for_id(
        status,
        reason,
        content_type,
        body,
        keep_alive,
        &format_request_id(request_id),
    )
}

/// [`response_bytes`] with the `x-request-id` value already rendered —
/// the form the client-echo path uses (the id header carries the
/// caller's own sanitized `X-Request-Id` back verbatim).
pub(crate) fn response_bytes_for_id(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    request_id: &str,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\nx-request-id: {request_id}\r\n\r\n",
        body.len(),
    );
    let mut bytes = Vec::with_capacity(head.len() + body.len());
    bytes.extend_from_slice(head.as_bytes());
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

/// Trace id for a request: a sanitized client `X-Request-Id` hashes
/// deterministically (FNV-1a, forced nonzero — trace id 0 means "not
/// traced" throughout `mvag_obs`), so retries of the same logical
/// request land on the same trace; otherwise a fresh id is minted.
pub(crate) fn trace_id_for(request: &Request) -> u64 {
    match &request.client_id {
        Some(id) => {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in id.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h.max(1)
        }
        None => mvag_obs::next_request_id(),
    }
}

pub(crate) fn error_body(message: &str) -> String {
    Value::object(vec![("error", Value::from(message))]).to_string_compact()
}

/// Finishes a query endpoint's response: stamps the plain body's
/// length into the cost, then — only under `?explain=1` — splices the
/// cost object before the body's closing brace. The answer bytes are
/// byte-identical with and without explain (the splice appends, never
/// re-serializes), and `response_bytes` always reports the *plain*
/// body length, so a cost profile is comparable across both forms.
fn finish_cost(body: String, mut cost: QueryCost, query: &str) -> (String, Option<QueryCost>) {
    cost.response_bytes = body.len() as u64;
    if query_flag(query, "explain") && body.ends_with('}') {
        let spliced = format!("{},\"cost\":{}}}", &body[..body.len() - 1], cost.json());
        (spliced, Some(cost))
    } else {
        (body, Some(cost))
    }
}

/// Dispatches one request. Returns `(endpoint label, status, body,
/// cost)` — the cost is `Some` for the query endpoints (`/cluster`,
/// `/topk`, `/embed`) and feeds the slow-query log even when the
/// client did not ask for `?explain=1`.
fn route(
    request: &Request,
    shared: &ServerShared,
) -> (&'static str, u16, String, Option<QueryCost>) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => ("healthz", 200, healthz_body(shared), None),
        ("GET", ["health"]) => {
            let (status, body) = health_route(shared);
            ("health", status, body, None)
        }
        ("GET", ["version"]) => ("version", 200, version_body(shared), None),
        ("GET", ["stats"]) => (
            "stats",
            200,
            stats_body(shared, query_flag(&request.query, "reset")),
            None,
        ),
        ("GET", ["metrics"]) => ("metrics", 200, metrics_body(shared), None),
        ("GET", ["artifact"]) => ("artifact", 200, artifact_body(shared), None),
        ("GET", ["cluster", node]) => match parse_node(node) {
            Ok(node) => match shared.backend.cluster_of_costed(node) {
                (Ok(info), cost) => {
                    let body = Value::object(vec![
                        ("node", Value::from(info.node)),
                        ("cluster", Value::from(info.cluster)),
                        ("centroid_dist", Value::from(info.centroid_dist)),
                    ])
                    .to_string_compact();
                    let (body, cost) = finish_cost(body, cost, &request.query);
                    ("cluster", 200, body, cost)
                }
                // error_status: a bad query is 400; a shard-load fault
                // behind the router is 503 (transient, retryable).
                (Err(e), cost) => {
                    let (body, cost) =
                        finish_cost(error_body(&e.to_string()), cost, &request.query);
                    ("cluster", error_status(&e), body, cost)
                }
            },
            Err(msg) => ("cluster", 400, error_body(&msg), None),
        },
        ("GET", ["topk", node]) => match (parse_node(node), parse_topk_params(&request.query)) {
            (Ok(node), Ok(params)) => {
                let (answer, cost) = match params.mode {
                    TopKMode::Exact => shared.batcher.top_k_explained(node, params.k),
                    TopKMode::Approx => {
                        shared
                            .batcher
                            .top_k_approx_explained(node, params.k, params.nprobe)
                    }
                };
                match answer {
                    Ok(neighbors) => {
                        let items: Vec<Value> = neighbors
                            .iter()
                            .map(|nb| {
                                Value::object(vec![
                                    ("node", Value::from(nb.node)),
                                    ("score", Value::from(nb.score)),
                                ])
                            })
                            .collect();
                        let mode = match params.mode {
                            TopKMode::Exact => "exact",
                            TopKMode::Approx => "approx",
                        };
                        let body = Value::object(vec![
                            ("node", Value::from(node)),
                            ("k", Value::from(params.k)),
                            ("mode", Value::from(mode)),
                            ("neighbors", Value::Array(items)),
                        ])
                        .to_string_compact();
                        let (body, cost) = finish_cost(body, cost, &request.query);
                        ("topk", 200, body, cost)
                    }
                    Err(e) => {
                        let (body, cost) =
                            finish_cost(error_body(&e.to_string()), cost, &request.query);
                        ("topk", error_status(&e), body, cost)
                    }
                }
            }
            (Err(msg), _) | (_, Err(msg)) => ("topk", 400, error_body(&msg), None),
        },
        ("POST", ["embed"]) => embed_route(request, shared),
        ("POST", ["reload"]) => reload_route(shared),
        ("GET", ["traces"]) => ("traces", 200, traces_body(&request.query, false), None),
        ("GET", ["traces", "slow"]) => ("traces", 200, traces_body(&request.query, true), None),
        ("GET", ["debug", "slow_queries"]) => (
            "debug",
            200,
            slow_queries_body(shared, query_flag(&request.query, "drain")),
            None,
        ),
        ("PUT", ["debug", "slow_threshold"]) => {
            let (status, body) = slow_threshold_route(request, shared);
            ("debug", status, body, None)
        }
        ("PUT", ["debug", "slo"]) => {
            let (status, body) = slo_route(request, shared);
            ("debug", status, body, None)
        }
        (
            _,
            ["healthz" | "health" | "version" | "stats" | "metrics" | "artifact" | "embed"
            | "reload" | "traces"],
        )
        | (_, ["cluster" | "topk", _])
        | (_, ["debug", ..]) => ("other", 405, error_body("method not allowed"), None),
        _ => ("other", 404, error_body("no such endpoint"), None),
    }
}

/// `POST /reload`: rebuild the backend via the server's loader and
/// hot-swap it in. Only available on servers started with
/// [`Server::start_reloadable`]; a loader failure keeps the old
/// backend serving and reports 503 (the operator retries after fixing
/// the artifact on disk).
fn reload_route(shared: &ServerShared) -> (&'static str, u16, String, Option<QueryCost>) {
    let Some(reload) = &shared.reload else {
        return (
            "reload",
            400,
            error_body("this server was not started reloadable (no artifact path to re-read)"),
            None,
        );
    };
    match (reload.loader)() {
        Ok(next) => {
            let old = reload.swap.swap(next);
            let meta = shared.backend.meta();
            note_reload(shared, true, format!("reloaded n={}", meta.n));
            (
                "reload",
                200,
                Value::object(vec![
                    ("status", Value::from("reloaded")),
                    ("dataset", Value::from(meta.dataset.as_str())),
                    ("n", Value::from(meta.n)),
                    ("previous_n", Value::from(old.meta().n)),
                    ("update_count", Value::from(meta.update_count)),
                    ("swaps", Value::from(reload.swap.swap_count())),
                ])
                .to_string_compact(),
                None,
            )
        }
        Err(e) => {
            note_reload(shared, false, e.to_string());
            (
                "reload",
                503,
                error_body(&format!("reload failed, old artifact still serving: {e}")),
                None,
            )
        }
    }
}

/// Remembers the latest reload outcome for `/health` (a failed reload
/// means the server is knowingly serving a stale artifact).
fn note_reload(shared: &ServerShared, ok: bool, detail: String) {
    let outcome = ReloadOutcome {
        ok,
        detail,
        at_secs: shared.metrics.uptime_secs() as u64,
    };
    *shared.last_reload.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
}

fn embed_route(
    request: &Request,
    shared: &ServerShared,
) -> (&'static str, u16, String, Option<QueryCost>) {
    let parsed = std::str::from_utf8(&request.body)
        .ok()
        .and_then(|text| json::parse(text).ok());
    let Some(doc) = parsed else {
        return ("embed", 400, error_body("body must be JSON"), None);
    };
    let Some(node_vals) = doc.get("nodes").and_then(Value::as_array) else {
        return (
            "embed",
            400,
            error_body("body needs a \"nodes\" array"),
            None,
        );
    };
    // Response size is nodes × dim floats; without this cap a 4 MiB
    // body of repeated ids could demand a response of hundreds of MB.
    if node_vals.len() > MAX_EMBED_NODES {
        return (
            "embed",
            400,
            error_body(&format!(
                "at most {MAX_EMBED_NODES} nodes per embed request (got {})",
                node_vals.len()
            )),
            None,
        );
    }
    let mut nodes = Vec::with_capacity(node_vals.len());
    for v in node_vals {
        match v.as_usize() {
            Some(n) => nodes.push(n),
            None => {
                return (
                    "embed",
                    400,
                    error_body("nodes must be non-negative integers"),
                    None,
                )
            }
        }
    }
    match shared.backend.embed_batch_costed(&nodes) {
        (Ok(rows), cost) => {
            let rows: Vec<Value> = rows.into_iter().map(Value::from).collect();
            let dim = shared.backend.meta().dim;
            let body = Value::object(vec![
                ("nodes", Value::from(nodes)),
                ("dim", Value::from(dim)),
                ("embeddings", Value::Array(rows)),
            ])
            .to_string_compact();
            let (body, cost) = finish_cost(body, cost, &request.query);
            ("embed", 200, body, cost)
        }
        (Err(e), cost) => {
            let (body, cost) = finish_cost(error_body(&e.to_string()), cost, &request.query);
            ("embed", error_status(&e), body, cost)
        }
    }
}

/// Maps engine/batcher errors to a status: the client's query being
/// bad is 400; server-side faults (batcher shut down, dropped reply)
/// are 503 so retry logic treats them as transient.
fn error_status(e: &ServeError) -> u16 {
    match e {
        ServeError::InvalidQuery(_) | ServeError::InvalidArgument(_) => 400,
        ServeError::NotFound(_) => 404,
        _ => 503,
    }
}

fn parse_node(raw: &str) -> std::result::Result<usize, String> {
    raw.parse::<usize>()
        .map_err(|_| format!("bad node id '{raw}'"))
}

/// How a `/topk` request wants to be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopKMode {
    Exact,
    Approx,
}

#[derive(Debug, Clone, Copy)]
struct TopKParams {
    k: usize,
    mode: TopKMode,
    /// Lists to probe in approx mode; 0 = backend default.
    nprobe: usize,
}

/// The value of `key` in a raw query string, if present.
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        pair.split_once('=')
            .filter(|(name, _)| *name == key)
            .map(|(_, value)| value)
    })
}

/// Whether a boolean query flag is set (`?reset=true` / `?reset=1`).
fn query_flag(query: &str, key: &str) -> bool {
    matches!(query_param(query, key), Some("true") | Some("1"))
}

fn parse_topk_params(query: &str) -> std::result::Result<TopKParams, String> {
    let k = match query_param(query, "k") {
        Some(raw) => raw.parse::<usize>().map_err(|_| format!("bad k '{raw}'"))?,
        None => 10, // default k
    };
    let mode = match query_param(query, "mode") {
        None | Some("exact") => TopKMode::Exact,
        Some("approx") => TopKMode::Approx,
        Some(other) => return Err(format!("bad mode '{other}' (exact or approx)")),
    };
    let nprobe = match query_param(query, "nprobe") {
        Some(raw) => {
            if mode != TopKMode::Approx {
                return Err("nprobe only applies to mode=approx".into());
            }
            raw.parse::<usize>()
                .map_err(|_| format!("bad nprobe '{raw}'"))?
        }
        None => 0,
    };
    Ok(TopKParams { k, mode, nprobe })
}

fn healthz_body(shared: &ServerShared) -> String {
    let meta = shared.backend.meta();
    Value::object(vec![
        ("status", Value::from("ok")),
        ("artifact", Value::from(meta.dataset.as_str())),
        ("n", Value::from(meta.n)),
    ])
    .to_string_compact()
}

/// Delta-chain depth past which `/health` reports `degraded`: each
/// un-compacted update lengthens the replay chain a reload must walk.
const HEALTH_MAX_UPDATE_CHAIN: u64 = 8;

/// Dead-row fraction past which `/health` reports `degraded`
/// (tombstones are masked on every scan — compaction is overdue).
const HEALTH_MAX_DEAD_FRACTION: f64 = 0.25;

/// `GET /health`: folds the SLO burn-rate verdict with background-task
/// state (delta-chain depth, dead-row fraction, last reload outcome,
/// running compactions) into one `ok`/`degraded`/`unhealthy` answer.
/// `unhealthy` is served as 503 so plain HTTP load balancers can act
/// on it; `degraded` stays 200 (the server still answers correctly).
fn health_route(shared: &ServerShared) -> (u16, String) {
    use crate::slo::HealthStatus;
    let now = shared.metrics.uptime_secs() as u64;
    let (mut status, mut reasons) = shared.slo.evaluate(now);
    let meta = shared.backend.meta();
    let tombstones = shared.backend.tombstone_count();
    let dead_fraction = if meta.n > 0 {
        tombstones as f64 / meta.n as f64
    } else {
        0.0
    };
    if dead_fraction > HEALTH_MAX_DEAD_FRACTION {
        status = status.max(HealthStatus::Degraded);
        reasons.push(format!(
            "dead-row fraction {dead_fraction:.3} exceeds {HEALTH_MAX_DEAD_FRACTION} (compaction overdue)"
        ));
    }
    if meta.update_count > HEALTH_MAX_UPDATE_CHAIN {
        status = status.max(HealthStatus::Degraded);
        reasons.push(format!(
            "delta chain depth {} exceeds {HEALTH_MAX_UPDATE_CHAIN} (compact the artifact)",
            meta.update_count
        ));
    }
    let reload_value = {
        let guard = shared.last_reload.lock().unwrap_or_else(|e| e.into_inner());
        match &*guard {
            Some(o) => {
                if !o.ok {
                    status = status.max(HealthStatus::Degraded);
                    reasons.push(format!("last reload failed: {}", o.detail));
                }
                Value::object(vec![
                    ("ok", Value::Bool(o.ok)),
                    ("detail", Value::from(o.detail.as_str())),
                    ("at_secs", Value::from(o.at_secs)),
                ])
            }
            None => Value::Null,
        }
    };
    let compactions_running = crate::compact::compactions_running();
    let slo_value = Value::object(vec![
        (
            "objective_p99_us",
            Value::from(shared.slo.objective_p99_us()),
        ),
        (
            "objective_error_rate",
            Value::from(shared.slo.objective_error_rate()),
        ),
        (
            "windows_secs",
            Value::from(
                shared
                    .slo
                    .snapshot(now)
                    .first()
                    .map(|e| {
                        e.windows
                            .iter()
                            .map(|w| w.span_secs as usize)
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default(),
            ),
        ),
    ]);
    let body = Value::object(vec![
        ("status", Value::from(status.as_str())),
        (
            "reasons",
            Value::Array(reasons.iter().map(|r| Value::from(r.as_str())).collect()),
        ),
        ("slo", slo_value),
        (
            "background",
            Value::object(vec![
                ("compactions_running", Value::from(compactions_running)),
                ("update_count", Value::from(meta.update_count)),
                ("compaction_count", Value::from(meta.compaction_count)),
                ("dead_fraction", Value::from(dead_fraction)),
                ("last_reload", reload_value),
            ]),
        ),
    ])
    .to_string_compact();
    let code = if status == HealthStatus::Unhealthy {
        503
    } else {
        200
    };
    (code, body)
}

/// The build descriptor shared by `GET /version` and `/stats`: crate
/// version, every artifact/delta/index format this binary reads, and
/// process uptime.
fn build_value(uptime_secs: f64) -> Value {
    let artifact_formats: Vec<usize> = (1..=crate::artifact::FORMAT_VERSION as usize).collect();
    let delta_formats: Vec<usize> = vec![
        mvag_data::delta::DELTA_FORMAT_VERSION_V1 as usize,
        mvag_data::delta::DELTA_FORMAT_VERSION as usize,
    ];
    Value::object(vec![
        ("crate_version", Value::from(env!("CARGO_PKG_VERSION"))),
        (
            "artifact_format",
            Value::from(crate::artifact::FORMAT_VERSION as usize),
        ),
        ("artifact_formats_supported", Value::from(artifact_formats)),
        (
            "delta_format",
            Value::from(mvag_data::delta::DELTA_FORMAT_VERSION as usize),
        ),
        ("delta_formats_supported", Value::from(delta_formats)),
        (
            "index_format",
            Value::from(mvag_index::ivf::INDEX_FORMAT_VERSION as usize),
        ),
        ("uptime_secs", Value::from(uptime_secs)),
    ])
}

/// `GET /version` body.
fn version_body(shared: &ServerShared) -> String {
    Value::object(vec![("build", build_value(shared.metrics.uptime_secs()))]).to_string_compact()
}

/// Renders one span record as JSON — shared by `/traces` and the
/// slow-query log export.
fn span_value(r: &mvag_obs::SpanRecord) -> Value {
    let counters: Vec<(&str, Value)> = r
        .counters
        .iter()
        .map(|&(key, value)| (key, Value::from(value)))
        .collect();
    Value::object(vec![
        ("name", Value::from(r.name)),
        ("start_us", Value::from(r.start_us)),
        ("dur_us", Value::from(r.dur_us)),
        ("depth", Value::from(usize::from(r.depth))),
        ("thread", Value::from(r.thread)),
        ("counters", Value::object(counters)),
    ])
}

/// Renders a [`QueryCost`] as a JSON value (same keys and order as the
/// `?explain=1` splice, which uses [`QueryCost::json`] directly).
fn cost_value(cost: &QueryCost) -> Value {
    Value::object(vec![
        ("path", Value::from(cost.path)),
        ("shards_touched", Value::from(cost.shards_touched)),
        ("shards_loaded", Value::from(cost.shards_loaded)),
        ("shards_resident", Value::from(cost.shards_resident)),
        ("lists_probed", Value::from(cost.lists_probed)),
        ("rows_scanned", Value::from(cost.rows_scanned)),
        ("tombstones_masked", Value::from(cost.tombstones_masked)),
        ("cache_hits", Value::from(cost.cache_hits)),
        ("cache_misses", Value::from(cost.cache_misses)),
        ("queue_wait_us", Value::from(cost.queue_wait_us)),
        ("compute_us", Value::from(cost.compute_us)),
        ("response_bytes", Value::from(cost.response_bytes)),
    ])
}

/// `GET /debug/slow_queries` body: every held slow query, newest
/// first, with its cost profile and span tree. `?drain=1` empties the
/// ring as it reads (concurrent captures land in the next read).
fn slow_queries_body(shared: &ServerShared, drain: bool) -> String {
    let entries = if drain {
        shared.slow_log.drain()
    } else {
        shared.slow_log.snapshot()
    };
    let items: Vec<Value> = entries
        .iter()
        .map(|e| {
            Value::object(vec![
                ("request_id", Value::from(e.request_id.as_str())),
                ("endpoint", Value::from(e.endpoint)),
                ("status", Value::from(usize::from(e.status))),
                ("wall_us", Value::from(e.wall_us)),
                ("threshold_us", Value::from(e.threshold_us)),
                ("at_us", Value::from(e.at_us)),
                (
                    "cost",
                    e.cost.as_ref().map(cost_value).unwrap_or(Value::Null),
                ),
                (
                    "spans",
                    Value::Array(e.spans.iter().map(span_value).collect()),
                ),
            ])
        })
        .collect();
    Value::object(vec![
        ("threshold_us", Value::from(shared.slow_log.threshold_us())),
        ("captured_total", Value::from(shared.slow_log.captured())),
        ("dropped_total", Value::from(shared.slow_log.dropped())),
        ("drained", Value::Bool(drain)),
        ("count", Value::from(items.len())),
        ("slow_queries", Value::Array(items)),
    ])
    .to_string_compact()
}

/// `PUT /debug/slow_threshold`: live-tunes the slow-query threshold.
/// Accepts `{"threshold_us": N}` in the body or `?us=N`; `0` disables
/// capture without clearing already-captured entries.
fn slow_threshold_route(request: &Request, shared: &ServerShared) -> (u16, String) {
    let from_query = query_param(&request.query, "us").and_then(|raw| raw.parse::<u64>().ok());
    let from_body = std::str::from_utf8(&request.body)
        .ok()
        .and_then(|text| json::parse(text).ok())
        .and_then(|doc| doc.get("threshold_us").and_then(Value::as_usize))
        .map(|n| n as u64);
    let Some(threshold_us) = from_body.or(from_query) else {
        return (
            400,
            error_body("need {\"threshold_us\": N} in the body or ?us=N"),
        );
    };
    let previous = shared.slow_log.threshold_us();
    shared.slow_log.set_threshold_us(threshold_us);
    (
        200,
        Value::object(vec![
            ("threshold_us", Value::from(threshold_us)),
            ("previous_us", Value::from(previous)),
        ])
        .to_string_compact(),
    )
}

/// `PUT /debug/slo`: live-tunes the SLO objectives. Body fields
/// `p99_us` (microseconds, 0 disables) and `error_rate` (fraction in
/// `[0, 1]`, 0 disables) are each optional; omitted ones keep their
/// current value.
fn slo_route(request: &Request, shared: &ServerShared) -> (u16, String) {
    let parsed = std::str::from_utf8(&request.body)
        .ok()
        .and_then(|text| json::parse(text).ok());
    let Some(doc) = parsed else {
        return (400, error_body("body must be JSON"));
    };
    let p99 = match doc.get("p99_us") {
        None => None,
        Some(v) => match v.as_usize() {
            Some(n) => Some(n as u64),
            None => return (400, error_body("p99_us must be a non-negative integer")),
        },
    };
    let error_rate = match doc.get("error_rate") {
        None => None,
        Some(v) => match v.as_f64() {
            Some(r) if (0.0..=1.0).contains(&r) => Some(r),
            _ => return (400, error_body("error_rate must be a number in [0, 1]")),
        },
    };
    if p99.is_none() && error_rate.is_none() {
        return (400, error_body("need p99_us and/or error_rate"));
    }
    if let Some(p99) = p99 {
        shared.slo.set_objective_p99_us(p99);
    }
    if let Some(rate) = error_rate {
        shared.slo.set_objective_error_rate(rate);
    }
    (
        200,
        Value::object(vec![
            (
                "objective_p99_us",
                Value::from(shared.slo.objective_p99_us()),
            ),
            (
                "objective_error_rate",
                Value::from(shared.slo.objective_error_rate()),
            ),
        ])
        .to_string_compact(),
    )
}

fn artifact_body(shared: &ServerShared) -> String {
    let meta = shared.backend.meta();
    Value::object(vec![
        ("dataset", Value::from(meta.dataset.as_str())),
        ("n", Value::from(meta.n)),
        ("k", Value::from(meta.k)),
        ("dim", Value::from(meta.dim)),
        ("seed", Value::from(meta.seed)),
        ("parent_seed", Value::from(meta.parent_seed)),
        ("update_count", Value::from(meta.update_count)),
        ("compaction_count", Value::from(meta.compaction_count)),
        ("tombstones", Value::from(shared.backend.tombstone_count())),
        ("weights", Value::from(shared.backend.weights())),
        (
            "format_version",
            Value::from(crate::artifact::FORMAT_VERSION as usize),
        ),
        ("shards", Value::from(shared.backend.shard_count())),
    ])
    .to_string_compact()
}

/// `/stats` body. With `reset` the per-endpoint numbers are
/// reset-on-read deltas since the previous reset-read (plus the window
/// length); without it they are cumulative since start. Backend
/// counters (cache, index) are always cumulative.
fn stats_body(shared: &ServerShared, reset: bool) -> String {
    let (snapshots, window_secs) = if reset {
        shared.metrics.delta_snapshots()
    } else {
        (shared.metrics.snapshots(), shared.metrics.uptime_secs())
    };
    let window_requests: u64 = snapshots.iter().map(|s| s.requests).sum();
    let endpoints: Vec<Value> = snapshots
        .iter()
        .map(|snap| {
            Value::object(vec![
                ("endpoint", Value::from(snap.name)),
                ("requests", Value::from(snap.requests)),
                ("errors", Value::from(snap.errors)),
                ("mean_us", Value::from(snap.mean_micros())),
                ("p50_us", Value::from(snap.quantile_micros(0.50))),
                ("p99_us", Value::from(snap.quantile_micros(0.99))),
            ])
        })
        .collect();
    let (cache_hits, cache_misses) = shared.backend.cache_stats();
    let index = shared.backend.index_stats();
    let memory = shared.backend.store_memory();
    let pool = mvag_sparse::pool::WorkerPool::global().stats();
    let conns = shared.conns.snapshot();
    Value::object(vec![
        ("uptime_secs", Value::from(shared.metrics.uptime_secs())),
        ("window_secs", Value::from(window_secs)),
        ("reset", Value::Bool(reset)),
        (
            "total_requests",
            Value::from(shared.metrics.total_requests()),
        ),
        ("window_requests", Value::from(window_requests)),
        (
            "qps",
            Value::from(if window_secs > 0.0 {
                window_requests as f64 / window_secs
            } else {
                0.0
            }),
        ),
        ("cache_hits", Value::from(cache_hits)),
        ("cache_misses", Value::from(cache_misses)),
        ("shards", Value::from(shared.backend.shard_count())),
        (
            "resident_shards",
            Value::from(shared.backend.resident_shards()),
        ),
        ("tombstones", Value::from(shared.backend.tombstone_count())),
        // Embedding-store accounting: heap bytes pinned by owned
        // stores vs page-cache-reclaimable mapped bytes, and how the
        // residency budget is enforced ("evict" drops owned shards,
        // "madvise" hints mapped ones, "none" = unbounded).
        (
            "memory",
            Value::object(vec![
                ("store_owned_bytes", Value::from(memory.owned_bytes)),
                ("store_mapped_bytes", Value::from(memory.mapped_bytes)),
                ("resident_hint", Value::from(memory.resident_hint.as_str())),
                (
                    "stores",
                    Value::Array(
                        memory
                            .stores
                            .iter()
                            .map(|s| Value::from(s.as_str()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "index",
            Value::object(vec![
                ("enabled", Value::Bool(index.enabled)),
                ("nlist", Value::from(index.nlist)),
                ("approx_queries", Value::from(index.approx_queries)),
                ("exact_queries", Value::from(index.exact_queries)),
                ("lists_scanned", Value::from(index.lists_scanned)),
                ("rows_scanned", Value::from(index.rows_scanned)),
            ]),
        ),
        // The resolved worker-pool configuration (after SGLA_THREADS
        // resolution) plus its dispatch counters — the answer to "how
        // many threads is this server actually using, and is dispatch
        // latency eating the fan-out win?".
        (
            "pool",
            Value::object(vec![
                ("threads", Value::from(pool.threads)),
                ("kind", Value::from(pool.kind)),
                ("jobs", Value::from(pool.jobs)),
                ("inline_jobs", Value::from(pool.inline_jobs)),
                (
                    "dispatch_wait_us",
                    Value::from(pool.dispatch_wait_ns / 1_000),
                ),
                ("parks", Value::from(pool.parks)),
                ("unparks", Value::from(pool.unparks)),
            ]),
        ),
        ("tracing", Value::Bool(mvag_obs::enabled())),
        ("build", build_value(shared.metrics.uptime_secs())),
        // Which transport is serving and under which limits — the
        // evented/threaded split matters when reading the connection
        // numbers below.
        (
            "server",
            Value::object(vec![
                ("backend", Value::from(shared.backend_kind.as_str())),
                ("max_connections", Value::from(shared.max_connections)),
                (
                    "idle_timeout_secs",
                    Value::from(shared.idle_timeout.as_secs_f64()),
                ),
            ]),
        ),
        (
            "connections",
            Value::object(vec![
                ("open", Value::from(conns.open)),
                ("accepts", Value::from(conns.accepts)),
                ("timeouts", Value::from(conns.timeouts)),
                ("shed", Value::from(conns.shed)),
                ("read_buf_hwm_bytes", Value::from(conns.read_buf_hwm)),
                ("write_buf_hwm_bytes", Value::from(conns.write_buf_hwm)),
            ]),
        ),
        ("endpoints", Value::Array(endpoints)),
    ])
    .to_string_compact()
}

/// Default number of traces `/traces` returns.
const DEFAULT_TRACES: usize = 16;

/// Cap on `?n=` for `/traces`: bounds the response size (the ring
/// holds at most [`mvag_obs::ring_capacity`] spans anyway).
const MAX_TRACES: usize = 256;

/// Default `?threshold_us=` for `/traces/slow`.
const DEFAULT_SLOW_THRESHOLD_US: u64 = 10_000;

/// `/traces` and `/traces/slow` body: recent request span trees from
/// the `mvag_obs` ring buffer, newest first. A trace qualifies when it
/// has a `serve.request` root span; `/traces/slow` additionally
/// filters to roots at least `?threshold_us=T` long (the slow-query
/// log). Empty (with `"enabled": false`) when tracing is off.
fn traces_body(query: &str, slow_only: bool) -> String {
    use std::collections::BTreeMap;
    let n = query_param(query, "n")
        .and_then(|raw| raw.parse::<usize>().ok())
        .unwrap_or(DEFAULT_TRACES)
        .clamp(1, MAX_TRACES);
    let threshold_us = query_param(query, "threshold_us")
        .and_then(|raw| raw.parse::<u64>().ok())
        .unwrap_or(DEFAULT_SLOW_THRESHOLD_US);
    let mut by_trace: BTreeMap<u64, Vec<mvag_obs::SpanRecord>> = BTreeMap::new();
    for r in mvag_obs::snapshot() {
        if r.trace != 0 {
            by_trace.entry(r.trace).or_default().push(r);
        }
    }
    // (trace, root start, root duration, spans)
    let mut traces: Vec<(u64, u64, u64, Vec<mvag_obs::SpanRecord>)> = Vec::new();
    for (trace, spans) in by_trace {
        let Some(root) = spans.iter().find(|r| r.name == "serve.request") else {
            continue; // training/background trace or truncated by the ring
        };
        let (start, dur) = (root.start_us, root.dur_us);
        if slow_only && dur < threshold_us {
            continue;
        }
        traces.push((trace, start, dur, spans));
    }
    traces.sort_by_key(|&(_, start, _, _)| std::cmp::Reverse(start));
    traces.truncate(n);
    let items: Vec<Value> = traces
        .into_iter()
        .map(|(trace, start, dur, spans)| {
            let span_items: Vec<Value> = spans.iter().map(span_value).collect();
            Value::object(vec![
                ("request_id", Value::from(format_request_id(trace).as_str())),
                ("trace", Value::from(trace)),
                ("start_us", Value::from(start)),
                ("dur_us", Value::from(dur)),
                ("spans", Value::Array(span_items)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("enabled", Value::Bool(mvag_obs::enabled())),
        ("count", Value::from(items.len())),
    ];
    if slow_only {
        fields.push(("threshold_us", Value::from(threshold_us)));
    }
    fields.push(("traces", Value::Array(items)));
    Value::object(fields).to_string_compact()
}

/// `/metrics` body: the Prometheus text exposition page — endpoint
/// counters/histograms from the registry plus backend gauges
/// (cache, shards, approx-index scan work).
fn metrics_body(shared: &ServerShared) -> String {
    use std::fmt::Write;
    let mut page = String::with_capacity(4096);
    shared.metrics.render_prometheus(&mut page);
    shared.conns.render_prometheus(&mut page);
    let (cache_hits, cache_misses) = shared.backend.cache_stats();
    page.push_str("# TYPE sgla_cache_hits_total counter\n");
    let _ = writeln!(page, "sgla_cache_hits_total {cache_hits}");
    page.push_str("# TYPE sgla_cache_misses_total counter\n");
    let _ = writeln!(page, "sgla_cache_misses_total {cache_misses}");
    page.push_str("# TYPE sgla_shards gauge\n");
    let _ = writeln!(page, "sgla_shards {}", shared.backend.shard_count());
    page.push_str("# TYPE sgla_resident_shards gauge\n");
    let _ = writeln!(
        page,
        "sgla_resident_shards {}",
        shared.backend.resident_shards()
    );
    page.push_str("# TYPE sgla_tombstones gauge\n");
    let _ = writeln!(page, "sgla_tombstones {}", shared.backend.tombstone_count());
    let index = shared.backend.index_stats();
    page.push_str("# TYPE sgla_index_enabled gauge\n");
    let _ = writeln!(page, "sgla_index_enabled {}", u8::from(index.enabled));
    page.push_str("# TYPE sgla_index_nlist gauge\n");
    let _ = writeln!(page, "sgla_index_nlist {}", index.nlist);
    page.push_str("# TYPE sgla_index_approx_queries_total counter\n");
    let _ = writeln!(
        page,
        "sgla_index_approx_queries_total {}",
        index.approx_queries
    );
    page.push_str("# TYPE sgla_index_exact_queries_total counter\n");
    let _ = writeln!(
        page,
        "sgla_index_exact_queries_total {}",
        index.exact_queries
    );
    page.push_str("# TYPE sgla_index_lists_scanned_total counter\n");
    let _ = writeln!(
        page,
        "sgla_index_lists_scanned_total {}",
        index.lists_scanned
    );
    page.push_str("# TYPE sgla_index_rows_scanned_total counter\n");
    let _ = writeln!(page, "sgla_index_rows_scanned_total {}", index.rows_scanned);
    // Embedding-store memory accounting (out-of-core serving).
    let memory = shared.backend.store_memory();
    page.push_str("# HELP sgla_store_owned_bytes Heap bytes pinned by owned embedding stores.\n");
    page.push_str("# TYPE sgla_store_owned_bytes gauge\n");
    let _ = writeln!(page, "sgla_store_owned_bytes {}", memory.owned_bytes);
    page.push_str(
        "# HELP sgla_store_mapped_bytes Memory-mapped artifact bytes (page-cache reclaimable).\n",
    );
    page.push_str("# TYPE sgla_store_mapped_bytes gauge\n");
    let _ = writeln!(page, "sgla_store_mapped_bytes {}", memory.mapped_bytes);
    let mapped_stores = memory.stores.iter().filter(|s| *s == "mapped").count();
    let owned_stores = memory.stores.iter().filter(|s| *s == "owned").count();
    page.push_str("# HELP sgla_store_mapped_stores Resident stores serving memory-mapped.\n");
    page.push_str("# TYPE sgla_store_mapped_stores gauge\n");
    let _ = writeln!(page, "sgla_store_mapped_stores {mapped_stores}");
    page.push_str("# HELP sgla_store_owned_stores Resident stores serving from the heap.\n");
    page.push_str("# TYPE sgla_store_owned_stores gauge\n");
    let _ = writeln!(page, "sgla_store_owned_stores {owned_stores}");
    // Slow-query log counters.
    page.push_str("# HELP sgla_slow_query_threshold_us Capture threshold (0 = off).\n");
    page.push_str("# TYPE sgla_slow_query_threshold_us gauge\n");
    let _ = writeln!(
        page,
        "sgla_slow_query_threshold_us {}",
        shared.slow_log.threshold_us()
    );
    page.push_str("# HELP sgla_slow_query_captured_total Slow queries ever captured.\n");
    page.push_str("# TYPE sgla_slow_query_captured_total counter\n");
    let _ = writeln!(
        page,
        "sgla_slow_query_captured_total {}",
        shared.slow_log.captured()
    );
    page.push_str("# HELP sgla_slow_query_dropped_total Entries evicted from full stripes.\n");
    page.push_str("# TYPE sgla_slow_query_dropped_total counter\n");
    let _ = writeln!(
        page,
        "sgla_slow_query_dropped_total {}",
        shared.slow_log.dropped()
    );
    page.push_str("# HELP sgla_slow_query_held Entries currently in the ring.\n");
    page.push_str("# TYPE sgla_slow_query_held gauge\n");
    let _ = writeln!(page, "sgla_slow_query_held {}", shared.slow_log.len());
    // SLO windows, objectives, and burn rates.
    shared
        .slo
        .render_prometheus(shared.metrics.uptime_secs() as u64, &mut page);
    // Compaction/append telemetry (process-wide).
    crate::compact::render_prometheus(&mut page);
    // Pipeline-stage histograms (sgla_stage_*) and worker-pool gauges.
    crate::metrics::render_observability(&mut page);
    page
}

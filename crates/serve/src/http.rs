//! Dependency-light HTTP/1.1 JSON front end over [`QueryEngine`].
//!
//! Built directly on `std::net`: an acceptor thread hands connections
//! to a fixed worker pool over a channel; each worker speaks enough
//! HTTP/1.1 (request line, headers, `Content-Length` bodies,
//! keep-alive) to serve the query API. Graceful shutdown: a flag plus
//! a self-connect to unblock `accept`, then the pool drains.
//!
//! Endpoints:
//!
//! | Method/path            | Answer                                     |
//! |------------------------|--------------------------------------------|
//! | `GET /healthz`         | liveness + artifact name                   |
//! | `GET /stats`           | per-endpoint latency/QPS counters (add     |
//! |                        | `?reset=true` for reset-on-read deltas)    |
//! | `GET /metrics`         | Prometheus text exposition (cumulative)    |
//! | `GET /artifact`        | artifact metadata + learned view weights   |
//! | `GET /cluster/{node}`  | cluster assignment + centroid distance     |
//! | `GET /topk/{node}?k=K` | K nearest nodes by embedding cosine;       |
//! |                        | `&mode=approx[&nprobe=N]` probes the IVF   |
//! |                        | index instead of scanning every row        |
//! | `POST /embed`          | `{"nodes":[...]}` → embedding rows         |
//! | `POST /reload`         | re-load the artifact and hot-swap it in    |
//! |                        | (reloadable servers only — see             |
//! |                        | [`Server::start_reloadable`])              |
//! | `GET /traces?n=K`      | the K most recent request traces (span     |
//! |                        | trees from the `mvag_obs` ring buffer)     |
//! | `GET /traces/slow`     | recent requests slower than                |
//! |                        | `?threshold_us=T` (the slow-query log)     |
//!
//! Top-k requests go through the [`Batcher`], so concurrent clients
//! are micro-batched into shared kernel passes (exact and approx
//! queries each share passes with their own kind).
//!
//! Every response (including early 400s for malformed requests and
//! 5xx error paths) carries an `x-request-id: req-<16 hex digits>`
//! header; with [`ServerConfig::trace`] enabled the same id is the
//! trace id of the request's span tree in `/traces`.

use crate::backend::QueryBackend;
use crate::batch::Batcher;
use crate::engine::QueryEngine;
use crate::metrics::{ConnGauges, MetricsRegistry};
use crate::parser::{self, Request};
use crate::swap::HotSwapBackend;
use crate::{Result, ServeError};
use mvag_data::json::{self, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which transport backend a [`Server`] runs connections on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeBackend {
    /// Thread-per-connection over blocking `std::net`: an acceptor
    /// thread hands sockets to a fixed worker pool. Simple, portable,
    /// and kept as the correctness oracle — but an idle keep-alive
    /// client pins a worker, so concurrency caps at the pool size.
    #[default]
    Threaded,
    /// Single-threaded epoll readiness loop (Linux only): one loop
    /// thread owns all connection I/O, compute runs on an executor
    /// pool, and idle connections cost one epoll registration — see
    /// the `evented` module.
    Evented,
}

impl ServeBackend {
    /// The label `/stats` reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ServeBackend::Threaded => "threaded",
            ServeBackend::Evented => "evented",
        }
    }
}

impl std::str::FromStr for ServeBackend {
    type Err = String;

    fn from_str(raw: &str) -> std::result::Result<ServeBackend, String> {
        match raw {
            "threaded" => Ok(ServeBackend::Threaded),
            "evented" => Ok(ServeBackend::Evented),
            other => Err(format!("unknown backend '{other}' (threaded or evented)")),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: SocketAddr,
    /// Transport backend (see [`ServeBackend`]).
    pub backend: ServeBackend,
    /// Threaded backend: worker threads handling connections.
    /// Defaults to the unified
    /// `mvag_sparse::parallel::default_threads()` sizing (≤ 16,
    /// `SGLA_THREADS` override) with a floor of 4: connection handlers
    /// are I/O-bound, and on a 1–2 core host a single idle keep-alive
    /// client must not pin the only worker. The evented backend
    /// spawns this many compute executors instead (its I/O needs no
    /// threads).
    pub workers: usize,
    /// Upper bound on queries absorbed into one top-k kernel pass.
    pub max_batch: usize,
    /// Per-connection read timeout; on the evented backend this is
    /// the idle timeout after which silent connections are reaped
    /// (half-sent requests get a 408).
    pub read_timeout: Duration,
    /// Evented backend: cap on simultaneously open connections —
    /// accepts beyond it are answered with a best-effort 503 and
    /// closed (load shedding). `0` means unlimited.
    pub max_connections: usize,
    /// Enable request tracing at startup (`mvag_obs::set_enabled`):
    /// every request records a span tree served back on `/traces`.
    /// Off by default — the disabled instrumentation path is a single
    /// atomic load per site.
    pub trace: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".parse().expect("static addr"),
            backend: ServeBackend::default(),
            workers: mvag_sparse::parallel::default_threads().max(4),
            max_batch: 64,
            read_timeout: Duration::from_secs(30),
            max_connections: 10_000,
            trace: false,
        }
    }
}

/// Builds a replacement backend for `POST /reload` — typically by
/// re-reading the artifact path the server was started with. Runs on
/// the request's worker thread; a failure leaves the old backend
/// serving untouched.
pub type BackendLoader = Box<dyn Fn() -> Result<Arc<dyn QueryBackend>> + Send + Sync>;

/// The hot-swap half of a reloadable server.
struct ReloadState {
    swap: Arc<HotSwapBackend>,
    loader: BackendLoader,
}

pub(crate) struct ServerShared {
    backend: Arc<dyn QueryBackend>,
    batcher: Batcher,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) stop: AtomicBool,
    /// Connection-level counters (accepts, open, timeouts, shed,
    /// buffer high-water marks) surfaced on `/stats` and `/metrics`.
    pub(crate) conns: ConnGauges,
    /// `Some` only for servers started via [`Server::start_reloadable`].
    reload: Option<ReloadState>,
    /// Which transport backend is serving (reported on `/stats`).
    backend_kind: ServeBackend,
    max_connections: usize,
    idle_timeout: Duration,
}

/// The backend-specific thread handles of a running server.
enum Runtime {
    Threaded {
        acceptor: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
    },
    #[cfg(target_os = "linux")]
    Evented(crate::evented::EventedRuntime),
}

/// A running server; dropping it (or calling [`Server::shutdown`])
/// stops the transport and drains in-flight requests.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    runtime: Runtime,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("backend", &self.shared.backend_kind)
            .finish()
    }
}

impl Server {
    /// Binds, spawns the worker pool, and starts accepting — serving a
    /// single in-memory [`QueryEngine`].
    ///
    /// # Errors
    /// [`ServeError::Io`] if the bind fails.
    pub fn start(engine: Arc<QueryEngine>, config: &ServerConfig) -> Result<Server> {
        Server::start_backend(engine, config)
    }

    /// Binds, spawns the worker pool, and starts accepting over any
    /// [`QueryBackend`] — a monolithic engine or a
    /// [`ShardRouter`](crate::router::ShardRouter).
    ///
    /// # Errors
    /// [`ServeError::Io`] if the bind fails.
    pub fn start_backend(backend: Arc<dyn QueryBackend>, config: &ServerConfig) -> Result<Server> {
        Server::start_inner(backend, None, config)
    }

    /// Starts a *reloadable* server: the initial backend comes from
    /// `loader()`, is wrapped in a [`HotSwapBackend`], and
    /// `POST /reload` re-runs the loader and atomically swaps the
    /// fresh backend in — in-flight queries finish on the backend they
    /// started on, and a failed reload leaves the old one serving.
    /// This is how a serving process picks up an incrementally updated
    /// artifact (`sgla-serve update` + `POST /reload`) with zero
    /// downtime.
    ///
    /// # Errors
    /// [`ServeError::Io`] if the bind fails; loader failures building
    /// the initial backend.
    pub fn start_reloadable(loader: BackendLoader, config: &ServerConfig) -> Result<Server> {
        let swap = Arc::new(HotSwapBackend::new(loader()?));
        let backend: Arc<dyn QueryBackend> = Arc::clone(&swap) as Arc<dyn QueryBackend>;
        Server::start_inner(backend, Some(ReloadState { swap, loader }), config)
    }

    fn start_inner(
        backend: Arc<dyn QueryBackend>,
        reload: Option<ReloadState>,
        config: &ServerConfig,
    ) -> Result<Server> {
        if config.trace {
            mvag_obs::set_enabled(true);
        }
        let listener = TcpListener::bind(config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            batcher: Batcher::new(Arc::clone(&backend), config.max_batch),
            backend,
            metrics: MetricsRegistry::new(),
            stop: AtomicBool::new(false),
            conns: ConnGauges::new(),
            reload,
            backend_kind: config.backend,
            max_connections: config.max_connections,
            idle_timeout: config.read_timeout,
        });

        if config.backend == ServeBackend::Evented {
            #[cfg(target_os = "linux")]
            {
                let runtime = crate::evented::EventedRuntime::start(
                    listener,
                    Arc::clone(&shared),
                    config.workers.max(1),
                    config.max_connections,
                    config.read_timeout,
                )?;
                return Ok(Server {
                    local_addr,
                    shared,
                    runtime: Runtime::Evented(runtime),
                });
            }
            #[cfg(not(target_os = "linux"))]
            return Err(ServeError::Server(
                "the evented backend requires Linux (epoll); use ServeBackend::Threaded".into(),
            ));
        }

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = Arc::clone(&conn_rx);
            let shared_ref = Arc::clone(&shared);
            let read_timeout = config.read_timeout;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sgla-serve-{i}"))
                    .spawn(move || worker_loop(&rx, &shared_ref, read_timeout))
                    .map_err(|e| ServeError::Server(format!("spawn worker: {e}")))?,
            );
        }

        // Nonblocking accept loop: the acceptor polls the stop flag
        // instead of parking in accept(), so shutdown never depends on
        // being able to open a wake-up connection to itself.
        listener.set_nonblocking(true)?;
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("sgla-serve-accept".into())
            .spawn(move || {
                while !acceptor_shared.stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((s, _peer)) => {
                            acceptor_shared.conns.accepted();
                            // Connection sockets must block; they do
                            // not inherit nonblocking on all platforms,
                            // so set it explicitly.
                            if s.set_nonblocking(false).is_err() {
                                continue;
                            }
                            // Dropping the send side stops workers; a
                            // send failure means we're shutting down.
                            if conn_tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => continue,
                    }
                }
                // conn_tx drops here; workers drain and exit.
            })
            .map_err(|e| ServeError::Server(format!("spawn acceptor: {e}")))?;

        Ok(Server {
            local_addr,
            shared,
            runtime: Runtime::Threaded {
                acceptor: Some(acceptor),
                workers,
            },
        })
    }

    /// The actually-bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Metrics for this server.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// Graceful shutdown: stop accepting, drain workers, stop the
    /// batcher. In-flight requests finish; keep-alive connections are
    /// closed after their current request.
    pub fn shutdown(mut self) {
        self.stop_internal();
    }

    fn stop_internal(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        match &mut self.runtime {
            // The acceptor polls the stop flag (nonblocking accept),
            // and idle workers poll it between requests, so joins are
            // bounded.
            Runtime::Threaded { acceptor, workers } => {
                if let Some(acceptor) = acceptor.take() {
                    let _ = acceptor.join();
                }
                for worker in workers.drain(..) {
                    let _ = worker.join();
                }
            }
            // The eventfd kicks the loop out of epoll_wait; the loop
            // dropping its job queue releases the executors.
            #[cfg(target_os = "linux")]
            Runtime::Evented(runtime) => {
                runtime.wake();
                runtime.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_internal();
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    shared: &ServerShared,
    read_timeout: Duration,
) {
    loop {
        let stream = {
            let guard = rx.lock().expect("conn queue lock");
            guard.recv()
        };
        match stream {
            Ok(s) => handle_connection(s, shared, read_timeout),
            Err(_) => return, // acceptor gone: shutdown
        }
    }
}

/// Poll interval for idle keep-alive connections: workers waiting for
/// the next request wake this often to observe the shutdown flag, so
/// `Server::shutdown` never blocks on idle clients.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Poll interval of the nonblocking accept loop (bounds both accept
/// latency under no load and shutdown latency).
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Counts a connection open against the gauges and guarantees the
/// matching close on every exit path of `handle_connection`.
struct OpenScope<'a>(&'a ConnGauges);

impl Drop for OpenScope<'_> {
    fn drop(&mut self) {
        self.0.closed();
    }
}

fn handle_connection(stream: TcpStream, shared: &ServerShared, read_timeout: Duration) {
    shared.conns.opened();
    let _open = OpenScope(&shared.conns);
    let _ = stream.set_nodelay(true);
    let peer = stream.peer_addr().ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        // Idle phase: wait for the first byte of the next request
        // under a short timeout, re-checking the stop flag each wake.
        // A connection idle past `read_timeout` is closed so silent
        // clients cannot pin workers from the fixed pool forever.
        let _ = reader.get_ref().set_read_timeout(Some(IDLE_POLL));
        let idle_since = Instant::now();
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            match reader.fill_buf() {
                Ok([]) => return, // clean EOF between requests
                Ok(_) => break,   // request bytes waiting
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if idle_since.elapsed() >= read_timeout {
                        // Idle deadline: free the worker.
                        shared.conns.timed_out();
                        return;
                    }
                    continue;
                }
                Err(_) => return,
            }
        }
        // Request phase: the full read timeout applies.
        let _ = reader.get_ref().set_read_timeout(Some(read_timeout));
        let request = match parser::read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean EOF between requests
            Err(e) => {
                // Malformed request: answer 400 if the peer is still
                // there, then drop the connection. Even this path gets
                // a request id, so the failure is referenceable.
                let bytes = response_bytes(
                    400,
                    "Bad Request",
                    "application/json",
                    &error_body(&e.to_string()),
                    false,
                    mvag_obs::next_request_id(),
                );
                let _ = writer.write_all(&bytes);
                return;
            }
        };
        let _ = peer; // kept for future access logging
        let keep_alive = request.keep_alive && !shared.stop.load(Ordering::SeqCst);
        // One id per request, allocated at accept: it rides the
        // response as `x-request-id` and — when tracing is on — is the
        // trace id every span of this request attaches to, all the way
        // down through the batcher and the shard fan-out.
        let request_id = mvag_obs::next_request_id();
        let bytes = process_request(&request, shared, request_id, Instant::now(), keep_alive);
        let written = writer.write_all(&bytes).and_then(|()| writer.flush());
        if written.is_err() || !keep_alive {
            return;
        }
    }
}

/// Cap on ids per `/embed` request, bounding the response to
/// `MAX_EMBED_NODES × dim` floats regardless of how many ids fit in
/// [`parser::MAX_BODY`].
const MAX_EMBED_NODES: usize = 4096;

/// Formats a request id the way it appears in the `x-request-id`
/// header and in `/traces` bodies.
fn format_request_id(id: u64) -> String {
    format!("req-{id:016x}")
}

/// Routes one parsed request, records its span tree and endpoint
/// metrics, and renders the full response — the single request path
/// both backends share (the threaded worker writes the bytes
/// directly; the evented executor queues them for the loop). Latency
/// is measured from `started`, which the caller sets at read/enqueue
/// time so queueing is part of the recorded number.
pub(crate) fn process_request(
    request: &Request,
    shared: &ServerShared,
    request_id: u64,
    started: Instant,
    keep_alive: bool,
) -> Vec<u8> {
    let (endpoint, status, body) = mvag_obs::with_trace(request_id, || {
        let mut root = mvag_obs::span("serve.request");
        let out = route(request, shared);
        root.counter("status", u64::from(out.1));
        out
    });
    if let Some(m) = shared.metrics.endpoint(endpoint) {
        m.record(started.elapsed(), status < 400);
    }
    // The metrics page is the one non-JSON endpoint (Prometheus
    // text exposition format).
    let content_type = if endpoint == "metrics" && status == 200 {
        "text/plain; version=0.0.4"
    } else {
        "application/json"
    };
    response_bytes(
        status,
        reason_for(status),
        content_type,
        &body,
        keep_alive,
        request_id,
    )
}

/// The canonical reason phrase for the statuses this server emits.
pub(crate) fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Renders a complete response (status line, headers, body) as one
/// byte vector — shared by the threaded writer, the evented staging
/// path, and the shed/timeout short-circuits.
pub(crate) fn response_bytes(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    request_id: u64,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\nx-request-id: {}\r\n\r\n",
        body.len(),
        format_request_id(request_id)
    );
    let mut bytes = Vec::with_capacity(head.len() + body.len());
    bytes.extend_from_slice(head.as_bytes());
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

pub(crate) fn error_body(message: &str) -> String {
    Value::object(vec![("error", Value::from(message))]).to_string_compact()
}

/// Dispatches one request. Returns `(endpoint label, status, body)`.
fn route(request: &Request, shared: &ServerShared) -> (&'static str, u16, String) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => ("healthz", 200, healthz_body(shared)),
        ("GET", ["stats"]) => (
            "stats",
            200,
            stats_body(shared, query_flag(&request.query, "reset")),
        ),
        ("GET", ["metrics"]) => ("metrics", 200, metrics_body(shared)),
        ("GET", ["artifact"]) => ("artifact", 200, artifact_body(shared)),
        ("GET", ["cluster", node]) => match parse_node(node) {
            Ok(node) => match shared.backend.cluster_of(node) {
                Ok(info) => (
                    "cluster",
                    200,
                    Value::object(vec![
                        ("node", Value::from(info.node)),
                        ("cluster", Value::from(info.cluster)),
                        ("centroid_dist", Value::from(info.centroid_dist)),
                    ])
                    .to_string_compact(),
                ),
                // error_status: a bad query is 400; a shard-load fault
                // behind the router is 503 (transient, retryable).
                Err(e) => ("cluster", error_status(&e), error_body(&e.to_string())),
            },
            Err(msg) => ("cluster", 400, error_body(&msg)),
        },
        ("GET", ["topk", node]) => match (parse_node(node), parse_topk_params(&request.query)) {
            (Ok(node), Ok(params)) => {
                let answer = match params.mode {
                    TopKMode::Exact => shared.batcher.top_k(node, params.k),
                    TopKMode::Approx => shared.batcher.top_k_approx(node, params.k, params.nprobe),
                };
                match answer {
                    Ok(neighbors) => {
                        let items: Vec<Value> = neighbors
                            .iter()
                            .map(|nb| {
                                Value::object(vec![
                                    ("node", Value::from(nb.node)),
                                    ("score", Value::from(nb.score)),
                                ])
                            })
                            .collect();
                        let mode = match params.mode {
                            TopKMode::Exact => "exact",
                            TopKMode::Approx => "approx",
                        };
                        (
                            "topk",
                            200,
                            Value::object(vec![
                                ("node", Value::from(node)),
                                ("k", Value::from(params.k)),
                                ("mode", Value::from(mode)),
                                ("neighbors", Value::Array(items)),
                            ])
                            .to_string_compact(),
                        )
                    }
                    Err(e) => ("topk", error_status(&e), error_body(&e.to_string())),
                }
            }
            (Err(msg), _) | (_, Err(msg)) => ("topk", 400, error_body(&msg)),
        },
        ("POST", ["embed"]) => embed_route(request, shared),
        ("POST", ["reload"]) => reload_route(shared),
        ("GET", ["traces"]) => ("traces", 200, traces_body(&request.query, false)),
        ("GET", ["traces", "slow"]) => ("traces", 200, traces_body(&request.query, true)),
        (_, ["healthz" | "stats" | "metrics" | "artifact" | "embed" | "reload" | "traces"])
        | (_, ["cluster" | "topk", _]) => ("other", 405, error_body("method not allowed")),
        _ => ("other", 404, error_body("no such endpoint")),
    }
}

/// `POST /reload`: rebuild the backend via the server's loader and
/// hot-swap it in. Only available on servers started with
/// [`Server::start_reloadable`]; a loader failure keeps the old
/// backend serving and reports 503 (the operator retries after fixing
/// the artifact on disk).
fn reload_route(shared: &ServerShared) -> (&'static str, u16, String) {
    let Some(reload) = &shared.reload else {
        return (
            "reload",
            400,
            error_body("this server was not started reloadable (no artifact path to re-read)"),
        );
    };
    match (reload.loader)() {
        Ok(next) => {
            let old = reload.swap.swap(next);
            let meta = shared.backend.meta();
            (
                "reload",
                200,
                Value::object(vec![
                    ("status", Value::from("reloaded")),
                    ("dataset", Value::from(meta.dataset.as_str())),
                    ("n", Value::from(meta.n)),
                    ("previous_n", Value::from(old.meta().n)),
                    ("update_count", Value::from(meta.update_count)),
                    ("swaps", Value::from(reload.swap.swap_count())),
                ])
                .to_string_compact(),
            )
        }
        Err(e) => (
            "reload",
            503,
            error_body(&format!("reload failed, old artifact still serving: {e}")),
        ),
    }
}

fn embed_route(request: &Request, shared: &ServerShared) -> (&'static str, u16, String) {
    let parsed = std::str::from_utf8(&request.body)
        .ok()
        .and_then(|text| json::parse(text).ok());
    let Some(doc) = parsed else {
        return ("embed", 400, error_body("body must be JSON"));
    };
    let Some(node_vals) = doc.get("nodes").and_then(Value::as_array) else {
        return ("embed", 400, error_body("body needs a \"nodes\" array"));
    };
    // Response size is nodes × dim floats; without this cap a 4 MiB
    // body of repeated ids could demand a response of hundreds of MB.
    if node_vals.len() > MAX_EMBED_NODES {
        return (
            "embed",
            400,
            error_body(&format!(
                "at most {MAX_EMBED_NODES} nodes per embed request (got {})",
                node_vals.len()
            )),
        );
    }
    let mut nodes = Vec::with_capacity(node_vals.len());
    for v in node_vals {
        match v.as_usize() {
            Some(n) => nodes.push(n),
            None => {
                return (
                    "embed",
                    400,
                    error_body("nodes must be non-negative integers"),
                )
            }
        }
    }
    match shared.backend.embed_batch(&nodes) {
        Ok(rows) => {
            let rows: Vec<Value> = rows.into_iter().map(Value::from).collect();
            (
                "embed",
                200,
                Value::object(vec![
                    ("nodes", Value::from(nodes)),
                    ("dim", Value::from(shared.backend.meta().dim)),
                    ("embeddings", Value::Array(rows)),
                ])
                .to_string_compact(),
            )
        }
        Err(e) => ("embed", error_status(&e), error_body(&e.to_string())),
    }
}

/// Maps engine/batcher errors to a status: the client's query being
/// bad is 400; server-side faults (batcher shut down, dropped reply)
/// are 503 so retry logic treats them as transient.
fn error_status(e: &ServeError) -> u16 {
    match e {
        ServeError::InvalidQuery(_) | ServeError::InvalidArgument(_) => 400,
        ServeError::NotFound(_) => 404,
        _ => 503,
    }
}

fn parse_node(raw: &str) -> std::result::Result<usize, String> {
    raw.parse::<usize>()
        .map_err(|_| format!("bad node id '{raw}'"))
}

/// How a `/topk` request wants to be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopKMode {
    Exact,
    Approx,
}

#[derive(Debug, Clone, Copy)]
struct TopKParams {
    k: usize,
    mode: TopKMode,
    /// Lists to probe in approx mode; 0 = backend default.
    nprobe: usize,
}

/// The value of `key` in a raw query string, if present.
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        pair.split_once('=')
            .filter(|(name, _)| *name == key)
            .map(|(_, value)| value)
    })
}

/// Whether a boolean query flag is set (`?reset=true` / `?reset=1`).
fn query_flag(query: &str, key: &str) -> bool {
    matches!(query_param(query, key), Some("true") | Some("1"))
}

fn parse_topk_params(query: &str) -> std::result::Result<TopKParams, String> {
    let k = match query_param(query, "k") {
        Some(raw) => raw.parse::<usize>().map_err(|_| format!("bad k '{raw}'"))?,
        None => 10, // default k
    };
    let mode = match query_param(query, "mode") {
        None | Some("exact") => TopKMode::Exact,
        Some("approx") => TopKMode::Approx,
        Some(other) => return Err(format!("bad mode '{other}' (exact or approx)")),
    };
    let nprobe = match query_param(query, "nprobe") {
        Some(raw) => {
            if mode != TopKMode::Approx {
                return Err("nprobe only applies to mode=approx".into());
            }
            raw.parse::<usize>()
                .map_err(|_| format!("bad nprobe '{raw}'"))?
        }
        None => 0,
    };
    Ok(TopKParams { k, mode, nprobe })
}

fn healthz_body(shared: &ServerShared) -> String {
    let meta = shared.backend.meta();
    Value::object(vec![
        ("status", Value::from("ok")),
        ("artifact", Value::from(meta.dataset.as_str())),
        ("n", Value::from(meta.n)),
    ])
    .to_string_compact()
}

fn artifact_body(shared: &ServerShared) -> String {
    let meta = shared.backend.meta();
    Value::object(vec![
        ("dataset", Value::from(meta.dataset.as_str())),
        ("n", Value::from(meta.n)),
        ("k", Value::from(meta.k)),
        ("dim", Value::from(meta.dim)),
        ("seed", Value::from(meta.seed)),
        ("parent_seed", Value::from(meta.parent_seed)),
        ("update_count", Value::from(meta.update_count)),
        ("compaction_count", Value::from(meta.compaction_count)),
        ("tombstones", Value::from(shared.backend.tombstone_count())),
        ("weights", Value::from(shared.backend.weights())),
        (
            "format_version",
            Value::from(crate::artifact::FORMAT_VERSION as usize),
        ),
        ("shards", Value::from(shared.backend.shard_count())),
    ])
    .to_string_compact()
}

/// `/stats` body. With `reset` the per-endpoint numbers are
/// reset-on-read deltas since the previous reset-read (plus the window
/// length); without it they are cumulative since start. Backend
/// counters (cache, index) are always cumulative.
fn stats_body(shared: &ServerShared, reset: bool) -> String {
    let (snapshots, window_secs) = if reset {
        shared.metrics.delta_snapshots()
    } else {
        (shared.metrics.snapshots(), shared.metrics.uptime_secs())
    };
    let window_requests: u64 = snapshots.iter().map(|s| s.requests).sum();
    let endpoints: Vec<Value> = snapshots
        .iter()
        .map(|snap| {
            Value::object(vec![
                ("endpoint", Value::from(snap.name)),
                ("requests", Value::from(snap.requests)),
                ("errors", Value::from(snap.errors)),
                ("mean_us", Value::from(snap.mean_micros())),
                ("p50_us", Value::from(snap.quantile_micros(0.50))),
                ("p99_us", Value::from(snap.quantile_micros(0.99))),
            ])
        })
        .collect();
    let (cache_hits, cache_misses) = shared.backend.cache_stats();
    let index = shared.backend.index_stats();
    let pool = mvag_sparse::pool::WorkerPool::global().stats();
    let conns = shared.conns.snapshot();
    Value::object(vec![
        ("uptime_secs", Value::from(shared.metrics.uptime_secs())),
        ("window_secs", Value::from(window_secs)),
        ("reset", Value::Bool(reset)),
        (
            "total_requests",
            Value::from(shared.metrics.total_requests()),
        ),
        ("window_requests", Value::from(window_requests)),
        (
            "qps",
            Value::from(if window_secs > 0.0 {
                window_requests as f64 / window_secs
            } else {
                0.0
            }),
        ),
        ("cache_hits", Value::from(cache_hits)),
        ("cache_misses", Value::from(cache_misses)),
        ("shards", Value::from(shared.backend.shard_count())),
        (
            "resident_shards",
            Value::from(shared.backend.resident_shards()),
        ),
        ("tombstones", Value::from(shared.backend.tombstone_count())),
        (
            "index",
            Value::object(vec![
                ("enabled", Value::Bool(index.enabled)),
                ("nlist", Value::from(index.nlist)),
                ("approx_queries", Value::from(index.approx_queries)),
                ("exact_queries", Value::from(index.exact_queries)),
                ("lists_scanned", Value::from(index.lists_scanned)),
                ("rows_scanned", Value::from(index.rows_scanned)),
            ]),
        ),
        // The resolved worker-pool configuration (after SGLA_THREADS
        // resolution) plus its dispatch counters — the answer to "how
        // many threads is this server actually using, and is dispatch
        // latency eating the fan-out win?".
        (
            "pool",
            Value::object(vec![
                ("threads", Value::from(pool.threads)),
                ("kind", Value::from(pool.kind)),
                ("jobs", Value::from(pool.jobs)),
                ("inline_jobs", Value::from(pool.inline_jobs)),
                (
                    "dispatch_wait_us",
                    Value::from(pool.dispatch_wait_ns / 1_000),
                ),
                ("parks", Value::from(pool.parks)),
                ("unparks", Value::from(pool.unparks)),
            ]),
        ),
        ("tracing", Value::Bool(mvag_obs::enabled())),
        // Which transport is serving and under which limits — the
        // evented/threaded split matters when reading the connection
        // numbers below.
        (
            "server",
            Value::object(vec![
                ("backend", Value::from(shared.backend_kind.as_str())),
                ("max_connections", Value::from(shared.max_connections)),
                (
                    "idle_timeout_secs",
                    Value::from(shared.idle_timeout.as_secs_f64()),
                ),
            ]),
        ),
        (
            "connections",
            Value::object(vec![
                ("open", Value::from(conns.open)),
                ("accepts", Value::from(conns.accepts)),
                ("timeouts", Value::from(conns.timeouts)),
                ("shed", Value::from(conns.shed)),
                ("read_buf_hwm_bytes", Value::from(conns.read_buf_hwm)),
                ("write_buf_hwm_bytes", Value::from(conns.write_buf_hwm)),
            ]),
        ),
        ("endpoints", Value::Array(endpoints)),
    ])
    .to_string_compact()
}

/// Default number of traces `/traces` returns.
const DEFAULT_TRACES: usize = 16;

/// Cap on `?n=` for `/traces`: bounds the response size (the ring
/// holds at most [`mvag_obs::ring_capacity`] spans anyway).
const MAX_TRACES: usize = 256;

/// Default `?threshold_us=` for `/traces/slow`.
const DEFAULT_SLOW_THRESHOLD_US: u64 = 10_000;

/// `/traces` and `/traces/slow` body: recent request span trees from
/// the `mvag_obs` ring buffer, newest first. A trace qualifies when it
/// has a `serve.request` root span; `/traces/slow` additionally
/// filters to roots at least `?threshold_us=T` long (the slow-query
/// log). Empty (with `"enabled": false`) when tracing is off.
fn traces_body(query: &str, slow_only: bool) -> String {
    use std::collections::BTreeMap;
    let n = query_param(query, "n")
        .and_then(|raw| raw.parse::<usize>().ok())
        .unwrap_or(DEFAULT_TRACES)
        .clamp(1, MAX_TRACES);
    let threshold_us = query_param(query, "threshold_us")
        .and_then(|raw| raw.parse::<u64>().ok())
        .unwrap_or(DEFAULT_SLOW_THRESHOLD_US);
    let mut by_trace: BTreeMap<u64, Vec<mvag_obs::SpanRecord>> = BTreeMap::new();
    for r in mvag_obs::snapshot() {
        if r.trace != 0 {
            by_trace.entry(r.trace).or_default().push(r);
        }
    }
    // (trace, root start, root duration, spans)
    let mut traces: Vec<(u64, u64, u64, Vec<mvag_obs::SpanRecord>)> = Vec::new();
    for (trace, spans) in by_trace {
        let Some(root) = spans.iter().find(|r| r.name == "serve.request") else {
            continue; // training/background trace or truncated by the ring
        };
        let (start, dur) = (root.start_us, root.dur_us);
        if slow_only && dur < threshold_us {
            continue;
        }
        traces.push((trace, start, dur, spans));
    }
    traces.sort_by_key(|&(_, start, _, _)| std::cmp::Reverse(start));
    traces.truncate(n);
    let items: Vec<Value> = traces
        .into_iter()
        .map(|(trace, start, dur, spans)| {
            let span_items: Vec<Value> = spans
                .iter()
                .map(|r| {
                    let counters: Vec<(&str, Value)> = r
                        .counters
                        .iter()
                        .map(|&(key, value)| (key, Value::from(value)))
                        .collect();
                    Value::object(vec![
                        ("name", Value::from(r.name)),
                        ("start_us", Value::from(r.start_us)),
                        ("dur_us", Value::from(r.dur_us)),
                        ("depth", Value::from(usize::from(r.depth))),
                        ("thread", Value::from(r.thread)),
                        ("counters", Value::object(counters)),
                    ])
                })
                .collect();
            Value::object(vec![
                ("request_id", Value::from(format_request_id(trace).as_str())),
                ("trace", Value::from(trace)),
                ("start_us", Value::from(start)),
                ("dur_us", Value::from(dur)),
                ("spans", Value::Array(span_items)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("enabled", Value::Bool(mvag_obs::enabled())),
        ("count", Value::from(items.len())),
    ];
    if slow_only {
        fields.push(("threshold_us", Value::from(threshold_us)));
    }
    fields.push(("traces", Value::Array(items)));
    Value::object(fields).to_string_compact()
}

/// `/metrics` body: the Prometheus text exposition page — endpoint
/// counters/histograms from the registry plus backend gauges
/// (cache, shards, approx-index scan work).
fn metrics_body(shared: &ServerShared) -> String {
    use std::fmt::Write;
    let mut page = String::with_capacity(4096);
    shared.metrics.render_prometheus(&mut page);
    shared.conns.render_prometheus(&mut page);
    let (cache_hits, cache_misses) = shared.backend.cache_stats();
    page.push_str("# TYPE sgla_cache_hits_total counter\n");
    let _ = writeln!(page, "sgla_cache_hits_total {cache_hits}");
    page.push_str("# TYPE sgla_cache_misses_total counter\n");
    let _ = writeln!(page, "sgla_cache_misses_total {cache_misses}");
    page.push_str("# TYPE sgla_shards gauge\n");
    let _ = writeln!(page, "sgla_shards {}", shared.backend.shard_count());
    page.push_str("# TYPE sgla_resident_shards gauge\n");
    let _ = writeln!(
        page,
        "sgla_resident_shards {}",
        shared.backend.resident_shards()
    );
    page.push_str("# TYPE sgla_tombstones gauge\n");
    let _ = writeln!(page, "sgla_tombstones {}", shared.backend.tombstone_count());
    let index = shared.backend.index_stats();
    page.push_str("# TYPE sgla_index_enabled gauge\n");
    let _ = writeln!(page, "sgla_index_enabled {}", u8::from(index.enabled));
    page.push_str("# TYPE sgla_index_nlist gauge\n");
    let _ = writeln!(page, "sgla_index_nlist {}", index.nlist);
    page.push_str("# TYPE sgla_index_approx_queries_total counter\n");
    let _ = writeln!(
        page,
        "sgla_index_approx_queries_total {}",
        index.approx_queries
    );
    page.push_str("# TYPE sgla_index_exact_queries_total counter\n");
    let _ = writeln!(
        page,
        "sgla_index_exact_queries_total {}",
        index.exact_queries
    );
    page.push_str("# TYPE sgla_index_lists_scanned_total counter\n");
    let _ = writeln!(
        page,
        "sgla_index_lists_scanned_total {}",
        index.lists_scanned
    );
    page.push_str("# TYPE sgla_index_rows_scanned_total counter\n");
    let _ = writeln!(page, "sgla_index_rows_scanned_total {}", index.rows_scanned);
    // Pipeline-stage histograms (sgla_stage_*) and worker-pool gauges.
    crate::metrics::render_observability(&mut page);
    page
}

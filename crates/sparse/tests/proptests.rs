//! Property-based tests for the linear algebra substrate.

use mvag_sparse::eigen::{jacobi_eig, smallest_eigenvalues, EigOptions};
use mvag_sparse::pool::WorkerPool;
use mvag_sparse::qr::qr_thin;
use mvag_sparse::{vecops, CooMatrix, CsrMatrix, DenseMatrix, FusedSumOp, LinOp};
use proptest::prelude::*;

/// Strategy: a random sparse square matrix as triplets.
fn coo_strategy(max_n: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -10.0f64..10.0), 0..max_nnz).prop_map(
            move |triplets| {
                let mut coo = CooMatrix::new(n, n);
                for (r, c, v) in triplets {
                    coo.push(r, c, v).unwrap();
                }
                coo
            },
        )
    })
}

/// Strategy: a random symmetric sparse matrix.
fn sym_coo_strategy(max_n: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -10.0f64..10.0), 0..max_nnz).prop_map(
            move |triplets| {
                let mut coo = CooMatrix::new(n, n);
                for (r, c, v) in triplets {
                    coo.push_sym(r, c, v).unwrap();
                }
                coo
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_matvec_matches_dense(coo in coo_strategy(24, 80)) {
        let csr = coo.to_csr();
        let n = csr.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_sparse = vec![0.0; n];
        csr.matvec(&x, &mut y_sparse);
        let dense = csr.to_dense();
        let mut y_dense = vec![0.0; n];
        dense.matvec(&x, &mut y_dense);
        for (a, b) in y_sparse.iter().zip(&y_dense) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn transpose_is_involution(coo in coo_strategy(20, 60)) {
        let csr = coo.to_csr();
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn transpose_swaps_entries(coo in coo_strategy(16, 40)) {
        let csr = coo.to_csr();
        let t = csr.transpose();
        for (r, c, v) in csr.iter() {
            prop_assert_eq!(t.get(c, r), v);
        }
    }

    #[test]
    fn symmetric_builder_gives_symmetric(coo in sym_coo_strategy(18, 50)) {
        let csr = coo.to_csr();
        prop_assert!(csr.is_symmetric(1e-12));
    }

    #[test]
    fn linear_combination_matches_elementwise(
        coo1 in coo_strategy(12, 30),
        w1 in -3.0f64..3.0,
        w2 in -3.0f64..3.0,
    ) {
        let a = coo1.to_csr();
        let n = a.nrows();
        // Second matrix on same shape: the identity.
        let b = CsrMatrix::identity(n);
        let s = CsrMatrix::linear_combination(&[&a, &b], &[w1, w2]).unwrap();
        for r in 0..n {
            for c in 0..n {
                let expect = w1 * a.get(r, c) + w2 * b.get(r, c);
                prop_assert!((s.get(r, c) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn jacobi_eigenvalues_match_trace_and_residuals(coo in sym_coo_strategy(12, 40)) {
        let a = coo.to_csr().to_dense();
        let n = a.nrows();
        let e = jacobi_eig(&a).unwrap();
        let tr: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((tr - sum).abs() < 1e-8 * (1.0 + tr.abs()));
        // Residual of the extreme pairs.
        for j in [0, n - 1] {
            let v = e.vectors.col(j);
            let mut av = vec![0.0; n];
            a.matvec(&v, &mut av);
            for i in 0..n {
                prop_assert!((av[i] - e.values[j] * v[i]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn lanczos_matches_jacobi_on_symmetric(coo in sym_coo_strategy(14, 40)) {
        // Dense fallback path exercises materialization; compare full chain.
        let csr = coo.to_csr();
        let k = 3.min(csr.nrows());
        let opts = EigOptions::default();
        let lv = smallest_eigenvalues(&csr, k, &opts).unwrap();
        let jv = jacobi_eig(&csr.to_dense()).unwrap();
        for (j, (a, b)) in lv.iter().zip(jv.values.iter()).enumerate().take(k) {
            prop_assert!((a - b).abs() < 1e-7, "λ{} = {} vs {}", j, a, b);
        }
    }

    #[test]
    fn qr_orthonormal_and_reconstructs(
        rows in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..5.0, 4),
            6..12,
        )
    ) {
        let a = DenseMatrix::from_rows(&rows).unwrap();
        let (q, r) = qr_thin(&a).unwrap();
        let qr = q.matmul(&r).unwrap();
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                prop_assert!((qr[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn norm2_scale_invariance(v in proptest::collection::vec(-100.0f64..100.0, 1..40), s in 0.1f64..10.0) {
        let scaled: Vec<f64> = v.iter().map(|x| x * s).collect();
        let n1 = vecops::norm2(&v) * s;
        let n2 = vecops::norm2(&scaled);
        prop_assert!((n1 - n2).abs() <= 1e-10 * (1.0 + n1.abs()));
    }

    #[test]
    fn cosine_bounded(
        a in proptest::collection::vec(-10.0f64..10.0, 5),
        b in proptest::collection::vec(-10.0f64..10.0, 5),
    ) {
        let c = vecops::cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn pooled_matvec_bit_identical_to_sequential(coo in coo_strategy(24, 80)) {
        let csr = coo.to_csr();
        let n = csr.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos() * 3.0).collect();
        let mut y_seq = vec![0.0; n];
        let mut y_par = vec![0.0; n];
        csr.matvec(&x, &mut y_seq);
        csr.matvec_parallel(&x, &mut y_par, 4);
        prop_assert_eq!(y_seq, y_par);
    }

    #[test]
    fn fused_csr_bit_identical_to_linear_combination(
        coo1 in coo_strategy(20, 60),
        coo2_triplets in proptest::collection::vec((0usize..20, 0usize..20, 0.1f64..10.0), 0..60),
        w1 in 0.1f64..3.0,
        w2 in 0.1f64..3.0,
    ) {
        // Strictly positive values and weights: no exact cancellation,
        // so the fused union pattern equals the materialized
        // linear-combination pattern and the per-entry accumulation
        // order matches — results must agree bit-for-bit.
        let mut csr1 = coo1.to_csr();
        for v in csr1.values_mut() {
            *v = v.abs() + 0.001;
        }
        let n = csr1.nrows();
        let mut coo2 = CooMatrix::new(n, n);
        for (r, c, v) in coo2_triplets {
            coo2.push(r % n, c % n, v).unwrap();
        }
        let csr2 = coo2.to_csr();
        let fused = FusedSumOp::new(vec![&csr1, &csr2], vec![w1, w2]).unwrap();
        let reference = CsrMatrix::linear_combination(&[&csr1, &csr2], &[w1, w2]).unwrap();
        prop_assert_eq!(fused.fused_matrix(), &reference);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.83).sin() * 2.0).collect();
        let mut y_fused = vec![0.0; n];
        let mut y_ref = vec![0.0; n];
        fused.matvec(&x, &mut y_fused);
        reference.matvec(&x, &mut y_ref);
        prop_assert_eq!(y_fused, y_ref);
    }

    #[test]
    fn matvec_block_bit_identical_to_columnwise(coo in coo_strategy(22, 70)) {
        let csr = coo.to_csr();
        let n = csr.nrows();
        let b = 4;
        let mut x = DenseMatrix::zeros(n, b);
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v = ((i * 131) % 17) as f64 - 8.0;
        }
        let mut y = DenseMatrix::zeros(n, b);
        csr.matvec_block(&x, &mut y, 4);
        let mut xc = vec![0.0; n];
        let mut yc = vec![0.0; n];
        for j in 0..b {
            for i in 0..n {
                xc[i] = x[(i, j)];
            }
            csr.matvec(&xc, &mut yc);
            for i in 0..n {
                prop_assert_eq!(y[(i, j)], yc[i], "col {} row {}", j, i);
            }
        }
    }

    #[test]
    fn sym_normalized_spectrum_bounded(coo in sym_coo_strategy(16, 50)) {
        // For a nonnegative symmetric matrix, the normalized Laplacian
        // I − D^{-1/2} A D^{-1/2} has spectrum in [0, 2].
        let mut csr = coo.to_csr();
        for v in csr.values_mut() {
            *v = v.abs();
        }
        let p = csr.sym_normalized();
        let n = p.nrows();
        let mut lap_coo = CooMatrix::new(n, n);
        for i in 0..n {
            lap_coo.push(i, i, 1.0).unwrap();
        }
        let lap = CsrMatrix::linear_combination(
            &[&lap_coo.to_csr(), &p],
            &[1.0, -1.0],
        ).unwrap();
        let e = jacobi_eig(&lap.to_dense()).unwrap();
        prop_assert!(e.values[0] > -1e-9, "λmin = {}", e.values[0]);
        prop_assert!(e.values[n - 1] < 2.0 + 1e-9, "λmax = {}", e.values[n - 1]);
    }
}

/// Dense-enough matrix to cross `matvec_parallel`'s sequential cutoff,
/// so the pool-dispatched path itself (not the fallback) is exercised.
fn large_random_csr(n: usize, per_row: usize, seed: u64) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    let mut state = seed | 1;
    for i in 0..n {
        for _ in 0..per_row {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % n;
            let v = ((state >> 11) & 0xffff) as f64 / 4096.0 - 8.0;
            coo.push(i, j, v).unwrap();
        }
    }
    coo.to_csr()
}

#[test]
fn pooled_matvec_bit_identical_above_cutoff() {
    let a = large_random_csr(700, 16, 41); // nnz ≈ 11k > the 8192 cutoff
    assert!(a.nnz() > 8192, "test must exercise the pooled path");
    let x: Vec<f64> = (0..700).map(|i| (i as f64 * 0.13).sin()).collect();
    let mut y_seq = vec![0.0; 700];
    let mut y_par = vec![0.0; 700];
    a.matvec(&x, &mut y_seq);
    a.matvec_parallel(&x, &mut y_par, 8);
    assert_eq!(y_seq, y_par);
}

#[test]
fn block_matvec_bit_identical_above_cutoff() {
    let a = large_random_csr(400, 8, 43);
    let b = 8;
    assert!(a.nnz() * b > 8192, "test must exercise the pooled path");
    let mut x = DenseMatrix::zeros(400, b);
    for (i, v) in x.data_mut().iter_mut().enumerate() {
        *v = ((i * 97) % 23) as f64 - 11.0;
    }
    let mut y = DenseMatrix::zeros(400, b);
    a.matvec_block(&x, &mut y, 8);
    let mut xc = vec![0.0; 400];
    let mut yc = vec![0.0; 400];
    for j in 0..b {
        for i in 0..400 {
            xc[i] = x[(i, j)];
        }
        a.matvec(&xc, &mut yc);
        for i in 0..400 {
            assert_eq!(y[(i, j)], yc[i], "col {j} row {i}");
        }
    }
}

/// A panicking task must not poison the pool for subsequent submits —
/// both on a private (injected) pool and on the shared global one that
/// all library helpers dispatch to.
#[test]
fn pool_panic_containment() {
    let pool = WorkerPool::new(4);
    let blown = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.for_each_chunk(256, 4, 1, |range| {
            if range.contains(&200) {
                panic!("task blew up");
            }
        });
    }));
    assert!(blown.is_err(), "the panic must reach the submitter");
    // The same pool keeps serving.
    let sum = std::sync::atomic::AtomicUsize::new(0);
    pool.for_each_chunk(256, 4, 1, |range| {
        sum.fetch_add(range.len(), std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 256);

    // And a panic inside a library helper leaves the global pool usable.
    let a = large_random_csr(700, 16, 47);
    let x: Vec<f64> = (0..700).map(|i| i as f64 * 0.01).collect();
    let blown = std::panic::catch_unwind(|| {
        mvag_sparse::parallel::par_map(700, 4, |i| {
            if i == 500 {
                panic!("helper task blew up");
            }
            i
        })
    });
    assert!(blown.is_err());
    let mut y_seq = vec![0.0; 700];
    let mut y_par = vec![0.0; 700];
    a.matvec(&x, &mut y_seq);
    a.matvec_parallel(&x, &mut y_par, 4);
    assert_eq!(y_seq, y_par, "global pool must survive a panicking task");
}

/// The fused operator's spectral bound (Gershgorin on the materialized
/// sum) must dominate the true spectrum, like the lazy bound it replaces
/// inside the eigensolver shift selection.
#[test]
fn fused_spectral_bound_dominates() {
    // Symmetric views (the LinOp contract): Gershgorin on the fused
    // matrix must dominate the true spectral radius of the sum.
    let symmetrize =
        |m: &CsrMatrix| CsrMatrix::linear_combination(&[m, &m.transpose()], &[0.5, 0.5]).unwrap();
    let a = symmetrize(&large_random_csr(60, 4, 53));
    let b = symmetrize(&large_random_csr(60, 4, 59));
    let fused = FusedSumOp::new(vec![&a, &b], vec![0.7, 0.3]).unwrap();
    let bound = LinOp::spectral_bound(&fused).unwrap();
    let reference = CsrMatrix::linear_combination(&[&a, &b], &[0.7, 0.3]).unwrap();
    let eig = jacobi_eig(&reference.to_dense()).unwrap();
    let spec_max = eig.values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    assert!(
        bound + 1e-9 >= spec_max,
        "gershgorin {bound} vs spectral radius {spec_max}"
    );
}

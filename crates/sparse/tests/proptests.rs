//! Property-based tests for the linear algebra substrate.

use mvag_sparse::eigen::{jacobi_eig, smallest_eigenvalues, EigOptions};
use mvag_sparse::qr::qr_thin;
use mvag_sparse::{vecops, CooMatrix, CsrMatrix, DenseMatrix};
use proptest::prelude::*;

/// Strategy: a random sparse square matrix as triplets.
fn coo_strategy(max_n: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -10.0f64..10.0), 0..max_nnz).prop_map(
            move |triplets| {
                let mut coo = CooMatrix::new(n, n);
                for (r, c, v) in triplets {
                    coo.push(r, c, v).unwrap();
                }
                coo
            },
        )
    })
}

/// Strategy: a random symmetric sparse matrix.
fn sym_coo_strategy(max_n: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -10.0f64..10.0), 0..max_nnz).prop_map(
            move |triplets| {
                let mut coo = CooMatrix::new(n, n);
                for (r, c, v) in triplets {
                    coo.push_sym(r, c, v).unwrap();
                }
                coo
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_matvec_matches_dense(coo in coo_strategy(24, 80)) {
        let csr = coo.to_csr();
        let n = csr.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_sparse = vec![0.0; n];
        csr.matvec(&x, &mut y_sparse);
        let dense = csr.to_dense();
        let mut y_dense = vec![0.0; n];
        dense.matvec(&x, &mut y_dense);
        for (a, b) in y_sparse.iter().zip(&y_dense) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn transpose_is_involution(coo in coo_strategy(20, 60)) {
        let csr = coo.to_csr();
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn transpose_swaps_entries(coo in coo_strategy(16, 40)) {
        let csr = coo.to_csr();
        let t = csr.transpose();
        for (r, c, v) in csr.iter() {
            prop_assert_eq!(t.get(c, r), v);
        }
    }

    #[test]
    fn symmetric_builder_gives_symmetric(coo in sym_coo_strategy(18, 50)) {
        let csr = coo.to_csr();
        prop_assert!(csr.is_symmetric(1e-12));
    }

    #[test]
    fn linear_combination_matches_elementwise(
        coo1 in coo_strategy(12, 30),
        w1 in -3.0f64..3.0,
        w2 in -3.0f64..3.0,
    ) {
        let a = coo1.to_csr();
        let n = a.nrows();
        // Second matrix on same shape: the identity.
        let b = CsrMatrix::identity(n);
        let s = CsrMatrix::linear_combination(&[&a, &b], &[w1, w2]).unwrap();
        for r in 0..n {
            for c in 0..n {
                let expect = w1 * a.get(r, c) + w2 * b.get(r, c);
                prop_assert!((s.get(r, c) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn jacobi_eigenvalues_match_trace_and_residuals(coo in sym_coo_strategy(12, 40)) {
        let a = coo.to_csr().to_dense();
        let n = a.nrows();
        let e = jacobi_eig(&a).unwrap();
        let tr: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((tr - sum).abs() < 1e-8 * (1.0 + tr.abs()));
        // Residual of the extreme pairs.
        for j in [0, n - 1] {
            let v = e.vectors.col(j);
            let mut av = vec![0.0; n];
            a.matvec(&v, &mut av);
            for i in 0..n {
                prop_assert!((av[i] - e.values[j] * v[i]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn lanczos_matches_jacobi_on_symmetric(coo in sym_coo_strategy(14, 40)) {
        // Dense fallback path exercises materialization; compare full chain.
        let csr = coo.to_csr();
        let k = 3.min(csr.nrows());
        let opts = EigOptions::default();
        let lv = smallest_eigenvalues(&csr, k, &opts).unwrap();
        let jv = jacobi_eig(&csr.to_dense()).unwrap();
        for (j, (a, b)) in lv.iter().zip(jv.values.iter()).enumerate().take(k) {
            prop_assert!((a - b).abs() < 1e-7, "λ{} = {} vs {}", j, a, b);
        }
    }

    #[test]
    fn qr_orthonormal_and_reconstructs(
        rows in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..5.0, 4),
            6..12,
        )
    ) {
        let a = DenseMatrix::from_rows(&rows).unwrap();
        let (q, r) = qr_thin(&a).unwrap();
        let qr = q.matmul(&r).unwrap();
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                prop_assert!((qr[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn norm2_scale_invariance(v in proptest::collection::vec(-100.0f64..100.0, 1..40), s in 0.1f64..10.0) {
        let scaled: Vec<f64> = v.iter().map(|x| x * s).collect();
        let n1 = vecops::norm2(&v) * s;
        let n2 = vecops::norm2(&scaled);
        prop_assert!((n1 - n2).abs() <= 1e-10 * (1.0 + n1.abs()));
    }

    #[test]
    fn cosine_bounded(
        a in proptest::collection::vec(-10.0f64..10.0, 5),
        b in proptest::collection::vec(-10.0f64..10.0, 5),
    ) {
        let c = vecops::cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn sym_normalized_spectrum_bounded(coo in sym_coo_strategy(16, 50)) {
        // For a nonnegative symmetric matrix, the normalized Laplacian
        // I − D^{-1/2} A D^{-1/2} has spectrum in [0, 2].
        let mut csr = coo.to_csr();
        for v in csr.values_mut() {
            *v = v.abs();
        }
        let p = csr.sym_normalized();
        let n = p.nrows();
        let mut lap_coo = CooMatrix::new(n, n);
        for i in 0..n {
            lap_coo.push(i, i, 1.0).unwrap();
        }
        let lap = CsrMatrix::linear_combination(
            &[&lap_coo.to_csr(), &p],
            &[1.0, -1.0],
        ).unwrap();
        let e = jacobi_eig(&lap.to_dense()).unwrap();
        prop_assert!(e.values[0] > -1e-9, "λmin = {}", e.values[0]);
        prop_assert!(e.values[n - 1] < 2.0 + 1e-9, "λmax = {}", e.values[n - 1]);
    }
}

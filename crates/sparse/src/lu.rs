//! LU factorization with partial pivoting for small dense systems.
//!
//! The COBYLA-style optimizer fits linear interpolation models through
//! `p + 1` simplex vertices each iteration; the resulting `p × p` systems
//! are general (not SPD), so Cholesky does not apply.

use crate::{DenseMatrix, Result, SparseError};

/// An LU factorization `P A = L U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: DenseMatrix,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    /// * [`SparseError::ShapeMismatch`] if not square.
    /// * [`SparseError::NumericalBreakdown`] if (numerically) singular.
    pub fn factor(a: &DenseMatrix) -> Result<Self> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(SparseError::ShapeMismatch(format!(
                "lu needs square matrix, got {}x{}",
                a.nrows(),
                a.ncols()
            )));
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Pivot search.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < f64::EPSILON * n as f64 {
                return Err(SparseError::NumericalBreakdown("lu: singular matrix"));
            }
            if pivot_row != k {
                perm.swap(pivot_row, k);
                sign = -sign;
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
            }
            let inv_pivot = 1.0 / lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] * inv_pivot;
                lu[(i, k)] = factor;
                for c in (k + 1)..n {
                    let delta = factor * lu[(k, c)];
                    lu[(i, c)] -= delta;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    /// [`SparseError::ShapeMismatch`] on wrong rhs length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.nrows();
        if b.len() != n {
            return Err(SparseError::ShapeMismatch(format!(
                "rhs length {} != {}",
                b.len(),
                n
            )));
        }
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward: L y = Pb (unit diagonal).
        for i in 1..n {
            for k in 0..i {
                x[i] -= self.lu[(i, k)] * x[k];
            }
        }
        // Back: U x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.lu[(i, k)] * x[k];
            }
            x[i] /= self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.nrows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_general_system() {
        let a = DenseMatrix::from_rows(&[
            vec![0.0, 2.0, 1.0], // zero pivot forces a row swap
            vec![1.0, -1.0, 3.0],
            vec![2.0, 4.0, -2.0],
        ])
        .unwrap();
        let x_true = [2.0, -1.0, 0.5];
        let mut b = vec![0.0; 3];
        a.matvec(&x_true, &mut b);
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn detects_singular() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(
            Lu::factor(&a),
            Err(SparseError::NumericalBreakdown(_))
        ));
    }

    #[test]
    fn determinant() {
        let a = DenseMatrix::from_rows(&[vec![3.0, 1.0], vec![2.0, 4.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_with_pivoting() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_square_rejected() {
        assert!(Lu::factor(&DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let lu = Lu::factor(&DenseMatrix::identity(2)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }
}

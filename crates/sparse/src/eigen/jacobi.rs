//! Cyclic Jacobi eigensolver for small dense symmetric matrices.
//!
//! Quadratically convergent and unconditionally stable; used as the exact
//! reference in tests, as the dense fallback for tiny operators inside the
//! Lanczos driver, and for the small Gram-matrix eigenproblems in the
//! randomized SVD.

use crate::{DenseMatrix, Result, SparseError};

/// Eigen-decomposition of a dense symmetric matrix.
#[derive(Debug, Clone)]
pub struct DenseEig {
    /// Eigenvalues ascending.
    pub values: Vec<f64>,
    /// Columns are the matching unit eigenvectors.
    pub vectors: DenseMatrix,
}

/// Computes all eigenpairs of a symmetric matrix by the cyclic Jacobi
/// method. Only the lower triangle is read.
///
/// # Errors
/// * [`SparseError::ShapeMismatch`] if not square.
/// * [`SparseError::NoConvergence`] after 100 sweeps (off-diagonal mass
///   shrinks quadratically, so this indicates NaN/Inf input).
pub fn jacobi_eig(a: &DenseMatrix) -> Result<DenseEig> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(SparseError::ShapeMismatch(format!(
            "jacobi needs square, got {}x{}",
            a.nrows(),
            a.ncols()
        )));
    }
    if n == 0 {
        return Ok(DenseEig {
            values: Vec::new(),
            vectors: DenseMatrix::zeros(0, 0),
        });
    }
    // Work on a symmetrized copy.
    let mut m = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = a[(i, j)];
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    let mut v = DenseMatrix::identity(n);
    let max_sweeps = 100;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-14 * (1.0 + m.max_abs()) * n as f64 {
            return Ok(sorted(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply G(p,q,θ)ᵀ M G(p,q,θ).
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(SparseError::NoConvergence {
        algorithm: "jacobi",
        iterations: max_sweeps,
    })
}

fn sorted(m: DenseMatrix, v: DenseMatrix) -> DenseEig {
    let n = m.nrows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| m[(a, a)].partial_cmp(&m[(b, b)]).expect("finite"));
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_c)] = v[(r, old_c)];
        }
    }
    DenseEig { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &DenseMatrix, e: &DenseEig, tol: f64) {
        let n = a.nrows();
        for j in 0..n {
            let col = e.vectors.col(j);
            let mut av = vec![0.0; n];
            a.matvec(&col, &mut av);
            for i in 0..n {
                assert!(
                    (av[i] - e.values[j] * col[i]).abs() < tol,
                    "residual for pair {j}"
                );
            }
        }
        // Orthonormality
        for i in 0..n {
            for j in i..n {
                let d = crate::vecops::dot(&e.vectors.col(i), &e.vectors.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < tol);
            }
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = DenseMatrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let e = jacobi_eig(&a).unwrap();
        assert_eq!(e.values, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_two_by_two() {
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = jacobi_eig(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        check_decomposition(&a, &e, 1e-12);
    }

    #[test]
    fn random_symmetric() {
        let n = 15;
        let mut a = DenseMatrix::zeros(n, n);
        let mut state = 42u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let e = jacobi_eig(&a).unwrap();
        check_decomposition(&a, &e, 1e-9);
        // Trace preserved.
        let tr: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((tr - sum).abs() < 1e-9);
    }

    #[test]
    fn negative_eigenvalues() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 2.0], vec![2.0, 0.0]]).unwrap();
        let e = jacobi_eig(&a).unwrap();
        assert!((e.values[0] + 2.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_square_rejected() {
        assert!(jacobi_eig(&DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn empty_matrix() {
        let e = jacobi_eig(&DenseMatrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }
}

//! Symmetric eigensolvers.
//!
//! Three layers, each built on the one below:
//!
//! * [`tridiag`] — implicit-QL eigensolver for symmetric tridiagonal
//!   matrices (the projected problem inside Lanczos);
//! * [`jacobi`] — cyclic Jacobi for small dense symmetric matrices (exact
//!   reference and fallback for tiny operators);
//! * [`lanczos`] — Lanczos with full reorthogonalization extracting the
//!   smallest eigenpairs of a bounded symmetric [`LinOp`](crate::LinOp),
//!   which is precisely the `Eigenvalues(L, k+1)` primitive in Algorithms 1
//!   and 2 of the SGLA paper.

pub mod jacobi;
pub mod lanczos;
pub mod subspace;
pub mod tridiag;

pub use jacobi::jacobi_eig;
pub use lanczos::{
    smallest_eigenpairs, smallest_eigenvalues, smallest_eigenvalues_full, EigOptions, EigResult,
    EigStats,
};
pub use subspace::{smallest_eigenpairs_subspace, SubspaceOptions};
pub use tridiag::SymTridiag;

//! Lanczos iteration with full reorthogonalization, deflation locking, and
//! a multiplicity-verification sweep, for the smallest eigenpairs of
//! bounded symmetric operators.
//!
//! This is the `Eigenvalues(L, k+1)` primitive of SGLA's Algorithms 1 & 2.
//! Normalized Laplacians have spectrum in `[0, 2]`, so rather than
//! shift-invert (which would require sparse linear solves) we run Lanczos on
//! the *spectral complement* `B = σI − L` with `σ ≥ λ_max(L)`: the smallest
//! eigenvalues of `L` are the dominant eigenvalues of `B`, which Lanczos
//! finds fastest.
//!
//! Two failure modes of textbook Lanczos are handled explicitly because
//! both occur routinely on multi-view Laplacians:
//!
//! 1. **Breakdown** (an invariant subspace, e.g. the constant vector of a
//!    connected view) — restart the three-term recurrence with a fresh
//!    random direction orthogonal to the basis; the projected matrix
//!    becomes block tridiagonal, which the QL solver handles transparently.
//! 2. **Missed multiplicity** — a single-vector Krylov space contains at
//!    most one direction per eigenvalue, so exactly repeated eigenvalues
//!    (disconnected graph views have `λ = 0` with multiplicity equal to the
//!    number of components) are silently *skipped*, with all residuals
//!    small. Residual checks cannot detect this. After the requested pairs
//!    converge we therefore run a cheap *verification sweep*: one more
//!    Lanczos pass deflated against everything found so far; if the
//!    complement contains an eigenvalue smaller than our k-th value, a copy
//!    was missed — lock it and re-verify.

use super::tridiag::SymTridiag;
use crate::linop::{LinOp, ShiftedNegOp};
use crate::parallel::{default_threads, par_chunks_mut, par_map};
use crate::{vecops, DenseMatrix, Result, SparseError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the Lanczos driver.
#[derive(Debug, Clone)]
pub struct EigOptions {
    /// Relative residual tolerance for Ritz pairs (default `1e-8`).
    pub tol: f64,
    /// Maximum Krylov dimension per pass (default `0` = auto:
    /// `min(n, max(6(k+1), 420))`).
    pub max_dim: usize,
    /// RNG seed for start vectors (deterministic by default).
    pub seed: u64,
    /// Below this dimension the operator is materialized and solved densely
    /// by Jacobi (default 96).
    pub dense_fallback: usize,
    /// Run the multiplicity-verification sweep (default `true`). Disable
    /// only when the spectrum is known to be simple.
    pub verify_multiplicity: bool,
    /// Worker-pool width cap for reorthogonalization on large problems
    /// (default: [`default_threads`] — autodetect or `SGLA_THREADS`,
    /// ≤ 16). Work runs on the persistent pool, so per-pass dispatch is
    /// cheap even though a solve performs thousands of parallel regions.
    pub threads: usize,
    /// Optional warm-start block: an `n × c` matrix whose columns
    /// approximate the sought eigenvectors (e.g. the previous solve's
    /// output on a slightly perturbed operator). Columns are consumed
    /// as start directions — the first column seeds the first Lanczos
    /// pass, later columns seed breakdown restarts and deflated
    /// passes — so a good guess collapses each pass's Krylov growth.
    /// Results are identical in the limit; only convergence speed
    /// changes. Ignored on the dense fallback path. Default `None`.
    pub init: Option<DenseMatrix>,
}

impl Default for EigOptions {
    fn default() -> Self {
        EigOptions {
            tol: 1e-8,
            max_dim: 0,
            seed: 7,
            dense_fallback: 96,
            verify_multiplicity: true,
            threads: default_threads(),
            init: None,
        }
    }
}

/// Result of an eigen-computation.
#[derive(Debug, Clone)]
pub struct EigResult {
    /// The `k` smallest eigenvalues, ascending.
    pub values: Vec<f64>,
    /// `n × k` matrix of matching eigenvectors (empty when only values were
    /// requested).
    pub vectors: DenseMatrix,
    /// Total operator applications performed.
    pub matvecs: usize,
    /// Whether all requested pairs met the residual tolerance.
    pub converged: bool,
    /// Iteration-level work counters (observability; zero on the dense
    /// fallback path, which performs none of the counted steps).
    pub stats: EigStats,
}

/// Work counters of one Lanczos solve, surfaced so callers (training
/// spans, benchmarks) can attribute time without instrumenting the
/// solver's hot loops themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EigStats {
    /// Deflated Lanczos passes run (locking rounds plus
    /// multiplicity-verification probes).
    pub rounds: usize,
    /// Breakdown restarts: invariant subspaces hit mid-pass, each
    /// answered with a fresh orthogonal start direction.
    pub restarts: usize,
    /// Full reorthogonalization sweeps performed (each sweep is two
    /// projection passes over deflation set + basis).
    pub reortho_sweeps: usize,
}

/// Computes the `k` smallest eigenvalues (no eigenvector matrix assembled)
/// of a symmetric operator. See [`smallest_eigenpairs`].
pub fn smallest_eigenvalues(op: &dyn LinOp, k: usize, opts: &EigOptions) -> Result<Vec<f64>> {
    run(op, k, opts, false).map(|r| r.values)
}

/// Like [`smallest_eigenvalues`] but returns the full [`EigResult`]
/// (with an empty eigenvector matrix) so callers can read the matvec
/// and iteration counters alongside the values.
///
/// # Errors
/// See [`smallest_eigenpairs`].
pub fn smallest_eigenvalues_full(op: &dyn LinOp, k: usize, opts: &EigOptions) -> Result<EigResult> {
    run(op, k, opts, false)
}

/// Computes the `k` smallest eigenpairs of a symmetric operator.
///
/// # Errors
/// * [`SparseError::InvalidArgument`] if `k == 0` or `k > n`.
/// * [`SparseError::NoConvergence`] if repeated deflated passes make no
///   progress (pathological operators; does not occur for finite symmetric
///   input with sane tolerances).
pub fn smallest_eigenpairs(op: &dyn LinOp, k: usize, opts: &EigOptions) -> Result<EigResult> {
    run(op, k, opts, true)
}

struct Locked {
    values: Vec<f64>,
    vectors: Vec<Vec<f64>>,
}

fn run(op: &dyn LinOp, k: usize, opts: &EigOptions, want_vectors: bool) -> Result<EigResult> {
    let n = op.dim();
    if k == 0 {
        return Err(SparseError::InvalidArgument(
            "requested 0 eigenpairs".into(),
        ));
    }
    if k > n {
        return Err(SparseError::InvalidArgument(format!(
            "requested {k} eigenpairs of a {n}-dimensional operator"
        )));
    }
    if n <= opts.dense_fallback || k + 2 >= n {
        return dense_path(op, k, want_vectors);
    }
    // Warm-start columns are popped front-first as start directions.
    let mut init_cols: std::collections::VecDeque<Vec<f64>> = match &opts.init {
        Some(block) => {
            if block.nrows() != n {
                return Err(SparseError::InvalidArgument(format!(
                    "warm-start block has {} rows for an {n}-dimensional operator",
                    block.nrows()
                )));
            }
            (0..block.ncols()).map(|j| block.col(j)).collect()
        }
        None => std::collections::VecDeque::new(),
    };

    let shift = match op.spectral_bound() {
        Some(b) => b * (1.0 + 1e-10) + 1e-12,
        None => estimate_bound(op, opts.seed) * 1.05 + 1e-12,
    };
    let b_op = ShiftedNegOp::new(op, shift);
    let max_dim = if opts.max_dim == 0 {
        n.min((6 * (k + 1)).max(420))
    } else {
        opts.max_dim.min(n)
    };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut matvecs = 0usize;
    let mut stats = EigStats::default();
    let mut locked = Locked {
        values: Vec::with_capacity(k + 4),
        vectors: Vec::with_capacity(k + 4),
    };
    let mut all_converged = true;

    // Phase 1: lock k pairs via deflated Lanczos passes.
    lock_pairs(
        &b_op,
        shift,
        k,
        opts,
        max_dim,
        &mut rng,
        &mut init_cols,
        &mut matvecs,
        &mut stats,
        &mut locked,
        &mut all_converged,
    )?;

    // Phase 2: verification sweep for missed multiplicities. Each round
    // asks the deflated complement for its single smallest eigenvalue; if
    // it undercuts our current k-th smallest, a copy was missed.
    if opts.verify_multiplicity && locked.vectors.len() < n {
        let mut verify_opts = opts.clone();
        verify_opts.tol = opts.tol.max(1e-6);
        for _round in 0..k {
            let kth = kth_smallest(&locked.values, k);
            let margin = 1e-8 * (1.0 + kth.abs());
            let mut probe = Locked {
                values: Vec::new(),
                vectors: Vec::new(),
            };
            let mut probe_conv = true;
            // A failed probe (no convergence in the complement) means the
            // complement has no easily reachable eigenvalue below ours;
            // treat as verified.
            let probe_res = lock_pairs(
                &b_op,
                shift,
                1,
                &verify_opts,
                max_dim,
                &mut rng,
                &mut init_cols,
                &mut matvecs,
                &mut stats,
                &mut ProbeInto {
                    base: &locked,
                    extra: &mut probe,
                },
                &mut probe_conv,
            );
            match probe_res {
                Ok(()) if !probe.values.is_empty() && probe.values[0] < kth - margin => {
                    locked.values.push(probe.values[0]);
                    locked.vectors.push(probe.vectors.swap_remove(0));
                }
                _ => break,
            }
            if locked.vectors.len() >= n {
                break;
            }
        }
    }

    // Assemble the k smallest of everything locked.
    let mut order: Vec<usize> = (0..locked.values.len()).collect();
    order.sort_by(|&a, &b| {
        locked.values[a]
            .partial_cmp(&locked.values[b])
            .expect("finite eigenvalues")
    });
    order.truncate(k);
    let values: Vec<f64> = order.iter().map(|&i| locked.values[i]).collect();
    let vectors = if want_vectors {
        let mut m = DenseMatrix::zeros(n, k);
        for (j, &i) in order.iter().enumerate() {
            m.set_col(j, &locked.vectors[i]);
        }
        m
    } else {
        DenseMatrix::zeros(0, 0)
    };
    Ok(EigResult {
        values,
        vectors,
        matvecs,
        converged: all_converged,
        stats,
    })
}

fn kth_smallest(values: &[f64], k: usize) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[k.min(v.len()) - 1]
}

/// Abstraction letting the verification probe deflate against the main
/// locked set while collecting results separately.
trait LockSink {
    fn deflate_vectors(&self) -> Vec<&[f64]>;
    fn locked_count(&self) -> usize;
    fn push(&mut self, value: f64, vector: Vec<f64>);
}

impl LockSink for Locked {
    fn deflate_vectors(&self) -> Vec<&[f64]> {
        self.vectors.iter().map(|v| v.as_slice()).collect()
    }
    fn locked_count(&self) -> usize {
        self.values.len()
    }
    fn push(&mut self, value: f64, vector: Vec<f64>) {
        self.values.push(value);
        self.vectors.push(vector);
    }
}

struct ProbeInto<'a> {
    base: &'a Locked,
    extra: &'a mut Locked,
}

impl LockSink for ProbeInto<'_> {
    fn deflate_vectors(&self) -> Vec<&[f64]> {
        self.base
            .vectors
            .iter()
            .chain(self.extra.vectors.iter())
            .map(|v| v.as_slice())
            .collect()
    }
    fn locked_count(&self) -> usize {
        self.extra.values.len()
    }
    fn push(&mut self, value: f64, vector: Vec<f64>) {
        self.extra.values.push(value);
        self.extra.vectors.push(vector);
    }
}

/// Runs deflated Lanczos passes until `target` pairs are locked into
/// `sink`. Grows the Krylov dimension on stalls; force-locks with
/// `converged = false` once `max_dim` is reached.
#[allow(clippy::too_many_arguments)]
fn lock_pairs<S: LockSink>(
    b_op: &ShiftedNegOp<'_, dyn LinOp + '_>,
    shift: f64,
    target: usize,
    opts: &EigOptions,
    max_dim: usize,
    rng: &mut StdRng,
    init: &mut std::collections::VecDeque<Vec<f64>>,
    matvecs: &mut usize,
    stats: &mut EigStats,
    sink: &mut S,
    all_converged: &mut bool,
) -> Result<()> {
    let n = b_op.dim();
    let mut m = n.min((2 * (target + 1) + 30).max(36));
    let mut rounds = 0usize;
    while sink.locked_count() < target {
        rounds += 1;
        stats.rounds += 1;
        if rounds > 64 {
            return Err(SparseError::NoConvergence {
                algorithm: "lanczos deflation loop",
                iterations: *matvecs,
            });
        }
        let deflate = sink.deflate_vectors();
        if deflate.len() >= n {
            // Nothing left in the complement.
            return Ok(());
        }
        let need = target - sink.locked_count();
        let m_pass = m.min(n - deflate.len());
        let (basis, alphas, betas, exhausted) = lanczos_factorization(
            b_op,
            m_pass,
            &deflate,
            rng,
            init,
            matvecs,
            stats,
            opts.threads,
        )?;
        let m_eff = alphas.len();
        if m_eff == 0 {
            return Ok(());
        }
        let tri = SymTridiag::new(alphas.clone(), betas[..m_eff - 1].to_vec())?;
        let te = tri.eig()?;
        let last_beta = betas[m_eff - 1];
        let at_limit = m_pass >= max_dim.min(n - deflate.len()) || exhausted;
        let mut newly = 0usize;
        for j in 0..need.min(m_eff) {
            let col = m_eff - 1 - j; // largest μ of B first = smallest λ
            let mu = te.values[col];
            let bottom = te.vectors[(m_eff - 1, col)];
            let resid = (last_beta * bottom).abs();
            let ok = resid <= opts.tol * mu.abs().max(1.0);
            if ok || at_limit {
                if !ok {
                    *all_converged = false;
                }
                let vec = assemble_ritz(&basis, &te.vectors, col);
                sink.push(shift - mu, vec);
                newly += 1;
            } else {
                break;
            }
        }
        if sink.locked_count() >= target {
            return Ok(());
        }
        if newly == 0 {
            if at_limit {
                // Force-locked everything we could and still short: the
                // complement is exhausted.
                return Ok(());
            }
            m = (2 * m).min(max_dim);
        }
    }
    Ok(())
}

/// Runs an `m`-step Lanczos factorization of `op`, keeping every iterate
/// orthogonal to `deflate` and to the whole basis (full
/// reorthogonalization, two passes). Returns
/// `(basis, alphas, betas, exhausted)`; `betas[j]` couples basis vectors
/// `j` and `j+1`, a zero entry marking a breakdown restart (block
/// boundary). `exhausted` means basis + deflation span the full space.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn lanczos_factorization(
    op: &dyn LinOp,
    m: usize,
    deflate: &[&[f64]],
    rng: &mut StdRng,
    init: &mut std::collections::VecDeque<Vec<f64>>,
    matvecs: &mut usize,
    stats: &mut EigStats,
    threads: usize,
) -> Result<(Vec<Vec<f64>>, Vec<f64>, Vec<f64>, bool)> {
    let n = op.dim();
    let m = m.min(n - deflate.len());
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);
    let mut w = vec![0.0f64; n];
    let mut exhausted = false;

    let v0 = match fresh_direction(n, deflate, &basis, rng, init, stats, threads) {
        Some(v) => v,
        None => return Ok((basis, alphas, betas, true)),
    };
    basis.push(v0);

    for j in 0..m {
        op.matvec(&basis[j], &mut w);
        *matvecs += 1;
        let alpha = vecops::dot(&basis[j], &w);
        alphas.push(alpha);
        vecops::axpy(-alpha, &basis[j], &mut w);
        if j > 0 && betas[j - 1] != 0.0 {
            vecops::axpy(-betas[j - 1], &basis[j - 1], &mut w);
        }
        orthogonalize(&mut w, deflate, &basis, threads);
        stats.reortho_sweeps += 1;
        let beta = vecops::norm2(&w);
        if j + 1 == m {
            betas.push(beta);
            break;
        }
        if beta > 1e-12 {
            betas.push(beta);
            let inv = 1.0 / beta;
            basis.push(w.iter().map(|x| x * inv).collect());
        } else {
            // Invariant subspace: restart with a fresh orthogonal direction.
            betas.push(0.0);
            stats.restarts += 1;
            match fresh_direction(n, deflate, &basis, rng, init, stats, threads) {
                Some(fresh) => basis.push(fresh),
                None => {
                    exhausted = true;
                    break;
                }
            }
        }
    }
    betas.truncate(alphas.len());
    while betas.len() < alphas.len() {
        betas.push(0.0);
    }
    Ok((basis, alphas, betas, exhausted))
}

/// Two-pass orthogonalization of `w` against the deflation set and the
/// Lanczos basis, with thread-parallel projections/updates on large
/// problems.
fn orthogonalize(w: &mut [f64], deflate: &[&[f64]], basis: &[Vec<f64>], threads: usize) {
    let n = w.len();
    let total = deflate.len() + basis.len();
    let parallel = threads > 1 && n * total > 1 << 18;
    for _pass in 0..2 {
        if parallel {
            // projections
            let projs: Vec<f64> = par_map(total, threads, |i| {
                let v: &[f64] = if i < deflate.len() {
                    deflate[i]
                } else {
                    &basis[i - deflate.len()]
                };
                vecops::dot(v, w)
            });
            // w -= Σ p_i v_i, parallel over element chunks
            par_chunks_mut(w, threads, |start, chunk| {
                for (i, &p) in projs.iter().enumerate() {
                    if p == 0.0 {
                        continue;
                    }
                    let v: &[f64] = if i < deflate.len() {
                        deflate[i]
                    } else {
                        &basis[i - deflate.len()]
                    };
                    let vs = &v[start..start + chunk.len()];
                    for (c, &vv) in chunk.iter_mut().zip(vs) {
                        *c -= p * vv;
                    }
                }
            });
        } else {
            for v in deflate
                .iter()
                .copied()
                .chain(basis.iter().map(|b| b.as_slice()))
            {
                let p = vecops::dot(v, w);
                if p != 0.0 {
                    vecops::axpy(-p, v, w);
                }
            }
        }
    }
}

fn assemble_ritz(basis: &[Vec<f64>], tri_vectors: &DenseMatrix, col: usize) -> Vec<f64> {
    let n = basis.first().map_or(0, Vec::len);
    let m_eff = tri_vectors.nrows();
    let mut out = vec![0.0f64; n];
    for (j, v) in basis.iter().take(m_eff).enumerate() {
        let s = tri_vectors[(j, col)];
        if s != 0.0 {
            vecops::axpy(s, v, &mut out);
        }
    }
    vecops::normalize(&mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn fresh_direction(
    n: usize,
    deflate: &[&[f64]],
    basis: &[Vec<f64>],
    rng: &mut StdRng,
    init: &mut std::collections::VecDeque<Vec<f64>>,
    stats: &mut EigStats,
    threads: usize,
) -> Option<Vec<f64>> {
    if deflate.len() + basis.len() >= n {
        return None;
    }
    // Prefer warm-start columns: each is consumed once; one whose
    // direction is already spanned (tiny residual) falls through to
    // the next column or the random fallback.
    while let Some(mut w) = init.pop_front() {
        orthogonalize(&mut w, deflate, basis, threads);
        stats.reortho_sweeps += 1;
        if vecops::normalize(&mut w) > 1e-8 {
            return Some(w);
        }
    }
    for _attempt in 0..6 {
        let mut w: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        orthogonalize(&mut w, deflate, basis, threads);
        stats.reortho_sweeps += 1;
        if vecops::normalize(&mut w) > 1e-8 {
            return Some(w);
        }
    }
    None
}

fn estimate_bound(op: &dyn LinOp, seed: u64) -> f64 {
    let n = op.dim();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    vecops::normalize(&mut x);
    let mut y = vec![0.0; n];
    let mut est = 0.0f64;
    for _ in 0..30 {
        op.matvec(&x, &mut y);
        let nrm = vecops::norm2(&y);
        if nrm == 0.0 {
            return 1.0;
        }
        est = nrm;
        std::mem::swap(&mut x, &mut y);
        vecops::scale(1.0 / est, &mut x);
    }
    est
}

fn dense_path(op: &dyn LinOp, k: usize, want_vectors: bool) -> Result<EigResult> {
    let n = op.dim();
    let mut a = DenseMatrix::zeros(n, n);
    let mut e = vec![0.0f64; n];
    let mut col = vec![0.0f64; n];
    for j in 0..n {
        e[j] = 1.0;
        op.matvec(&e, &mut col);
        e[j] = 0.0;
        for i in 0..n {
            a[(i, j)] = col[i];
        }
    }
    let eig = super::jacobi::jacobi_eig(&a)?;
    let values = eig.values[..k].to_vec();
    let vectors = if want_vectors {
        let mut v = DenseMatrix::zeros(n, k);
        for j in 0..k {
            v.set_col(j, &eig.vectors.col(j));
        }
        v
    } else {
        DenseMatrix::zeros(0, 0)
    };
    Ok(EigResult {
        values,
        vectors,
        matvecs: n,
        converged: true,
        stats: EigStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, CsrMatrix};
    use std::f64::consts::PI;

    /// Normalized Laplacian of the cycle C_n: eigenvalues 1 − cos(2πj/n).
    fn cycle_norm_laplacian(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
            coo.push(i, (i + 1) % n, -0.5).unwrap();
            coo.push(i, (i + n - 1) % n, -0.5).unwrap();
        }
        coo.to_csr()
    }

    fn cycle_eigs(n: usize) -> Vec<f64> {
        let mut v: Vec<f64> = (0..n)
            .map(|j| 1.0 - (2.0 * PI * j as f64 / n as f64).cos())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn dense_fallback_small_cycle() {
        let n = 24;
        let l = cycle_norm_laplacian(n);
        let res = smallest_eigenpairs(&l, 5, &EigOptions::default()).unwrap();
        let expect = cycle_eigs(n);
        for j in 0..5 {
            assert!(
                (res.values[j] - expect[j]).abs() < 1e-9,
                "λ{j}: {} vs {}",
                res.values[j],
                expect[j]
            );
        }
        assert!(res.converged);
    }

    #[test]
    fn lanczos_large_cycle_with_degenerate_pairs() {
        let n = 400; // above dense fallback; eigenvalues have multiplicity 2
        let l = cycle_norm_laplacian(n);
        let res = smallest_eigenpairs(&l, 6, &EigOptions::default()).unwrap();
        let expect = cycle_eigs(n);
        for j in 0..6 {
            assert!(
                (res.values[j] - expect[j]).abs() < 1e-6,
                "λ{j}: {} vs {}",
                res.values[j],
                expect[j]
            );
        }
        for j in 0..6 {
            let v = res.vectors.col(j);
            let mut lv = vec![0.0; n];
            l.matvec(&v, &mut lv);
            let mut rmax: f64 = 0.0;
            for i in 0..n {
                rmax = rmax.max((lv[i] - res.values[j] * v[i]).abs());
            }
            assert!(rmax < 1e-5, "pair {j} residual {rmax}");
        }
    }

    #[test]
    fn eigenvalues_only_matches_pairs() {
        let l = cycle_norm_laplacian(300);
        let vals = smallest_eigenvalues(&l, 4, &EigOptions::default()).unwrap();
        let pairs = smallest_eigenpairs(&l, 4, &EigOptions::default()).unwrap();
        for (a, b) in vals.iter().zip(&pairs.values) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn disconnected_graph_multiplicity() {
        // Two disjoint cycles of 150: eigenvalue 0 has multiplicity 2.
        let n = 300;
        let mut coo = CooMatrix::new(n, n);
        for block in 0..2 {
            let off = block * 150;
            for i in 0..150 {
                coo.push(off + i, off + i, 1.0).unwrap();
                coo.push(off + i, off + (i + 1) % 150, -0.5).unwrap();
                coo.push(off + i, off + (i + 149) % 150, -0.5).unwrap();
            }
        }
        let l = coo.to_csr();
        let res = smallest_eigenpairs(&l, 3, &EigOptions::default()).unwrap();
        assert!(res.values[0].abs() < 1e-7, "λ1 = {}", res.values[0]);
        assert!(res.values[1].abs() < 1e-7, "λ2 = {}", res.values[1]);
        assert!(res.values[2] > 1e-4, "λ3 = {}", res.values[2]);
    }

    #[test]
    fn identity_operator_extreme_multiplicity() {
        // Every Krylov space of I is 1-dimensional; requires restart AND
        // multiplicity handling.
        let n = 200;
        let i = CsrMatrix::identity(n);
        let res = smallest_eigenpairs(&i, 3, &EigOptions::default()).unwrap();
        for v in &res.values {
            assert!((v - 1.0).abs() < 1e-9);
        }
        // Vectors must be mutually orthogonal even within the eigenspace.
        for a in 0..3 {
            for b in (a + 1)..3 {
                let d = vecops::dot(&res.vectors.col(a), &res.vectors.col(b));
                assert!(d.abs() < 1e-8, "v{a}·v{b} = {d}");
            }
        }
    }

    #[test]
    fn shifted_combination_degenerate_pairs() {
        // Regression test for silent multiplicity loss: 0.5·L_cycle + 0.5·I
        // has eigenvalues 0.5·λ_j + 0.5 with the cycle's multiplicity-2
        // structure.
        use crate::linop::ScaledSumOp;
        let n = 220;
        let l1 = cycle_norm_laplacian(n);
        let l2 = CsrMatrix::identity(n);
        let op = ScaledSumOp::new(vec![&l1, &l2], vec![0.5, 0.5]);
        let res = smallest_eigenvalues(&op, 5, &EigOptions::default()).unwrap();
        let expect = cycle_eigs(n);
        for j in 0..5 {
            assert!(
                (res[j] - (0.5 * expect[j] + 0.5)).abs() < 1e-6,
                "λ{j}: {} vs {}",
                res[j],
                0.5 * expect[j] + 0.5
            );
        }
    }

    #[test]
    fn invalid_k_rejected() {
        let l = cycle_norm_laplacian(10);
        assert!(smallest_eigenpairs(&l, 0, &EigOptions::default()).is_err());
        assert!(smallest_eigenpairs(&l, 11, &EigOptions::default()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let l = cycle_norm_laplacian(350);
        let a = smallest_eigenvalues(&l, 5, &EigOptions::default()).unwrap();
        let b = smallest_eigenvalues(&l, 5, &EigOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn path_graph_simple_spectrum() {
        // Normalized Laplacian of the path: all eigenvalues simple; checks
        // the solver against the dense reference.
        let n = 180;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
        }
        for i in 0..n - 1 {
            let di = if i == 0 || i == n - 1 { 1.0f64 } else { 2.0 };
            let dj = if i + 1 == n - 1 { 1.0f64 } else { 2.0 };
            let w = -1.0 / (di * dj).sqrt();
            coo.push_sym(i, i + 1, w).unwrap();
        }
        let l = coo.to_csr();
        let res = smallest_eigenvalues(&l, 4, &EigOptions::default()).unwrap();
        // Dense reference.
        let dense = super::super::jacobi::jacobi_eig(&l.to_dense()).unwrap();
        for j in 0..4 {
            assert!(
                (res[j] - dense.values[j]).abs() < 1e-7,
                "λ{j}: {} vs {}",
                res[j],
                dense.values[j]
            );
        }
    }

    #[test]
    fn warm_start_converges_faster_to_the_same_values() {
        let l = cycle_norm_laplacian(400);
        let cold = smallest_eigenpairs(&l, 5, &EigOptions::default()).unwrap();
        // Warm-start from the cold solve's own vectors (the ideal
        // guess): values must match and the operator-application count
        // must drop.
        let warm_opts = EigOptions {
            init: Some(cold.vectors.clone()),
            ..EigOptions::default()
        };
        let warm = smallest_eigenpairs(&l, 5, &warm_opts).unwrap();
        for (a, b) in cold.values.iter().zip(&warm.values) {
            assert!((a - b).abs() < 1e-7, "warm {b} vs cold {a}");
        }
        assert!(
            warm.matvecs < cold.matvecs,
            "warm {} matvecs vs cold {}",
            warm.matvecs,
            cold.matvecs
        );
        // A wrong-sized warm block is rejected.
        let bad = EigOptions {
            init: Some(DenseMatrix::zeros(7, 2)),
            ..EigOptions::default()
        };
        assert!(smallest_eigenpairs(&l, 5, &bad).is_err());
    }

    #[test]
    fn parallel_threads_same_answer() {
        let l = cycle_norm_laplacian(320);
        let mut o1 = EigOptions::default();
        o1.threads = 1;
        let mut o4 = EigOptions::default();
        o4.threads = 4;
        let a = smallest_eigenvalues(&l, 5, &o1).unwrap();
        let b = smallest_eigenvalues(&l, 5, &o4).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-8);
        }
    }
}

//! Block subspace iteration for *many* smallest eigenpairs.
//!
//! The Lanczos driver is ideal for the `k + 1 ≲ 25` eigenvalues the SGLA
//! objective needs, but its full reorthogonalization costs `O(m²n)` with
//! basis size `m ≈ 6k` — prohibitive for the 64-dimensional spectral
//! embeddings. Block subspace iteration (orthogonal/power iteration with
//! Rayleigh–Ritz extraction) computes a whole invariant-subspace
//! approximation at `O(iters · (nnz·b + b²n))` for block size `b`, which
//! is the right trade-off when `b` is large and moderate accuracy
//! suffices (embeddings, not objective values).

use super::jacobi::jacobi_eig;
use super::lanczos::EigResult;
use crate::linop::{LinOp, ShiftedNegOp};
use crate::qr::qr_thin;
use crate::{vecops, DenseMatrix, Result, SparseError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for [`smallest_eigenpairs_subspace`].
#[derive(Debug, Clone)]
pub struct SubspaceOptions {
    /// Power-iteration sweeps (default 30; an upper bound when `tol`
    /// enables early exit).
    pub iters: usize,
    /// Extra block columns beyond `k` (default 8).
    pub oversample: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the block matvec.
    pub threads: usize,
    /// Optional warm-start block: an `n × c` matrix whose column span
    /// approximates the sought invariant subspace (e.g. the previous
    /// solve's eigenvectors on a slightly perturbed operator). The
    /// first `min(c, b)` block columns start from it (remaining
    /// columns stay random); combine with `tol` so the sweep loop can
    /// actually stop early once the warm subspace has settled.
    /// Default `None`.
    pub init: Option<DenseMatrix>,
    /// Ritz-value convergence tolerance for early exit: after each
    /// sweep the Rayleigh quotient of the current block is
    /// eigensolved (an `O(b³)` side computation — negligible next to
    /// the `O(nnz·b)` sweep) and the loop stops once the top `k` Ritz
    /// values' relative change drops below `tol`. `0.0` (the default)
    /// disables the check and always runs exactly `iters` sweeps,
    /// preserving the historical fixed-sweep behaviour bit for bit.
    pub tol: f64,
}

impl Default for SubspaceOptions {
    fn default() -> Self {
        SubspaceOptions {
            iters: 30,
            oversample: 8,
            seed: 19,
            threads: crate::parallel::default_threads(),
            init: None,
            tol: 0.0,
        }
    }
}

/// Computes the `k` smallest eigenpairs of a bounded symmetric operator by
/// block subspace iteration on the spectral complement.
///
/// Accuracy is governed by `(λ_{k+b}/λ_k)`-style ratios and the sweep
/// count; intended for spectral embeddings where a relative error of
/// ~1e-4 in the eigenvalues is irrelevant.
///
/// # Errors
/// [`SparseError::InvalidArgument`] for `k == 0` or `k > n`.
pub fn smallest_eigenpairs_subspace(
    op: &(dyn LinOp + Sync),
    k: usize,
    opts: &SubspaceOptions,
) -> Result<EigResult> {
    let n = op.dim();
    if k == 0 || k > n {
        return Err(SparseError::InvalidArgument(format!(
            "subspace iteration: k = {k} invalid for n = {n}"
        )));
    }
    let shift = match op.spectral_bound() {
        Some(bound) => bound * (1.0 + 1e-10) + 1e-12,
        None => {
            return Err(SparseError::InvalidArgument(
                "subspace iteration needs a spectral bound".into(),
            ))
        }
    };
    let b_op = ShiftedNegOp::new(op, shift);
    let b = (k + opts.oversample).min(n);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut q = DenseMatrix::zeros(n, b);
    for v in q.data_mut() {
        *v = rng.gen::<f64>() - 0.5;
    }
    // Warm start: the guess block's columns replace the leading random
    // columns (the trailing oversample columns stay random so the
    // block still explores beyond the guess).
    if let Some(init) = &opts.init {
        if init.nrows() != n {
            return Err(SparseError::InvalidArgument(format!(
                "warm-start block has {} rows for an {n}-dimensional operator",
                init.nrows()
            )));
        }
        for j in 0..init.ncols().min(b) {
            q.set_col(j, &init.col(j));
        }
    }
    crate::qr::orthonormalize(&mut q)?;
    let mut matvecs = 0usize;
    let mut prev_ritz: Option<Vec<f64>> = None;
    for _sweep in 0..opts.iters {
        let z = block_matvec(&b_op, &q, opts.threads);
        matvecs += b;
        // Early exit on Ritz-value stagnation: Qᵀ(BQ) is a free
        // by-product of the sweep (Z = BQ is already in hand).
        if opts.tol > 0.0 {
            let mut t = q.gram(&z)?;
            for i in 0..b {
                for j in 0..i {
                    let avg = 0.5 * (t[(i, j)] + t[(j, i)]);
                    t[(i, j)] = avg;
                    t[(j, i)] = avg;
                }
            }
            let eig = jacobi_eig(&t)?;
            // Largest μ of B ↔ smallest λ of op; track the top k.
            let ritz: Vec<f64> = (0..k.min(b)).map(|j| eig.values[b - 1 - j]).collect();
            let settled = prev_ritz.as_ref().is_some_and(|prev| {
                prev.iter()
                    .zip(&ritz)
                    .all(|(p, c)| (p - c).abs() <= opts.tol * (1.0 + c.abs()))
            });
            prev_ritz = Some(ritz);
            if settled {
                let (q2, _) = qr_thin(&z)?;
                q = q2;
                break;
            }
        }
        let (q2, _) = qr_thin(&z)?;
        q = q2;
    }
    // Rayleigh–Ritz on the converged block: T = Qᵀ B Q.
    let bq = block_matvec(&b_op, &q, opts.threads);
    matvecs += b;
    let t = q.gram(&bq)?;
    // Symmetrize rounding noise.
    let mut t_sym = t.clone();
    for i in 0..b {
        for j in 0..b {
            t_sym[(i, j)] = 0.5 * (t[(i, j)] + t[(j, i)]);
        }
    }
    let eig = jacobi_eig(&t_sym)?;
    // Largest μ of B ↔ smallest λ of op.
    let mut values = Vec::with_capacity(k);
    let mut vectors = DenseMatrix::zeros(n, k);
    for j in 0..k {
        let col = b - 1 - j;
        values.push(shift - eig.values[col]);
        let s = eig.vectors.col(col);
        let mut v = vec![0.0f64; n];
        for (p, &sp) in s.iter().enumerate() {
            if sp != 0.0 {
                vecops::axpy(sp, &q.col(p), &mut v);
            }
        }
        vecops::normalize(&mut v);
        vectors.set_col(j, &v);
    }
    Ok(EigResult {
        values,
        vectors,
        matvecs,
        converged: true,
        stats: super::lanczos::EigStats::default(),
    })
}

/// Applies `op` to every column of `q` via the operator's batched
/// kernel: for CSR-backed operators one traversal of each sparse row
/// updates the whole block (see [`crate::CsrMatrix::matvec_block`]),
/// instead of `b` independent walks over the index structure.
fn block_matvec(op: &(dyn LinOp + Sync), q: &DenseMatrix, threads: usize) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(q.nrows(), q.ncols());
    op.matvec_block(q, &mut out, threads);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use std::f64::consts::PI;

    fn cycle_norm_laplacian(n: usize) -> crate::CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
            coo.push(i, (i + 1) % n, -0.5).unwrap();
            coo.push(i, (i + n - 1) % n, -0.5).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn cycle_loose_accuracy() {
        // The cycle has a pathologically flat spectrum (no gap), the worst
        // case for power iteration; only embedding-grade accuracy is
        // expected here.
        let n = 500;
        let l = cycle_norm_laplacian(n);
        let res = smallest_eigenpairs_subspace(&l, 12, &SubspaceOptions::default()).unwrap();
        let mut expect: Vec<f64> = (0..n)
            .map(|j| 1.0 - (2.0 * PI * j as f64 / n as f64).cos())
            .collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for j in 0..12 {
            assert!(
                (res.values[j] - expect[j]).abs() < 0.03,
                "λ{j}: {} vs {}",
                res.values[j],
                expect[j]
            );
        }
    }

    #[test]
    fn matches_lanczos_on_gapped_graph() {
        // Two dense blocks weakly joined: a clear spectral gap, the regime
        // the embedding backend actually sees. Subspace iteration should
        // agree with the (accurate) Lanczos driver.
        let n = 400;
        let mut coo = CooMatrix::new(n, n);
        let mut state = 1u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for block in 0..2usize {
            let off = block * 200;
            for _ in 0..3000 {
                let (u, v) = (off + next() % 200, off + next() % 200);
                if u != v {
                    coo.push_sym(u, v, 1.0).unwrap();
                }
            }
        }
        for _ in 0..20 {
            let (u, v) = (next() % 200, 200 + next() % 200);
            coo.push_sym(u, v, 1.0).unwrap();
        }
        let adj = coo.to_csr();
        let p = adj.sym_normalized();
        let eye = crate::CsrMatrix::identity(n);
        let l = crate::CsrMatrix::linear_combination(&[&eye, &p], &[1.0, -1.0]).unwrap();
        let sub = smallest_eigenpairs_subspace(&l, 6, &SubspaceOptions::default()).unwrap();
        let lan = super::super::lanczos::smallest_eigenvalues(
            &l,
            6,
            &super::super::lanczos::EigOptions::default(),
        )
        .unwrap();
        // The two below-gap eigenvalues converge fast; bulk eigenvalues
        // (near-degenerate random-graph bulk) only to embedding grade.
        for j in 0..2 {
            assert!(
                (sub.values[j] - lan[j]).abs() < 1e-6 * (1.0 + lan[j].abs()),
                "λ{j}: subspace {} vs lanczos {}",
                sub.values[j],
                lan[j]
            );
        }
        for j in 2..6 {
            assert!(
                (sub.values[j] - lan[j]).abs() < 0.05,
                "λ{j}: subspace {} vs lanczos {}",
                sub.values[j],
                lan[j]
            );
        }
    }

    #[test]
    fn vectors_orthonormal() {
        let l = cycle_norm_laplacian(300);
        let res = smallest_eigenpairs_subspace(&l, 8, &SubspaceOptions::default()).unwrap();
        for i in 0..8 {
            for j in i..8 {
                let d = vecops::dot(&res.vectors.col(i), &res.vectors.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-6, "v{i}·v{j} = {d}");
            }
        }
    }

    #[test]
    fn warm_start_with_tol_stops_early_and_agrees() {
        // Gapped two-block graph (same construction as the Lanczos
        // comparison test, smaller): warm-start + early exit must
        // agree with the fixed-sweep solve while doing less work.
        let n = 300;
        let l = {
            let mut coo = CooMatrix::new(n, n);
            let mut state = 7u64;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            for block in 0..2usize {
                let off = block * 150;
                for _ in 0..2000 {
                    let (u, v) = (off + next() % 150, off + next() % 150);
                    if u != v {
                        coo.push_sym(u, v, 1.0).unwrap();
                    }
                }
            }
            for _ in 0..15 {
                let (u, v) = (next() % 150, 150 + next() % 150);
                coo.push_sym(u, v, 1.0).unwrap();
            }
            let adj = coo.to_csr();
            let p = adj.sym_normalized();
            let eye = crate::CsrMatrix::identity(n);
            crate::CsrMatrix::linear_combination(&[&eye, &p], &[1.0, -1.0]).unwrap()
        };
        let cold = smallest_eigenpairs_subspace(&l, 8, &SubspaceOptions::default()).unwrap();
        let warm_opts = SubspaceOptions {
            init: Some(cold.vectors.clone()),
            tol: 1e-3,
            ..SubspaceOptions::default()
        };
        let warm = smallest_eigenpairs_subspace(&l, 8, &warm_opts).unwrap();
        assert!(
            warm.matvecs < cold.matvecs,
            "warm {} matvecs vs cold {}",
            warm.matvecs,
            cold.matvecs
        );
        for j in 0..8 {
            // Below-gap eigenvalues are sharp; the near-degenerate
            // random-graph bulk is only embedding-grade (tol 1e-3
            // stops the sweep loop once changes fall below that).
            let tol = if j < 2 { 1e-6 } else { 5e-3 };
            assert!(
                (warm.values[j] - cold.values[j]).abs() < tol * (1.0 + cold.values[j].abs()),
                "λ{j}: warm {} vs cold {}",
                warm.values[j],
                cold.values[j]
            );
        }
        // A wrong-sized warm block is rejected.
        let bad = SubspaceOptions {
            init: Some(DenseMatrix::zeros(5, 2)),
            ..SubspaceOptions::default()
        };
        assert!(smallest_eigenpairs_subspace(&l, 4, &bad).is_err());
    }

    #[test]
    fn rejects_bad_k() {
        let l = cycle_norm_laplacian(50);
        assert!(smallest_eigenpairs_subspace(&l, 0, &SubspaceOptions::default()).is_err());
        assert!(smallest_eigenpairs_subspace(&l, 51, &SubspaceOptions::default()).is_err());
    }

    #[test]
    fn deterministic() {
        let l = cycle_norm_laplacian(200);
        let a = smallest_eigenpairs_subspace(&l, 5, &SubspaceOptions::default()).unwrap();
        let b = smallest_eigenpairs_subspace(&l, 5, &SubspaceOptions::default()).unwrap();
        assert_eq!(a.values, b.values);
    }
}

//! Symmetric tridiagonal eigensolver (implicit QL with Wilkinson shifts).
//!
//! A from-scratch port of the classic `tql2` algorithm (EISPACK lineage):
//! O(n²) for all eigenvalues, O(n³) with eigenvectors — more than fast
//! enough for the Lanczos projected problems (dimension ≤ a few hundred).

use crate::{DenseMatrix, Result, SparseError};

/// A symmetric tridiagonal matrix given by its diagonal and off-diagonal.
#[derive(Debug, Clone)]
pub struct SymTridiag {
    /// Main diagonal, length `n`.
    pub diag: Vec<f64>,
    /// Off-diagonal, length `n - 1` (or empty when `n ≤ 1`).
    pub offdiag: Vec<f64>,
}

/// Eigen-decomposition of a [`SymTridiag`]: `values` ascending, `vectors`
/// column `j` is the unit eigenvector for `values[j]`.
#[derive(Debug, Clone)]
pub struct TridiagEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// `n × n` matrix whose columns are the corresponding eigenvectors.
    pub vectors: DenseMatrix,
}

impl SymTridiag {
    /// Creates a tridiagonal matrix, validating the dimension relation.
    ///
    /// # Errors
    /// [`SparseError::ShapeMismatch`] unless `offdiag.len() + 1 == diag.len()`
    /// (with the convention that a 0×0 or 1×1 matrix has an empty offdiag).
    pub fn new(diag: Vec<f64>, offdiag: Vec<f64>) -> Result<Self> {
        let n = diag.len();
        let expected = n.saturating_sub(1);
        if offdiag.len() != expected {
            return Err(SparseError::ShapeMismatch(format!(
                "offdiag length {} != n - 1 = {}",
                offdiag.len(),
                expected
            )));
        }
        Ok(SymTridiag { diag, offdiag })
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.diag.len()
    }

    /// Full eigen-decomposition, eigenvalues ascending.
    ///
    /// # Errors
    /// [`SparseError::NoConvergence`] if any eigenvalue fails to converge
    /// within 50 QL sweeps (does not happen for finite input).
    pub fn eig(&self) -> Result<TridiagEig> {
        let n = self.dim();
        if n == 0 {
            return Ok(TridiagEig {
                values: Vec::new(),
                vectors: DenseMatrix::zeros(0, 0),
            });
        }
        let mut d = self.diag.clone();
        // e is padded to length n; e[n-1] is scratch.
        let mut e = {
            let mut e = self.offdiag.clone();
            e.push(0.0);
            e
        };
        let mut z = DenseMatrix::identity(n);

        for l in 0..n {
            let mut iter = 0usize;
            loop {
                // Find the first negligible off-diagonal at or after l.
                let mut m = l;
                while m + 1 < n {
                    let dd = d[m].abs() + d[m + 1].abs();
                    if e[m].abs() <= f64::EPSILON * dd {
                        break;
                    }
                    m += 1;
                }
                if m == l {
                    break;
                }
                iter += 1;
                if iter > 50 {
                    return Err(SparseError::NoConvergence {
                        algorithm: "tridiagonal QL",
                        iterations: iter,
                    });
                }
                // Wilkinson shift.
                let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
                let mut r = g.hypot(1.0);
                g = d[m] - d[l] + e[l] / (g + r.copysign(g));
                let (mut s, mut c) = (1.0f64, 1.0f64);
                let mut p = 0.0f64;
                let mut underflow = false;
                for i in (l..m).rev() {
                    let mut f = s * e[i];
                    let b = c * e[i];
                    r = f.hypot(g);
                    e[i + 1] = r;
                    if r == 0.0 {
                        // Recover from underflow: skip this rotation chain.
                        d[i + 1] -= p;
                        e[m] = 0.0;
                        underflow = true;
                        break;
                    }
                    s = f / r;
                    c = g / r;
                    g = d[i + 1] - p;
                    r = (d[i] - g) * s + 2.0 * c * b;
                    p = s * r;
                    d[i + 1] = g + p;
                    g = c * r - b;
                    // Accumulate the rotation into the eigenvector matrix.
                    for k in 0..n {
                        f = z[(k, i + 1)];
                        z[(k, i + 1)] = s * z[(k, i)] + c * f;
                        z[(k, i)] = c * z[(k, i)] - s * f;
                    }
                }
                if underflow {
                    continue;
                }
                d[l] -= p;
                e[l] = g;
                e[m] = 0.0;
            }
        }

        // Sort ascending, permuting eigenvector columns alongside.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("finite eigenvalues"));
        let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let mut vectors = DenseMatrix::zeros(n, n);
        for (new_c, &old_c) in order.iter().enumerate() {
            for rix in 0..n {
                vectors[(rix, new_c)] = z[(rix, old_c)];
            }
        }
        Ok(TridiagEig { values, vectors })
    }

    /// Eigenvalues only (same algorithm; vectors skipped by the caller just
    /// ignoring them costs little at Lanczos sizes, so this simply wraps
    /// [`Self::eig`] — kept as API for clarity at call sites).
    ///
    /// # Errors
    /// Propagates [`Self::eig`] errors.
    pub fn eigenvalues(&self) -> Result<Vec<f64>> {
        Ok(self.eig()?.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn residual(t: &SymTridiag, lambda: f64, v: &[f64]) -> f64 {
        let n = t.dim();
        let mut r = 0.0f64;
        for i in 0..n {
            let mut acc = t.diag[i] * v[i];
            if i > 0 {
                acc += t.offdiag[i - 1] * v[i - 1];
            }
            if i + 1 < n {
                acc += t.offdiag[i] * v[i + 1];
            }
            r = r.max((acc - lambda * v[i]).abs());
        }
        r
    }

    #[test]
    fn dimension_validation() {
        assert!(SymTridiag::new(vec![1.0, 2.0], vec![]).is_err());
        assert!(SymTridiag::new(vec![1.0, 2.0], vec![0.5]).is_ok());
        assert!(SymTridiag::new(vec![], vec![]).is_ok());
    }

    #[test]
    fn empty_and_scalar() {
        let e = SymTridiag::new(vec![], vec![]).unwrap().eig().unwrap();
        assert!(e.values.is_empty());
        let s = SymTridiag::new(vec![3.5], vec![]).unwrap().eig().unwrap();
        assert_eq!(s.values, vec![3.5]);
        assert_eq!(s.vectors[(0, 0)], 1.0);
    }

    #[test]
    fn two_by_two_closed_form() {
        // [[2, 1], [1, 2]] → eigenvalues 1, 3.
        let t = SymTridiag::new(vec![2.0, 2.0], vec![1.0]).unwrap();
        let e = t.eig().unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-14);
        assert!((e.values[1] - 3.0).abs() < 1e-14);
        for j in 0..2 {
            assert!(residual(&t, e.values[j], &e.vectors.col(j)) < 1e-13);
        }
    }

    #[test]
    fn path_laplacian_closed_form() {
        // The unnormalized Laplacian of the path P_n is tridiagonal with
        // eigenvalues 4 sin²(π i / (2n)), i = 0..n-1.
        let n = 12;
        let mut diag = vec![2.0; n];
        diag[0] = 1.0;
        diag[n - 1] = 1.0;
        let offdiag = vec![-1.0; n - 1];
        let t = SymTridiag::new(diag, offdiag).unwrap();
        let e = t.eig().unwrap();
        for i in 0..n {
            let expect = 4.0 * (PI * i as f64 / (2.0 * n as f64)).sin().powi(2);
            assert!(
                (e.values[i] - expect).abs() < 1e-12,
                "eigenvalue {i}: {} vs {expect}",
                e.values[i]
            );
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let n = 20;
        // Arbitrary symmetric tridiagonal.
        let diag: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let off: Vec<f64> = (0..n - 1).map(|i| (i as f64 * 1.3).cos()).collect();
        let t = SymTridiag::new(diag, off).unwrap();
        let e = t.eig().unwrap();
        for i in 0..n {
            for j in i..n {
                let d = crate::vecops::dot(&e.vectors.col(i), &e.vectors.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-10, "v{i}·v{j} = {d}");
            }
            assert!(residual(&t, e.values[i], &e.vectors.col(i)) < 1e-10);
        }
        // Ascending order.
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-14);
        }
    }

    #[test]
    fn block_diagonal_decoupled() {
        // Zero off-diagonal in the middle: two independent 2x2 blocks.
        let t = SymTridiag::new(vec![1.0, 1.0, 5.0, 5.0], vec![0.5, 0.0, 0.5]).unwrap();
        let e = t.eig().unwrap();
        let expect = [0.5, 1.5, 4.5, 5.5];
        for (v, ex) in e.values.iter().zip(&expect) {
            assert!((v - ex).abs() < 1e-13);
        }
    }

    #[test]
    fn repeated_eigenvalues() {
        // Diagonal matrix with repeats must come back exactly.
        let t = SymTridiag::new(vec![2.0, 2.0, 2.0], vec![0.0, 0.0]).unwrap();
        let e = t.eig().unwrap();
        assert_eq!(e.values, vec![2.0, 2.0, 2.0]);
    }
}

//! Cholesky factorization for small symmetric positive-definite systems.
//!
//! Used to solve the ridge-regularized least-squares regression of SGLA+'s
//! quadratic surrogate (Eq. 9 of the paper): the normal equations
//! `(ΦᵀΦ + αI) θ = Φᵀ y` are SPD by construction for `α > 0`.

use crate::{DenseMatrix, Result, SparseError};

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: DenseMatrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's responsibility.
    ///
    /// # Errors
    /// * [`SparseError::ShapeMismatch`] if `a` is not square.
    /// * [`SparseError::NumericalBreakdown`] if a non-positive pivot is
    ///   encountered (matrix not positive definite).
    pub fn factor(a: &DenseMatrix) -> Result<Self> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(SparseError::ShapeMismatch(format!(
                "cholesky needs square matrix, got {}x{}",
                a.nrows(),
                a.ncols()
            )));
        }
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(SparseError::NumericalBreakdown("cholesky pivot"));
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A x = b` via forward/back substitution.
    ///
    /// # Errors
    /// [`SparseError::ShapeMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(SparseError::ShapeMismatch(format!(
                "rhs length {} != {}",
                b.len(),
                n
            )));
        }
        // L z = b
        let mut z = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                z[i] -= self.l[(i, k)] * z[k];
            }
            z[i] /= self.l[(i, i)];
        }
        // Lᵀ x = z
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                z[i] -= self.l[(k, i)] * z[k];
            }
            z[i] /= self.l[(i, i)];
        }
        Ok(z)
    }

    /// The lower-triangular factor.
    pub fn factor_matrix(&self) -> &DenseMatrix {
        &self.l
    }
}

/// Solves the weighted ridge system `(GᵀG + diag(alphas)) x = Gᵀ y` — the
/// normal equations of `min ‖Gx − y‖² + Σ alphasⱼ xⱼ²`. Used by the SGLA+
/// surrogate to regularize the quadratic coefficients strongly while
/// leaving linear/constant terms nearly free (least-Frobenius-norm model
/// in the Hessian sense).
///
/// # Errors
/// Shape mismatches; factorization failure for a singular system (all
/// `alphas` zero on a rank-deficient design).
pub fn ridge_solve_weighted(g: &DenseMatrix, y: &[f64], alphas: &[f64]) -> Result<Vec<f64>> {
    if g.nrows() != y.len() {
        return Err(SparseError::ShapeMismatch(format!(
            "design matrix rows {} != rhs length {}",
            g.nrows(),
            y.len()
        )));
    }
    if g.ncols() != alphas.len() {
        return Err(SparseError::ShapeMismatch(format!(
            "design matrix cols {} != penalty length {}",
            g.ncols(),
            alphas.len()
        )));
    }
    let mut gtg = g.gram(g)?;
    let p = gtg.nrows();
    for i in 0..p {
        gtg[(i, i)] += alphas[i];
    }
    let mut gty = vec![0.0; p];
    for r in 0..g.nrows() {
        let row = g.row(r);
        let yr = y[r];
        for (j, &v) in row.iter().enumerate() {
            gty[j] += v * yr;
        }
    }
    Cholesky::factor(&gtg)?.solve(&gty)
}

/// Solves the ridge system `(GᵀG + alpha·I) x = Gᵀ y` — the normal
/// equations of `min ‖Gx − y‖² + alpha‖x‖²`.
///
/// # Errors
/// Propagates factorization errors; with `alpha > 0` the system is SPD so
/// failures indicate non-finite input.
pub fn ridge_solve(g: &DenseMatrix, y: &[f64], alpha: f64) -> Result<Vec<f64>> {
    if g.nrows() != y.len() {
        return Err(SparseError::ShapeMismatch(format!(
            "design matrix rows {} != rhs length {}",
            g.nrows(),
            y.len()
        )));
    }
    let mut gtg = g.gram(g)?;
    let p = gtg.nrows();
    for i in 0..p {
        gtg[(i, i)] += alpha;
    }
    let mut gty = vec![0.0; p];
    for r in 0..g.nrows() {
        let row = g.row(r);
        let yr = y[r];
        for (j, &v) in row.iter().enumerate() {
            gty[j] += v * yr;
        }
    }
    Cholesky::factor(&gtg)?.solve(&gty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_known_spd() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, sqrt(2)]]
        let a = DenseMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_matrix();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-14);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-14);
        assert!((l[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn solve_recovers_solution() {
        let a = DenseMatrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ])
        .unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let mut b = vec![0.0; 3];
        a.matvec(&x_true, &mut b);
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_non_spd() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(SparseError::NumericalBreakdown(_))
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn solve_rejects_bad_rhs() {
        let a = DenseMatrix::identity(2);
        let ch = Cholesky::factor(&a).unwrap();
        assert!(ch.solve(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        // Overdetermined consistent system: exact solution at alpha → 0,
        // shrunk norms as alpha grows.
        let g = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let y = [1.0, 2.0, 3.0];
        let x0 = ridge_solve(&g, &y, 1e-12).unwrap();
        assert!((x0[0] - 1.0).abs() < 1e-5);
        assert!((x0[1] - 2.0).abs() < 1e-5);
        let x1 = ridge_solve(&g, &y, 10.0).unwrap();
        assert!(crate::vecops::norm2(&x1) < crate::vecops::norm2(&x0));
    }

    #[test]
    fn ridge_rejects_shape_mismatch() {
        let g = DenseMatrix::zeros(3, 2);
        assert!(ridge_solve(&g, &[1.0, 2.0], 0.1).is_err());
    }
}

//! Dense vector kernels shared by the iterative solvers.
//!
//! These are deliberately plain loops over slices: at the sizes SGLA works
//! with (vectors of length `n` = number of graph nodes) LLVM autovectorizes
//! them well, and keeping them allocation-free matters more than manual SIMD.

/// Dot product `xᵀy`.
///
/// # Panics
/// Debug-asserts that the slices have equal length; in release builds the
/// shorter length wins (standard `zip` semantics), which is never intended —
/// callers must pass equal-length slices.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`, computed with a scaling guard against overflow.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    let max = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return if max == 0.0 { 0.0 } else { f64::INFINITY };
    }
    let sum: f64 = x.iter().map(|v| (v / max) * (v / max)).sum();
    max * sum.sqrt()
}

/// `y ← y + alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Normalizes `x` to unit Euclidean norm in place, returning the original
/// norm. If the norm is (near) zero the vector is left untouched and `0.0`
/// is returned so callers can detect breakdown.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > f64::MIN_POSITIVE {
        let inv = 1.0 / n;
        scale(inv, x);
        n
    } else {
        0.0
    }
}

/// Squared Euclidean distance `‖x − y‖²`.
#[inline]
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dist2: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

/// Cosine similarity between two vectors; returns `0.0` if either vector is
/// all-zero (the convention used for KNN graph construction — zero-attribute
/// nodes are simply dissimilar from everything).
#[inline]
pub fn cosine(x: &[f64], y: &[f64]) -> f64 {
    let nx = norm2(x);
    let ny = norm2(y);
    if nx <= f64::MIN_POSITIVE || ny <= f64::MIN_POSITIVE {
        return 0.0;
    }
    (dot(x, y) / (nx * ny)).clamp(-1.0, 1.0)
}

/// Copies `src` into `dst` (equal lengths required).
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    debug_assert_eq!(src.len(), dst.len(), "copy: length mismatch");
    dst.copy_from_slice(src);
}

/// Sets every element of `x` to zero.
#[inline]
pub fn zero(x: &mut [f64]) {
    for v in x.iter_mut() {
        *v = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm2_basic() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn norm2_overflow_guard() {
        // Naive sum of squares would overflow to inf; the scaled version
        // must not.
        let big = 1e200;
        let n = norm2(&[big, big]);
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-14);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn normalize_unit() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_reports_breakdown() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_parallel_and_orthogonal() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-15);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-15);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-15);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn dist2_basic() {
        assert_eq!(dist2(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
    }
}

//! Row-major dense matrices for small and tall-skinny problems.
//!
//! Dense work in the SGLA pipeline is always small along at least one axis:
//! the surrogate regression solves an `O(r²) × O(r²)` system (r = number of
//! views ≤ ~11), spectral clustering manipulates `n × k` eigenvector blocks,
//! and NetMF factorizes via sketched `n × (d + oversample)` panels.

use crate::{Result, SparseError};
use std::ops::{Index, IndexMut};

/// Read-only row access shared by every embedding-row provider.
///
/// Scan kernels and index probes only ever need `row(i) -> &[f64]`;
/// abstracting that single borrow lets the same kernels run over an
/// in-memory [`DenseMatrix`] or over rows borrowed straight out of a
/// memory-mapped artifact without copying either one.
pub trait RowMatrix: Sync {
    /// Number of rows.
    fn nrows(&self) -> usize;
    /// Number of columns (row length).
    fn ncols(&self) -> usize;
    /// Row `r` as a borrowed slice of length [`Self::ncols`].
    fn row(&self, r: usize) -> &[f64];
}

impl RowMatrix for DenseMatrix {
    #[inline]
    fn nrows(&self) -> usize {
        DenseMatrix::nrows(self)
    }
    #[inline]
    fn ncols(&self) -> usize {
        DenseMatrix::ncols(self)
    }
    #[inline]
    fn row(&self, r: usize) -> &[f64] {
        DenseMatrix::row(self, r)
    }
}

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `nrows × ncols` zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major data vector.
    ///
    /// # Errors
    /// [`SparseError::ShapeMismatch`] if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(SparseError::ShapeMismatch(format!(
                "data length {} != {}x{}",
                data.len(),
                nrows,
                ncols
            )));
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Builds from nested rows (test convenience).
    ///
    /// # Errors
    /// [`SparseError::ShapeMismatch`] on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(SparseError::ShapeMismatch("ragged rows".into()));
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Underlying row-major storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `c` copied into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.nrows).map(|r| self[(r, c)]).collect()
    }

    /// Sets column `c` from a slice.
    pub fn set_col(&mut self, c: usize, v: &[f64]) {
        debug_assert_eq!(v.len(), self.nrows);
        for (r, &x) in v.iter().enumerate() {
            self[(r, c)] = x;
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.ncols, self.nrows);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    /// [`SparseError::ShapeMismatch`] if inner dimensions differ.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.ncols != other.nrows {
            return Err(SparseError::ShapeMismatch(format!(
                "{}x{} · {}x{}",
                self.nrows, self.ncols, other.nrows, other.ncols
            )));
        }
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        // i-k-j loop order: streams through `other` rows, cache friendly.
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &okj) in orow.iter().enumerate() {
                    out_row[j] += aik * okj;
                }
            }
        }
        Ok(out)
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Errors
    /// [`SparseError::ShapeMismatch`] if row counts differ.
    pub fn gram(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.nrows != other.nrows {
            return Err(SparseError::ShapeMismatch(format!(
                "gram: {} rows vs {} rows",
                self.nrows, other.nrows
            )));
        }
        let mut out = DenseMatrix::zeros(self.ncols, other.ncols);
        for r in 0..self.nrows {
            let a = self.row(r);
            let b = other.row(r);
            for (i, &ai) in a.iter().enumerate() {
                if ai == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (j, &bj) in b.iter().enumerate() {
                    out_row[j] += ai * bj;
                }
            }
        }
        Ok(out)
    }

    /// `y ← A x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.ncols);
        debug_assert_eq!(y.len(), self.nrows);
        for r in 0..self.nrows {
            y[r] = crate::vecops::dot(self.row(r), x);
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::vecops::norm2(&self.data)
    }

    /// Elementwise maximum with a scalar, in place (used by NetMF's
    /// `max(M, 1)` truncation).
    pub fn clamp_min(&mut self, lo: f64) {
        for v in &mut self.data {
            if *v < lo {
                *v = lo;
            }
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self ← self + alpha · other`.
    ///
    /// # Errors
    /// [`SparseError::ShapeMismatch`] if shapes differ.
    pub fn add_scaled(&mut self, alpha: f64, other: &DenseMatrix) -> Result<()> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(SparseError::ShapeMismatch(format!(
                "{}x{} vs {}x{}",
                self.nrows, self.ncols, other.nrows, other.ncols
            )));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &mut self.data[r * self.ncols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn matmul_known() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn gram_equals_transpose_matmul() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = a.gram(&a).unwrap();
        let gt = a.transpose().matmul(&a).unwrap();
        for r in 0..2 {
            for c in 0..2 {
                assert!((g[(r, c)] - gt[(r, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn identity_matvec() {
        let i = DenseMatrix::identity(3);
        let mut y = vec![0.0; 3];
        i.matvec(&[7.0, 8.0, 9.0], &mut y);
        assert_eq!(y, vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn clamp_and_map() {
        let mut m = DenseMatrix::from_rows(&[vec![0.5, 2.0]]).unwrap();
        m.clamp_min(1.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        m.map_inplace(|x| x.ln());
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn add_scaled() {
        let mut a = DenseMatrix::identity(2);
        let b = DenseMatrix::identity(2);
        a.add_scaled(2.0, &b).unwrap();
        assert_eq!(a[(0, 0)], 3.0);
        let c = DenseMatrix::zeros(3, 3);
        assert!(a.add_scaled(1.0, &c).is_err());
    }

    #[test]
    fn set_col_roundtrip() {
        let mut m = DenseMatrix::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.col(0), vec![0.0, 0.0, 0.0]);
    }
}

//! Sparse and small-dense linear algebra substrate for the SGLA reproduction.
//!
//! The SGLA paper's entire pipeline reduces to a handful of linear-algebra
//! kernels over *sparse symmetric* matrices (normalized Laplacians):
//!
//! * weighted aggregation of sparse matrices (Eq. 1 of the paper),
//! * repeated sparse matrix–vector products,
//! * extraction of the `k + 1` smallest eigenpairs (Algorithm 1, line 4),
//! * small dense solves for the quadratic surrogate regression (Eq. 9) and
//!   for downstream clustering/embedding (k-means, discretization, NetMF).
//!
//! This crate provides those kernels from scratch:
//!
//! * [`CsrMatrix`] / [`CooMatrix`] — compressed sparse row storage with a
//!   triplet builder, linear combinations, and parallel matvec.
//! * [`DenseMatrix`] — row-major dense matrices for small/skinny problems.
//! * [`LinOp`] — a matrix-free operator abstraction; the SGLA aggregation
//!   `Σ wᵢ Lᵢ` is applied lazily through this trait without materializing
//!   the sum.
//! * [`FusedSumOp`] — the fused form of the aggregation: when weights are
//!   fixed for a whole inner eigensolve, the sum is materialized once into
//!   a reusable scratch CSR so each matvec streams one matrix, not `V`.
//! * [`pool`] — a persistent worker pool (parked threads, atomic chunk
//!   stealing) behind every data-parallel hot path in the workspace.
//! * [`eigen`] — a Lanczos solver with full reorthogonalization for the
//!   smallest eigenpairs of bounded symmetric operators, a symmetric
//!   tridiagonal QL solver, and a cyclic Jacobi dense eigensolver.
//! * [`chol`], [`lu`], [`qr`], [`svd`] — small dense factorizations.
//!
//! All floating point work is `f64`. All randomized routines take explicit
//! seeds so results are reproducible.

// `unsafe` is denied crate-wide and allowed back in exactly one place:
// the lifetime-erasure + disjoint-slice core of [`pool`], where each use
// carries a documented blocking-handshake invariant. Everything else is
// safe Rust.
#![deny(unsafe_code)]
// Indexed loops over matched row/column structures are the clearest idiom
// for the numerical kernels in this crate: the index relationships *are*
// the algorithm. The iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::field_reassign_with_default)]
#![warn(missing_docs)]

pub mod chol;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod eigen;
pub mod error;
pub mod fused;
pub mod linop;
pub mod lu;
pub mod parallel;
pub mod pool;
pub mod qr;
pub mod svd;
pub mod vecops;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::{DenseMatrix, RowMatrix};
pub use error::SparseError;
pub use fused::FusedSumOp;
pub use linop::{LinOp, ScaledSumOp, ShiftedNegOp};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SparseError>;

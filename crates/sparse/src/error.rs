//! Error types for the linear algebra substrate.

use std::fmt;

/// Errors raised by sparse/dense kernels.
///
/// Every fallible public entry point in this crate returns one of these
/// variants instead of panicking, so callers (the SGLA pipeline, the
/// experiment harness) can surface actionable messages.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Two operands have incompatible shapes; payload is a human-readable
    /// description including both shapes.
    ShapeMismatch(String),
    /// An index was out of bounds for the matrix dimensions.
    IndexOutOfBounds {
        /// Row or column index supplied by the caller.
        index: usize,
        /// The exclusive bound that was violated.
        bound: usize,
        /// Which axis the index addressed (`"row"` or `"col"`).
        axis: &'static str,
    },
    /// An iterative solver exhausted its iteration budget before reaching
    /// the requested tolerance.
    NoConvergence {
        /// Name of the algorithm that failed to converge.
        algorithm: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// A factorization encountered a matrix outside its domain (e.g. a
    /// non-positive-definite matrix given to Cholesky, singular to LU).
    NumericalBreakdown(&'static str),
    /// An argument was structurally invalid (empty matrix where non-empty is
    /// required, k larger than n, NaN input, ...).
    InvalidArgument(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            SparseError::IndexOutOfBounds { index, bound, axis } => {
                write!(f, "{axis} index {index} out of bounds (< {bound} required)")
            }
            SparseError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            SparseError::NumericalBreakdown(what) => {
                write!(f, "numerical breakdown in {what}")
            }
            SparseError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = SparseError::ShapeMismatch("3x4 vs 5x4".into());
        assert_eq!(e.to_string(), "shape mismatch: 3x4 vs 5x4");
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = SparseError::IndexOutOfBounds {
            index: 7,
            bound: 5,
            axis: "row",
        };
        assert_eq!(e.to_string(), "row index 7 out of bounds (< 5 required)");
    }

    #[test]
    fn display_no_convergence() {
        let e = SparseError::NoConvergence {
            algorithm: "lanczos",
            iterations: 300,
        };
        assert!(e.to_string().contains("lanczos"));
        assert!(e.to_string().contains("300"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SparseError::NumericalBreakdown("cholesky"));
    }
}

//! Coordinate-format (triplet) sparse matrix builder.
//!
//! Graph construction (edge lists, KNN results) naturally produces
//! unordered `(row, col, value)` triplets; [`CooMatrix`] accumulates them
//! and converts to [`CsrMatrix`] with duplicate summing,
//! which is exactly the semantics needed when multiple edge sources
//! contribute to the same cell.

use crate::{CsrMatrix, Result, SparseError};

/// A sparse matrix under construction, stored as unsorted triplets.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty builder for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty builder with room for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends a triplet. Duplicate `(row, col)` entries are summed on
    /// conversion to CSR.
    ///
    /// # Errors
    /// Returns [`SparseError::IndexOutOfBounds`] if the coordinates exceed
    /// the declared shape.
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        if row >= self.nrows {
            return Err(SparseError::IndexOutOfBounds {
                index: row,
                bound: self.nrows,
                axis: "row",
            });
        }
        if col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                index: col,
                bound: self.ncols,
                axis: "col",
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Appends both `(row, col, val)` and `(col, row, val)`; convenience for
    /// building undirected graph adjacency matrices.
    pub fn push_sym(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        self.push(row, col, val)?;
        if row != col {
            self.push(col, row, val)?;
        }
        Ok(())
    }

    /// Converts to CSR, summing duplicates and dropping explicit zeros
    /// produced by duplicate cancellation.
    ///
    /// Runs in `O(nnz + nrows)` using a counting sort on rows followed by a
    /// per-row sort on columns (rows are short in graph workloads).
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.nrows;
        // Counting sort by row.
        let mut row_counts = vec![0usize; n + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..n {
            row_counts[i + 1] += row_counts[i];
        }
        let mut next = row_counts.clone();
        let nnz = self.vals.len();
        let mut cols = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        for idx in 0..nnz {
            let r = self.rows[idx];
            let slot = next[r];
            next[r] += 1;
            cols[slot] = self.cols[idx];
            vals[slot] = self.vals[idx];
        }
        // Sort each row by column and merge duplicates in place.
        let mut out_indptr = Vec::with_capacity(n + 1);
        out_indpush(&mut out_indptr, 0);
        let mut out_cols = Vec::with_capacity(nnz);
        let mut out_vals = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..n {
            let (s, e) = (row_counts[r], row_counts[r + 1]);
            scratch.clear();
            scratch.extend(cols[s..e].iter().copied().zip(vals[s..e].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                if v != 0.0 {
                    out_cols.push(c);
                    out_vals.push(v);
                }
                i = j;
            }
            out_indpush(&mut out_indptr, out_cols.len());
        }
        CsrMatrix::from_raw_parts_unchecked(self.nrows, self.ncols, out_indptr, out_cols, out_vals)
    }
}

#[inline]
fn out_indpush(v: &mut Vec<usize>, x: usize) {
    v.push(x);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(matches!(
            coo.push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { axis: "row", .. })
        ));
        assert!(matches!(
            coo.push(0, 5, 1.0),
            Err(SparseError::IndexOutOfBounds { axis: "col", .. })
        ));
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.5).unwrap();
        coo.push(0, 1, 2.5).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), 4.0);
        assert_eq!(csr.get(1, 0), -1.0);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, -1.0).unwrap();
        coo.push(0, 1, 3.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), 0.0);
        assert_eq!(csr.get(0, 1), 3.0);
    }

    #[test]
    fn push_sym_mirrors() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_sym(0, 2, 2.0).unwrap();
        coo.push_sym(1, 1, 5.0).unwrap(); // diagonal: stored once
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 2), 2.0);
        assert_eq!(csr.get(2, 0), 2.0);
        assert_eq!(csr.get(1, 1), 5.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn columns_sorted_after_conversion() {
        let mut coo = CooMatrix::new(1, 5);
        for &c in &[4usize, 0, 3, 1] {
            coo.push(0, c, c as f64 + 1.0).unwrap();
        }
        let csr = coo.to_csr();
        let row: Vec<usize> = csr.row_cols(0).to_vec();
        assert_eq!(row, vec![0, 1, 3, 4]);
    }
}

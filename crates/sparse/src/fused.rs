//! Fused integrated-operator kernel for the multi-view aggregation.
//!
//! The lazy [`ScaledSumOp`](crate::ScaledSumOp) applies `L(w) = Σ wᵥ Lᵥ`
//! by streaming every view's CSR on every matvec — `V` index walks and
//! `V` passes of memory traffic per operator application. During an
//! inner eigensolve the weights are *fixed*, and a Lanczos or subspace
//! run applies the operator hundreds of times, so it pays to materialize
//! the weighted sum once into a reusable scratch CSR and stream a single
//! matrix per matvec:
//!
//! * **same-pattern fast path** — view Laplacians built from the same
//!   node set often share their sparsity pattern exactly (e.g. repeated
//!   aggregations over one KNN structure); fusing is then a pure
//!   elementwise pass `vals[i] = Σ wᵥ valsᵥ[i]` with no index merging;
//! * **differing-pattern merge** — otherwise the union pattern and a
//!   per-view scatter map (view nnz index → fused nnz index) are
//!   precomputed **once**, weight-independently, at construction; every
//!   subsequent [`FusedSumOp::set_weights`] refresh is a cheap `O(Σ nnz)`
//!   scatter with zero allocation.
//!
//! Re-weighting costs about as much as ONE lazy matvec, so fusing wins
//! whenever an eigensolve performs more than a couple of operator
//! applications — which is always.

use crate::parallel::{default_threads, par_chunks_mut};
use crate::{CsrMatrix, DenseMatrix, LinOp, Result, SparseError};

/// The fused form of `Σ wᵥ Aᵥ`: a reusable scratch CSR over the union
/// pattern, refreshed in place when the weights change. Implements
/// [`LinOp`], with matvecs running on the persistent worker pool.
pub struct FusedSumOp<'a> {
    mats: Vec<&'a CsrMatrix>,
    weights: Vec<f64>,
    /// The materialized weighted sum (pattern fixed at construction).
    fused: CsrMatrix,
    /// Per view: view nnz index → fused nnz index. Empty on the
    /// same-pattern fast path (the identity map).
    maps: Vec<Vec<usize>>,
    same_pattern: bool,
    threads: usize,
}

impl<'a> FusedSumOp<'a> {
    /// Builds the fused operator (pattern analysis + first refresh) with
    /// the default pool width.
    ///
    /// # Errors
    /// [`SparseError::InvalidArgument`] for an empty view list,
    /// [`SparseError::ShapeMismatch`] for inconsistent shapes or a
    /// weight-count mismatch.
    pub fn new(mats: Vec<&'a CsrMatrix>, weights: Vec<f64>) -> Result<Self> {
        Self::with_threads(mats, weights, default_threads())
    }

    /// [`Self::new`] with an explicit worker-pool width cap.
    ///
    /// # Errors
    /// See [`Self::new`].
    pub fn with_threads(
        mats: Vec<&'a CsrMatrix>,
        weights: Vec<f64>,
        threads: usize,
    ) -> Result<Self> {
        if mats.is_empty() {
            return Err(SparseError::InvalidArgument(
                "fused sum of zero matrices".into(),
            ));
        }
        if mats.len() != weights.len() {
            return Err(SparseError::ShapeMismatch(format!(
                "{} matrices vs {} weights",
                mats.len(),
                weights.len()
            )));
        }
        let (nr, nc) = (mats[0].nrows(), mats[0].ncols());
        for m in &mats {
            if m.nrows() != nr || m.ncols() != nc {
                return Err(SparseError::ShapeMismatch(format!(
                    "{}x{} vs {}x{}",
                    m.nrows(),
                    m.ncols(),
                    nr,
                    nc
                )));
            }
        }
        let same_pattern = mats[1..].iter().all(|m| {
            m.indptr() == mats[0].indptr() && (0..nr).all(|r| m.row_cols(r) == mats[0].row_cols(r))
        });
        let (fused, maps) = if same_pattern {
            let pattern = mats[0];
            let indptr = pattern.indptr().to_vec();
            let cols: Vec<usize> = (0..nr).flat_map(|r| pattern.row_cols(r).to_vec()).collect();
            let vals = vec![0.0f64; cols.len()];
            (
                CsrMatrix::from_raw_parts_unchecked(nr, nc, indptr, cols, vals),
                Vec::new(),
            )
        } else {
            Self::union_pattern(&mats, nr, nc)
        };
        let mut op = FusedSumOp {
            mats,
            weights,
            fused,
            maps,
            same_pattern,
            threads: threads.max(1),
        };
        op.refresh();
        Ok(op)
    }

    /// Union sparsity pattern of all views (weight-independent) plus the
    /// per-view nnz scatter maps into it.
    fn union_pattern(mats: &[&CsrMatrix], nr: usize, nc: usize) -> (CsrMatrix, Vec<Vec<usize>>) {
        let mut indptr = Vec::with_capacity(nr + 1);
        indptr.push(0usize);
        let mut cols: Vec<usize> = Vec::with_capacity(mats.iter().map(|m| m.nnz()).max().unwrap());
        let mut mark = vec![false; nc];
        let mut touched: Vec<usize> = Vec::with_capacity(64);
        for r in 0..nr {
            touched.clear();
            for m in mats {
                for &c in m.row_cols(r) {
                    if !mark[c] {
                        mark[c] = true;
                        touched.push(c);
                    }
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                mark[c] = false;
            }
            cols.extend_from_slice(&touched);
            indptr.push(cols.len());
        }
        let mut maps = Vec::with_capacity(mats.len());
        for m in mats {
            let mut map = Vec::with_capacity(m.nnz());
            for r in 0..nr {
                let row_start = indptr[r];
                let fcols = &cols[indptr[r]..indptr[r + 1]];
                let mut fi = 0usize;
                for &c in m.row_cols(r) {
                    // Both column lists are sorted; advance to the match.
                    while fcols[fi] != c {
                        fi += 1;
                    }
                    map.push(row_start + fi);
                    fi += 1;
                }
            }
            maps.push(map);
        }
        let vals = vec![0.0f64; cols.len()];
        (
            CsrMatrix::from_raw_parts_unchecked(nr, nc, indptr, cols, vals),
            maps,
        )
    }

    /// Replaces the weights and refreshes the scratch CSR in place —
    /// `O(Σ nnz)`, no allocation. This is the once-per-eigensolve cost
    /// that buys single-matrix matvecs for the whole solve.
    ///
    /// # Panics
    /// Debug-asserts the weight count (callers validate at the
    /// `sgla-core` API boundary).
    pub fn set_weights(&mut self, weights: &[f64]) {
        debug_assert_eq!(weights.len(), self.weights.len());
        self.weights.copy_from_slice(weights);
        self.refresh();
    }

    /// Current weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The materialized weighted-sum matrix at the current weights.
    pub fn fused_matrix(&self) -> &CsrMatrix {
        &self.fused
    }

    /// Whether the views share one sparsity pattern (elementwise fast
    /// path active).
    pub fn is_same_pattern(&self) -> bool {
        self.same_pattern
    }

    fn refresh(&mut self) {
        let mats = &self.mats;
        let weights = &self.weights;
        if self.same_pattern {
            // vals[i] = Σ_v w_v · vals_v[i]; embarrassingly parallel.
            let threads = self.threads;
            par_chunks_mut(self.fused.values_mut(), threads, |start, chunk| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let i = start + off;
                    let mut acc = 0.0;
                    for (m, &w) in mats.iter().zip(weights) {
                        acc += w * m.values()[i];
                    }
                    *slot = acc;
                }
            });
        } else {
            let maps = &self.maps;
            let vals = self.fused.values_mut();
            vals.fill(0.0);
            for ((m, map), &w) in mats.iter().zip(maps).zip(weights) {
                for (&fi, &v) in map.iter().zip(m.values()) {
                    vals[fi] += w * v;
                }
            }
        }
    }
}

impl LinOp for FusedSumOp<'_> {
    fn dim(&self) -> usize {
        self.fused.nrows()
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        self.fused.matvec_parallel(x, y, self.threads);
    }

    fn matvec_block(&self, x: &DenseMatrix, y: &mut DenseMatrix, threads: usize) {
        // The caller's `threads` caps the pool width (trait contract);
        // the operator's own width is a second ceiling, not a floor.
        self.fused.matvec_block(x, y, threads.min(self.threads));
    }

    fn spectral_bound(&self) -> Option<f64> {
        // Gershgorin on the *fused* matrix: tighter than the triangle
        // inequality over per-view bounds the lazy operator must use.
        LinOp::spectral_bound(&self.fused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, ScaledSumOp};

    fn random_csr(n: usize, per_row: usize, seed: u64, positive: bool) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        let mut state = seed | 1;
        for i in 0..n {
            for _ in 0..per_row {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % n;
                let mut v = ((state >> 11) & 0xffff) as f64 / 65536.0 + 1e-3;
                if !positive && state & 1 == 0 {
                    v = -v;
                }
                coo.push(i, j, v).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn same_pattern_detected_and_matches_lazy() {
        let a = random_csr(60, 4, 3, false);
        let mut b = a.clone();
        for v in b.values_mut() {
            *v *= 1.5;
        }
        let op = FusedSumOp::new(vec![&a, &b], vec![0.4, 0.6]).unwrap();
        assert!(op.is_same_pattern());
        let lazy = ScaledSumOp::new(vec![&a, &b], vec![0.4, 0.6]);
        let x: Vec<f64> = (0..60).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; 60];
        let mut y2 = vec![0.0; 60];
        op.matvec(&x, &mut y1);
        lazy.matvec(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() <= 1e-12 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn union_pattern_matches_linear_combination_bitwise() {
        // Positive values and weights: no exact cancellation, so the
        // materialized linear combination has the same pattern and the
        // same per-entry accumulation order — results are bit-identical.
        let a = random_csr(80, 3, 7, true);
        let b = random_csr(80, 5, 11, true);
        let c = random_csr(80, 2, 13, true);
        let w = [0.2, 0.5, 0.3];
        let op = FusedSumOp::new(vec![&a, &b, &c], w.to_vec()).unwrap();
        assert!(!op.is_same_pattern());
        let reference = CsrMatrix::linear_combination(&[&a, &b, &c], &w).unwrap();
        assert_eq!(op.fused_matrix(), &reference);
        let x: Vec<f64> = (0..80).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut y1 = vec![0.0; 80];
        let mut y2 = vec![0.0; 80];
        op.matvec(&x, &mut y1);
        reference.matvec(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn set_weights_refreshes_in_place() {
        let a = random_csr(50, 3, 17, false);
        let b = random_csr(50, 3, 19, false);
        let mut op = FusedSumOp::new(vec![&a, &b], vec![1.0, 0.0]).unwrap();
        let x: Vec<f64> = (0..50).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut y = vec![0.0; 50];
        let mut ya = vec![0.0; 50];
        op.matvec(&x, &mut y);
        a.matvec(&x, &mut ya);
        for (u, v) in y.iter().zip(&ya) {
            assert!((u - v).abs() < 1e-12);
        }
        op.set_weights(&[0.25, 0.75]);
        let lazy = ScaledSumOp::new(vec![&a, &b], vec![0.25, 0.75]);
        let mut yl = vec![0.0; 50];
        op.matvec(&x, &mut y);
        lazy.matvec(&x, &mut yl);
        for (u, v) in y.iter().zip(&yl) {
            assert!((u - v).abs() <= 1e-12 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn matvec_block_matches_columnwise() {
        let a = random_csr(70, 4, 23, false);
        let b = random_csr(70, 4, 29, false);
        let op = FusedSumOp::new(vec![&a, &b], vec![0.6, 0.4]).unwrap();
        let bsize = 5;
        let mut x = DenseMatrix::zeros(70, bsize);
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v = ((i * 37) % 11) as f64 - 5.0;
        }
        let mut y = DenseMatrix::zeros(70, bsize);
        op.matvec_block(&x, &mut y, 4);
        let mut xc = vec![0.0; 70];
        let mut yc = vec![0.0; 70];
        for j in 0..bsize {
            for i in 0..70 {
                xc[i] = x[(i, j)];
            }
            op.matvec(&xc, &mut yc);
            for i in 0..70 {
                assert_eq!(y[(i, j)], yc[i], "col {j} row {i}");
            }
        }
    }

    #[test]
    fn spectral_bound_tighter_than_lazy() {
        let a = random_csr(40, 4, 31, true);
        let b = random_csr(40, 4, 37, true);
        let fused = FusedSumOp::new(vec![&a, &b], vec![0.5, 0.5]).unwrap();
        let lazy = ScaledSumOp::new(vec![&a, &b], vec![0.5, 0.5]);
        let bf = LinOp::spectral_bound(&fused).unwrap();
        let bl = LinOp::spectral_bound(&lazy).unwrap();
        assert!(bf <= bl + 1e-12, "fused {bf} vs lazy {bl}");
    }

    #[test]
    fn rejects_bad_input() {
        let a = CsrMatrix::identity(3);
        let b = CsrMatrix::identity(4);
        assert!(FusedSumOp::new(vec![], vec![]).is_err());
        assert!(FusedSumOp::new(vec![&a], vec![1.0, 2.0]).is_err());
        assert!(FusedSumOp::new(vec![&a, &b], vec![1.0, 1.0]).is_err());
    }
}

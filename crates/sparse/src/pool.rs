//! A persistent worker pool for the data-parallel hot paths.
//!
//! Every SGLA run performs thousands of short data-parallel regions
//! (Lanczos matvecs, reorthogonalization sweeps, KNN row scans, blocked
//! top-k scoring). Spawning OS threads per region via
//! `std::thread::scope` costs tens of microseconds *per spawn* — often
//! more than the region's arithmetic. This module keeps a fixed set of
//! parked workers alive for the process lifetime and hands them work
//! through a single condvar-guarded slot:
//!
//! * **lazily-initialized global pool** ([`WorkerPool::global`]) sized by
//!   [`crate::parallel::default_threads`] (≤ 16 per the paper's setup,
//!   overridable with the `SGLA_THREADS` environment variable), plus
//!   injectable private pools ([`WorkerPool::new`]) for tests and
//!   benchmarks;
//! * **contiguous row-range partitioning with atomic chunk stealing**
//!   ([`WorkerPool::for_each_chunk`]): participants repeatedly claim the
//!   next contiguous index range from an atomic cursor, so skewed CSR
//!   rows cannot stall a statically-partitioned worker. On an
//!   *oversubscribed* pool (more participants than hardware threads —
//!   e.g. `SGLA_THREADS=4` on a 1-CPU box) the pool switches to static
//!   contiguous assignment instead: time-shared participants cannot
//!   usefully steal, and the cursor traffic measurably taxed
//!   bandwidth-bound SpMV (the n ≥ 20k plain-SpMV regression tracked
//!   in `BENCH_kernels.json`);
//! * **panic safety**: a panicking task is caught on the worker, carried
//!   back, and re-raised on the submitting thread; the workers stay
//!   parked and healthy for subsequent submits;
//! * **reentrancy**: a task that (transitively) re-enters the pool runs
//!   its nested region inline instead of deadlocking on the submit lock.
//!
//! # Safety
//!
//! This is the one module in the crate that uses `unsafe`. Both uses are
//! narrow and carry the same invariant — a borrow handed to the workers
//! never outlives the submitting call:
//!
//! 1. [`WorkerPool::broadcast`] erases the lifetime of a `&dyn Fn` so it
//!    can sit in the shared job slot. The submitter blocks until every
//!    worker has finished the job and the slot is cleared, so no worker
//!    can observe the pointer after `broadcast` returns.
//! 2. [`WorkerPool::for_each_slice_chunk`] reconstructs disjoint
//!    `&mut [T]` sub-slices from a raw base pointer. Disjointness is
//!    guaranteed by the monotone atomic cursor: each index range is
//!    claimed exactly once.

use std::any::Any;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Lifetime-erased pointer to the active task. Only ever dereferenced
/// while the submitting `broadcast` call is blocked waiting for it.
#[derive(Clone, Copy)]
struct Job {
    task: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointee is `Sync` (shared calls are fine) and the pointer
// is only dereferenced between publication and the completion handshake,
// during which the submitter keeps the underlying closure alive.
#[allow(unsafe_code)]
unsafe impl Send for Job {}

struct State {
    /// The active job, `Some` only between publication and the last
    /// worker's completion signal.
    job: Option<Job>,
    /// Bumped once per broadcast; workers use it to run each job once.
    epoch: u64,
    /// Workers still running the active job.
    remaining: usize,
    /// First panic payload raised by a worker during the active job.
    panic: Option<Box<dyn Any + Send>>,
    /// Set by `Drop`; workers exit their loop when they observe it.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The submitter parks here until `remaining` reaches zero.
    done: Condvar,
    /// Lock-free mirror of `State::epoch`, published before `work` is
    /// notified. Workers spin on it briefly before parking, so
    /// back-to-back dispatches (a Lanczos solve issues thousands) skip
    /// the futex wake latency entirely.
    epoch_hint: AtomicU64,
    /// Lock-free mirror of `State::remaining` for the submitter's
    /// symmetric spin on job completion.
    remaining_hint: AtomicUsize,
    /// Spin iterations before parking. Nonzero only when every pool
    /// participant can own a hardware thread — spinning on an
    /// oversubscribed CPU wastes whole scheduler quanta and *adds*
    /// latency, so oversubscribed pools go straight to the condvar.
    spin_limit: u32,
    /// Observability counters (relaxed atomics, touched only on paths
    /// that already pay a lock or a futex — never in task bodies).
    counters: Counters,
}

/// Relaxed-atomic observability counters for one pool. All monotone;
/// read out as gauges by [`WorkerPool::stats`].
#[derive(Default)]
struct Counters {
    /// Broadcasts dispatched to parked workers.
    jobs: AtomicU64,
    /// Broadcasts that ran inline (width-1 pool or nested submit).
    inline_jobs: AtomicU64,
    /// Total nanoseconds submitters spent in the completion handshake
    /// (spin + condvar wait) after finishing their own share — the
    /// pool's dispatch/synchronization overhead, excluding task time.
    dispatch_wait_ns: AtomicU64,
    /// Times a worker gave up spinning and parked on the condvar.
    parks: AtomicU64,
    /// Times a parked worker returned from a condvar wait.
    unparks: AtomicU64,
}

impl Shared {
    /// The state mutex is never held across user code, so poisoning can
    /// only arrive through a panic in this module's own bookkeeping;
    /// recover the guard rather than compounding the failure.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

thread_local! {
    /// True while the current thread is executing a pool task (worker
    /// threads permanently; the submitter during its own participation).
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Point-in-time copy of a pool's observability counters, suitable for
/// rendering as metrics gauges. All counts are cumulative since pool
/// creation; see [`WorkerPool::stats`].
#[derive(Debug, Clone, Copy)]
pub struct PoolStats {
    /// Logical parallel width (participants per broadcast).
    pub threads: usize,
    /// Scheduling strategy label (see [`WorkerPool::kind`]).
    pub kind: &'static str,
    /// Broadcasts dispatched to parked workers.
    pub jobs: u64,
    /// Broadcasts that ran inline (width-1 pool or nested submit).
    pub inline_jobs: u64,
    /// Total nanoseconds submitters spent waiting for workers to finish
    /// after completing their own share (dispatch/sync overhead).
    pub dispatch_wait_ns: u64,
    /// Times a worker parked on the condvar after spinning out.
    pub parks: u64,
    /// Times a parked worker returned from a condvar wait.
    pub unparks: u64,
}

/// A persistent pool of parked worker threads. See the module docs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes broadcasts: one job occupies the slot at a time.
    submit: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
    /// Logical width: spawned workers + the participating submitter.
    threads: usize,
    /// More participants than hardware threads. Chunk stealing is
    /// counterproductive here: participants time-share cores, so
    /// "idle worker steals from busy worker" never happens — the
    /// atomic cursor traffic is pure overhead on bandwidth-bound
    /// kernels (measured 10–14% p50 on plain SpMV at n ≥ 20k with 4
    /// threads on 1 CPU). Oversubscribed pools use static contiguous
    /// partitioning instead.
    oversubscribed: bool,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a private pool of logical width `threads` (spawns
    /// `threads - 1` OS workers; the submitting thread is the remaining
    /// participant). `threads <= 1` spawns nothing and runs everything
    /// inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            epoch_hint: AtomicU64::new(0),
            remaining_hint: AtomicUsize::new(0),
            spin_limit: if threads <= hw { 4096 } else { 0 },
            counters: Counters::default(),
        });
        let mut handles = Vec::with_capacity(threads - 1);
        for i in 0..threads - 1 {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sgla-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i + 1))
                    .expect("spawn pool worker"),
            );
        }
        WorkerPool {
            shared,
            submit: Mutex::new(()),
            handles,
            threads,
            oversubscribed: threads > hw,
        }
    }

    /// The process-wide pool, created on first use and sized by
    /// [`crate::parallel::default_threads`] (honours `SGLA_THREADS`).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(crate::parallel::default_threads()))
    }

    /// Logical parallel width (participants per broadcast).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Short label for the pool's scheduling strategy: `"inline"`
    /// (width 1, no workers), `"static"` (oversubscribed, static
    /// contiguous partitioning), or `"steal"` (atomic chunk stealing).
    pub fn kind(&self) -> &'static str {
        if self.handles.is_empty() {
            "inline"
        } else if self.oversubscribed {
            "static"
        } else {
            "steal"
        }
    }

    /// Snapshot of the pool's observability counters (cumulative since
    /// pool creation).
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        PoolStats {
            threads: self.threads,
            kind: self.kind(),
            jobs: c.jobs.load(Ordering::Relaxed),
            inline_jobs: c.inline_jobs.load(Ordering::Relaxed),
            dispatch_wait_ns: c.dispatch_wait_ns.load(Ordering::Relaxed),
            parks: c.parks.load(Ordering::Relaxed),
            unparks: c.unparks.load(Ordering::Relaxed),
        }
    }

    /// Runs `task(participant)` once on every participant (the submitter
    /// is participant 0, workers are `1..threads`) and returns when all
    /// are done. A panic in any participant is re-raised here after the
    /// region completes; the pool stays usable.
    ///
    /// Called from inside a pool task (nested parallelism), or on a pool
    /// of width 1, the task runs inline on the current thread only.
    pub fn broadcast(&self, task: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() || IN_POOL.with(|f| f.get()) {
            self.shared
                .counters
                .inline_jobs
                .fetch_add(1, Ordering::Relaxed);
            task(0);
            return;
        }
        let guard = self.submit.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the erased borrow is only reachable through the job
        // slot, which this call clears (via the last worker) before
        // returning; `task` therefore outlives every dereference.
        #[allow(unsafe_code)]
        let job = Job {
            task: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(task as *const _)
            },
        };
        {
            let mut st = self.shared.lock();
            st.job = Some(job);
            st.epoch = st.epoch.wrapping_add(1);
            st.remaining = self.handles.len();
            st.panic = None;
            self.shared
                .remaining_hint
                .store(st.remaining, Ordering::Release);
            self.shared.epoch_hint.store(st.epoch, Ordering::Release);
            self.shared.work.notify_all();
        }
        // Participate instead of idling while the workers run.
        IN_POOL.with(|f| f.set(true));
        let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(0)));
        IN_POOL.with(|f| f.set(false));
        // Workers usually finish within the tail of one chunk; spin
        // briefly before sleeping on the condvar so the common case
        // skips a futex round-trip (skipped on oversubscribed CPUs).
        let wait_started = Instant::now();
        let mut spins = 0u32;
        while spins < self.shared.spin_limit
            && self.shared.remaining_hint.load(Ordering::Acquire) > 0
        {
            std::hint::spin_loop();
            spins += 1;
        }
        let worker_panic = {
            let mut st = self.shared.lock();
            while st.remaining > 0 {
                st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.panic.take()
        };
        self.shared
            .counters
            .dispatch_wait_ns
            .fetch_add(wait_started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.shared.counters.jobs.fetch_add(1, Ordering::Relaxed);
        drop(guard);
        if let Err(payload) = own {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Data-parallel loop over `0..total` in contiguous chunks claimed
    /// from an atomic cursor (chunk stealing). At most `width`
    /// participants execute `f` concurrently (callers pass their
    /// `threads` knob; excess workers wake and immediately go back to
    /// sleep); `grain` is the minimum chunk length — raise it when
    /// per-index work is tiny so stealing overhead cannot dominate.
    pub fn for_each_chunk<F>(&self, total: usize, width: usize, grain: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if total == 0 {
            return;
        }
        if width <= 1 || self.handles.is_empty() || IN_POOL.with(|c| c.get()) {
            f(0..total);
            return;
        }
        let parts = width.min(self.threads);
        if self.oversubscribed {
            // Static contiguous assignment — one chunk per
            // participant. With the pool oversubscribed onto fewer
            // hardware threads, stealing cannot rebalance anything
            // (every participant is time-sliced on the same cores),
            // while its shared-cursor traffic taxes bandwidth-bound
            // kernels. `grain` still bounds how small a chunk may get.
            let chunk = total.div_ceil(parts).max(grain.max(1));
            self.broadcast(&|participant| {
                if participant >= parts {
                    return;
                }
                let start = participant * chunk;
                if start < total {
                    f(start..(start + chunk).min(total));
                }
            });
            return;
        }
        // Aim for ~4 chunks per participant so stealing can rebalance
        // skew without excessive cursor traffic.
        let chunk = total.div_ceil(parts * 4).max(grain.max(1));
        let cursor = AtomicUsize::new(0);
        self.broadcast(&|participant| {
            // Honour the caller's concurrency cap: participant 0 is the
            // submitter (always works), higher indices sit this one out.
            if participant >= parts {
                return;
            }
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= total {
                    break;
                }
                f(start..(start + chunk).min(total));
            }
        });
    }

    /// [`Self::for_each_chunk`] over a mutable slice: `f(start, chunk)`
    /// receives disjoint contiguous sub-slices covering `data` exactly
    /// once, with `start` the chunk's offset in `data`.
    pub fn for_each_slice_chunk<T, F>(&self, data: &mut [T], width: usize, grain: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let total = data.len();
        if total == 0 {
            return;
        }
        if width <= 1 || self.handles.is_empty() || IN_POOL.with(|c| c.get()) {
            f(0, data);
            return;
        }
        let base = SlicePtr(data.as_mut_ptr());
        self.for_each_chunk(total, width, grain, |range| {
            // SAFETY: ranges from the atomic cursor are pairwise
            // disjoint and within `0..total`, and `data`'s mutable
            // borrow is held for the whole (blocking) call, so each
            // reconstructed sub-slice is uniquely borrowed.
            #[allow(unsafe_code)]
            let chunk = unsafe { base.subslice(range.start, range.end - range.start) };
            f(range.start, chunk);
        });
    }
}

/// Raw base pointer of the slice being partitioned; shared read-only
/// across workers, each of which carves a disjoint `&mut` range from it.
/// (A struct rather than a bare pointer so closures capture the `Sync`
/// wrapper, not the non-`Sync` field.)
struct SlicePtr<T>(*mut T);

impl<T> SlicePtr<T> {
    /// # Safety
    /// `start..start + len` must be in bounds of the original slice and
    /// disjoint from every other `subslice` call on this base pointer
    /// while the returned borrow lives.
    // The `&mut`-from-`&self` shape is the point: `self` is the shared
    // base-pointer token, and uniqueness of each returned borrow is
    // guaranteed by the disjoint-range contract above, not by `&mut self`.
    #[allow(unsafe_code, clippy::mut_from_ref)]
    unsafe fn subslice(&self, start: usize, len: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(start), len)
    }
}

// SAFETY: the pointer is only used to manufacture disjoint sub-slices
// (see `for_each_slice_chunk`); `T: Send` is required at the API edge.
#[allow(unsafe_code)]
unsafe impl<T> Sync for SlicePtr<T> {}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, participant: usize) {
    IN_POOL.with(|f| f.set(true));
    let mut last_epoch = 0u64;
    loop {
        // Spin briefly on the lock-free epoch mirror before parking:
        // hot submit loops (one dispatch per matvec) then hand work to
        // an already-running worker instead of paying a futex wake
        // (skipped on oversubscribed CPUs, where spinning steals the
        // quantum the submitter needs).
        let mut spins = 0u32;
        while spins < shared.spin_limit && shared.epoch_hint.load(Ordering::Acquire) == last_epoch {
            std::hint::spin_loop();
            spins += 1;
        }
        let (job, epoch) = {
            let mut st = shared.lock();
            let mut parked = false;
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    if let Some(job) = st.job {
                        break (job, st.epoch);
                    }
                }
                // One park per idle period, however many spurious wakes
                // the condvar delivers; every wait return is an unpark.
                if !parked {
                    parked = true;
                    shared.counters.parks.fetch_add(1, Ordering::Relaxed);
                }
                st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
                shared.counters.unparks.fetch_add(1, Ordering::Relaxed);
            }
        };
        last_epoch = epoch;
        // SAFETY: `job.task` stays valid until this worker's decrement
        // below — the submitter cannot return (and the borrow cannot
        // end) while `remaining > 0`.
        #[allow(unsafe_code)]
        let task = unsafe { &*job.task };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(participant)));
        let mut st = shared.lock();
        if let Err(payload) = result {
            st.panic.get_or_insert(payload);
        }
        st.remaining -= 1;
        shared.remaining_hint.store(st.remaining, Ordering::Release);
        if st.remaining == 0 {
            st.job = None;
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_participant() {
        let pool = WorkerPool::new(4);
        let count = AtomicUsize::new(0);
        pool.broadcast(&|_p| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn width_one_runs_inline() {
        let pool = WorkerPool::new(1);
        let count = AtomicUsize::new(0);
        pool.broadcast(&|p| {
            assert_eq!(p, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn for_each_chunk_covers_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..1013).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each_chunk(hits.len(), 8, 1, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// A pool wider than the hardware must take the static-assignment
    /// path; coverage and disjointness must hold there too (both
    /// `for_each_chunk` and the unsafe slice variant lean on it).
    #[test]
    fn oversubscribed_static_partition_covers_exactly_once() {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pool = WorkerPool::new(hw * 2 + 1);
        assert!(pool.oversubscribed);
        for total in [1usize, 7, 97, 1013] {
            let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
            pool.for_each_chunk(total, pool.threads(), 1, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "total {total}: some index not covered exactly once"
            );
        }
        // Slice variant over the static path.
        let mut data = vec![0usize; 517];
        pool.for_each_slice_chunk(&mut data, pool.threads(), 1, |start, chunk| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = start + off + 1;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i + 1);
        }
        // A raised grain must not lose coverage either.
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each_chunk(100, pool.threads(), 64, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn slice_chunks_disjoint_and_complete() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0usize; 517];
        pool.for_each_slice_chunk(&mut data, 4, 1, |start, chunk| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = start + off + 1;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i + 1);
        }
    }

    #[test]
    fn width_caps_active_participants() {
        let pool = WorkerPool::new(4);
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.for_each_chunk(64, 2, 1, |_range| {
            let now = active.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            active.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "width=2 must admit at most 2 concurrent participants"
        );
    }

    #[test]
    fn panic_is_contained_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.for_each_chunk(100, 4, 1, |range| {
                if range.contains(&37) {
                    panic!("boom in chunk");
                }
            });
        }));
        assert!(caught.is_err(), "panic must propagate to the submitter");
        // Subsequent submits must work: the pool is not poisoned.
        let count = AtomicUsize::new(0);
        pool.for_each_chunk(64, 4, 1, |range| {
            count.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn nested_submit_runs_inline() {
        let pool = WorkerPool::global();
        let count = AtomicUsize::new(0);
        pool.for_each_chunk(8, 8, 1, |outer| {
            // Re-entering the pool from a task must not deadlock.
            WorkerPool::global().for_each_chunk(4, 8, 1, |inner| {
                count.fetch_add(outer.len() * inner.len(), Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn concurrent_submitters_serialize_safely() {
        let pool = Arc::new(WorkerPool::new(3));
        let total = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            joins.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    pool.for_each_chunk(97, 3, 1, |range| {
                        total.fetch_add(range.len(), Ordering::Relaxed);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 97);
    }

    #[test]
    fn stats_count_jobs_and_parks() {
        let pool = WorkerPool::new(3);
        let before = pool.stats();
        assert_eq!(before.threads, 3);
        assert_eq!(before.kind, pool.kind());
        for _ in 0..10 {
            pool.broadcast(&|_p| {});
        }
        // Let the workers spin out and park, then dispatch once more.
        std::thread::sleep(std::time::Duration::from_millis(20));
        pool.broadcast(&|_p| {});
        let after = pool.stats();
        assert_eq!(after.jobs, before.jobs + 11);
        assert!(after.parks >= before.parks);
        assert!(after.unparks >= after.parks.saturating_sub(2));
        // Width-1 pools only ever run inline.
        let inline_pool = WorkerPool::new(1);
        inline_pool.broadcast(&|_p| {});
        let s = inline_pool.stats();
        assert_eq!(s.kind, "inline");
        assert_eq!(s.jobs, 0);
        assert_eq!(s.inline_jobs, 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(5);
        let count = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool); // must not hang
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }
}

//! Thin QR factorization for tall-skinny dense matrices.
//!
//! Modified Gram–Schmidt with one reorthogonalization pass ("MGS2"), which
//! is numerically adequate for the well-conditioned panels arising in
//! randomized range finding and spectral-embedding post-processing.

use crate::{vecops, DenseMatrix, Result, SparseError};

/// Thin QR of an `n × k` matrix (`n ≥ k`): returns `(Q, R)` with `Q` being
/// `n × k` with orthonormal columns and `R` upper-triangular `k × k`.
///
/// Rank-deficient columns are replaced by zero columns in `Q` with a zero
/// diagonal in `R` (callers detect via [`rank_from_r`]).
///
/// # Errors
/// [`SparseError::ShapeMismatch`] if `n < k`.
pub fn qr_thin(a: &DenseMatrix) -> Result<(DenseMatrix, DenseMatrix)> {
    let n = a.nrows();
    let k = a.ncols();
    if n < k {
        return Err(SparseError::ShapeMismatch(format!(
            "qr_thin needs n >= k, got {n}x{k}"
        )));
    }
    let mut q = a.clone();
    let mut r = DenseMatrix::zeros(k, k);
    let mut col = vec![0.0; n];
    for j in 0..k {
        for (i, c) in col.iter_mut().enumerate() {
            *c = q[(i, j)];
        }
        // Two MGS passes against previous columns.
        for _pass in 0..2 {
            for p in 0..j {
                let mut proj = 0.0;
                for i in 0..n {
                    proj += q[(i, p)] * col[i];
                }
                if proj != 0.0 {
                    for i in 0..n {
                        col[i] -= proj * q[(i, p)];
                    }
                    r[(p, j)] += proj;
                }
            }
        }
        let nrm = vecops::norm2(&col);
        r[(j, j)] = nrm;
        if nrm > f64::EPSILON * (n as f64).sqrt() {
            let inv = 1.0 / nrm;
            for i in 0..n {
                q[(i, j)] = col[i] * inv;
            }
        } else {
            for i in 0..n {
                q[(i, j)] = 0.0;
            }
            r[(j, j)] = 0.0;
        }
    }
    Ok((q, r))
}

/// Numerical rank read off the diagonal of `R` from [`qr_thin`].
pub fn rank_from_r(r: &DenseMatrix, tol: f64) -> usize {
    (0..r.nrows().min(r.ncols()))
        .filter(|&i| r[(i, i)].abs() > tol)
        .count()
}

/// Orthonormalizes the columns of `a` in place (discarding `R`); returns the
/// numerical rank.
///
/// # Errors
/// Propagates [`qr_thin`] errors.
pub fn orthonormalize(a: &mut DenseMatrix) -> Result<usize> {
    let (q, r) = qr_thin(a)?;
    *a = q;
    Ok(rank_from_r(&r, 1e-12))
}

/// Relative Frobenius residual of projecting `e` onto the column span
/// of `reference`: `‖E − Q Qᵀ E‖_F / ‖E‖_F` with `Q` an orthonormal
/// basis of `reference` (thin QR). `0` means `e`'s columns lie inside
/// the reference span; `1` means they are orthogonal to it. This is
/// the subspace-agreement metric the incremental-update verification
/// uses to compare a warm-updated embedding against a from-scratch
/// retrain.
///
/// # Errors
/// Propagates [`qr_thin`] errors; [`SparseError::ShapeMismatch`] if
/// the row counts differ.
pub fn subspace_residual(e: &DenseMatrix, reference: &DenseMatrix) -> Result<f64> {
    let (q, _) = qr_thin(reference)?;
    let proj = q.gram(e)?; // Qᵀ E
    let total = e.frobenius_norm();
    let captured = proj.frobenius_norm();
    Ok(((total * total - captured * captured).max(0.0)).sqrt() / total.max(1e-300))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_orthonormal(q: &DenseMatrix, rank_cols: &[usize]) {
        for &i in rank_cols {
            for &j in rank_cols {
                let d = vecops::dot(&q.col(i), &q.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (d - expect).abs() < 1e-10,
                    "col {i}·col {j} = {d}, expected {expect}"
                );
            }
        }
    }

    #[test]
    fn qr_reconstructs() {
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 9.0],
        ])
        .unwrap();
        let (q, r) = qr_thin(&a).unwrap();
        check_orthonormal(&q, &[0, 1]);
        let qr = q.matmul(&r).unwrap();
        for i in 0..4 {
            for j in 0..2 {
                assert!((qr[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
        // R upper triangular
        assert_eq!(r[(1, 0)], 0.0);
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let (q, r) = qr_thin(&a).unwrap();
        assert_eq!(rank_from_r(&r, 1e-10), 1);
        check_orthonormal(&q, &[0]);
        assert!(q.col(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn wide_matrix_rejected() {
        assert!(qr_thin(&DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn orthonormalize_in_place() {
        let mut a =
            DenseMatrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0], vec![0.0, 0.0]]).unwrap();
        let rank = orthonormalize(&mut a).unwrap();
        assert_eq!(rank, 2);
        check_orthonormal(&a, &[0, 1]);
    }

    #[test]
    fn subspace_residual_detects_span_membership() {
        // e inside the reference span → residual 0; orthogonal → 1.
        let reference =
            DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]]).unwrap();
        let inside = DenseMatrix::from_rows(&[vec![2.0], vec![-3.0], vec![0.0]]).unwrap();
        assert!(subspace_residual(&inside, &reference).unwrap() < 1e-12);
        let outside = DenseMatrix::from_rows(&[vec![0.0], vec![0.0], vec![5.0]]).unwrap();
        assert!((subspace_residual(&outside, &reference).unwrap() - 1.0).abs() < 1e-12);
        // Row-count mismatch is rejected.
        assert!(subspace_residual(&DenseMatrix::zeros(2, 1), &reference).is_err());
    }

    #[test]
    fn near_dependent_columns_stay_orthogonal() {
        // Classic MGS stress: nearly parallel columns.
        let eps = 1e-10;
        let a = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![eps, 0.0], vec![0.0, eps]]).unwrap();
        let (q, _r) = qr_thin(&a).unwrap();
        let d = vecops::dot(&q.col(0), &q.col(1));
        assert!(d.abs() < 1e-8, "reorthogonalization failed: {d}");
    }
}

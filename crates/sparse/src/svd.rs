//! Randomized truncated SVD (Halko–Martinsson–Tropp range finding).
//!
//! Used by the NetMF embedding backend to factorize the (dense, symmetric)
//! log-similarity matrix `M ≈ U_d Σ_d V_dᵀ`, from which the node embedding
//! is `U_d Σ_d^{1/2}`. Power iterations sharpen the spectral decay, which
//! matters because log-transformed similarity matrices have heavy tails.

use crate::eigen::jacobi::jacobi_eig;
use crate::parallel::{default_threads, par_chunks_mut};
use crate::qr::qr_thin;
use crate::{DenseMatrix, Result, SparseError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a truncated SVD: `a ≈ u · diag(s) · vt`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left singular vectors, `nrows × rank`.
    pub u: DenseMatrix,
    /// Singular values, descending, length `rank`.
    pub s: Vec<f64>,
    /// Right singular vectors transposed, `rank × ncols`.
    pub vt: DenseMatrix,
}

/// Options for [`rsvd`].
#[derive(Debug, Clone)]
pub struct RsvdOptions {
    /// Extra sampled directions beyond the target rank (default 8).
    pub oversample: usize,
    /// Power iterations (default 2).
    pub power_iters: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the dense products (default: autodetect, ≤ 16).
    pub threads: usize,
}

impl Default for RsvdOptions {
    fn default() -> Self {
        RsvdOptions {
            oversample: 8,
            power_iters: 2,
            seed: 17,
            threads: default_threads(),
        }
    }
}

/// Computes a rank-`rank` randomized SVD of `a`.
///
/// # Errors
/// [`SparseError::InvalidArgument`] if `rank == 0` or exceeds
/// `min(nrows, ncols)`.
pub fn rsvd(a: &DenseMatrix, rank: usize, opts: &RsvdOptions) -> Result<TruncatedSvd> {
    let (n, m) = (a.nrows(), a.ncols());
    if rank == 0 || rank > n.min(m) {
        return Err(SparseError::InvalidArgument(format!(
            "rsvd rank {rank} invalid for {n}x{m} matrix"
        )));
    }
    let l = (rank + opts.oversample).min(n.min(m));
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Sketch: Y = A Ω.
    let omega = gaussian(m, l, &mut rng);
    let mut y = matmul_par(a, &omega, opts.threads)?;
    let (mut q, _) = qr_thin(&y)?;
    // Power iterations with re-orthogonalization: Q ← orth(A Aᵀ Q).
    for _ in 0..opts.power_iters {
        let z = matmul_tn_par(a, &q, opts.threads)?; // Aᵀ Q  (m × l)
        let (qz, _) = qr_thin(&z)?;
        y = matmul_par(a, &qz, opts.threads)?; // A Qz (n × l)
        let (q2, _) = qr_thin(&y)?;
        q = q2;
    }
    // B = Qᵀ A  (l × m)
    let b = matmul_tn_par_left(&q, a, opts.threads)?;
    // Small-side eigendecomposition of B Bᵀ (l × l).
    let bbt = b.matmul(&b.transpose())?;
    let eig = jacobi_eig(&bbt)?;
    // Descending singular values.
    let mut order: Vec<usize> = (0..eig.values.len()).collect();
    order.sort_by(|&x, &y2| eig.values[y2].partial_cmp(&eig.values[x]).expect("finite"));
    let mut s = Vec::with_capacity(rank);
    let mut u_small = DenseMatrix::zeros(l, rank);
    for (j, &col) in order.iter().take(rank).enumerate() {
        s.push(eig.values[col].max(0.0).sqrt());
        u_small.set_col(j, &eig.vectors.col(col));
    }
    let u = q.matmul(&u_small)?; // n × rank
                                 // Vᵀ = Σ⁻¹ Ũᵀ B.
    let ut_b = u_small.transpose().matmul(&b)?; // rank × m
    let mut vt = ut_b;
    for j in 0..rank {
        let inv = if s[j] > 1e-300 { 1.0 / s[j] } else { 0.0 };
        for c in 0..m {
            vt[(j, c)] *= inv;
        }
    }
    Ok(TruncatedSvd { u, s, vt })
}

/// `A · B` with row-parallelism over `A`.
///
/// # Errors
/// Shape mismatch.
pub fn matmul_par(a: &DenseMatrix, b: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch(format!(
            "{}x{} · {}x{}",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        )));
    }
    let (n, k, m) = (a.nrows(), a.ncols(), b.ncols());
    let mut out = vec![0.0f64; n * m];
    let chunks: Vec<&mut [f64]> = out.chunks_mut(m).collect();
    let mut rows = chunks;
    par_chunks_mut(&mut rows, threads, |start, block| {
        for (off, out_row) in block.iter_mut().enumerate() {
            let i = start + off;
            let arow = a.row(i);
            for p in 0..k {
                let aip = arow[p];
                if aip == 0.0 {
                    continue;
                }
                let brow = b.row(p);
                for (j, &bpj) in brow.iter().enumerate() {
                    out_row[j] += aip * bpj;
                }
            }
        }
    });
    DenseMatrix::from_vec(n, m, out)
}

/// `Aᵀ · B` where both have `n` rows (result `a.ncols × b.ncols`),
/// parallelized over row blocks with per-thread accumulators.
fn matmul_tn_par(a: &DenseMatrix, b: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
    if a.nrows() != b.nrows() {
        return Err(SparseError::ShapeMismatch(format!(
            "tn: {} rows vs {} rows",
            a.nrows(),
            b.nrows()
        )));
    }
    // Small output (l × l or m × l with small l): per-thread partials.
    let (ka, kb) = (a.ncols(), b.ncols());
    let threads = threads.clamp(1, a.nrows().max(1));
    let rows = a.nrows();
    let chunk = rows.div_ceil(threads);
    let partials: Vec<DenseMatrix> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(rows);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move || {
                let mut acc = DenseMatrix::zeros(ka, kb);
                for r in lo..hi {
                    let arow = a.row(r);
                    let brow = b.row(r);
                    for (i, &ai) in arow.iter().enumerate() {
                        if ai == 0.0 {
                            continue;
                        }
                        let acc_row = acc.row_mut(i);
                        for (j, &bj) in brow.iter().enumerate() {
                            acc_row[j] += ai * bj;
                        }
                    }
                }
                acc
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    let mut out = DenseMatrix::zeros(ka, kb);
    for p in partials {
        out.add_scaled(1.0, &p)?;
    }
    Ok(out)
}

/// `Qᵀ · A` (result `q.ncols × a.ncols`), parallel over shared rows.
fn matmul_tn_par_left(q: &DenseMatrix, a: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
    matmul_tn_par(q, a, threads)
}

fn gaussian(rows: usize, cols: usize, rng: &mut StdRng) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    // Box–Muller from uniform pairs.
    let mut spare: Option<f64> = None;
    for v in m.data_mut() {
        *v = match spare.take() {
            Some(z) => z,
            None => {
                let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-300), rng.gen());
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                spare = Some(r * theta.sin());
                r * theta.cos()
            }
        };
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_rank_matrix(n: usize, m: usize, rank: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = gaussian(n, rank, &mut rng);
        let v = gaussian(m, rank, &mut rng);
        let mut out = DenseMatrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                let mut acc = 0.0;
                for p in 0..rank {
                    // Decaying spectrum 1/(p+1).
                    acc += u[(i, p)] * v[(j, p)] / (p as f64 + 1.0);
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    #[test]
    fn recovers_exact_low_rank() {
        let a = low_rank_matrix(60, 40, 5, 3);
        let svd = rsvd(&a, 5, &RsvdOptions::default()).unwrap();
        // Reconstruction error should be tiny.
        let us = {
            let mut us = svd.u.clone();
            for j in 0..5 {
                for i in 0..60 {
                    us[(i, j)] *= svd.s[j];
                }
            }
            us
        };
        let rec = us.matmul(&svd.vt).unwrap();
        let mut err: f64 = 0.0;
        for i in 0..60 {
            for j in 0..40 {
                err = err.max((rec[(i, j)] - a[(i, j)]).abs());
            }
        }
        assert!(err < 1e-8, "reconstruction error {err}");
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let a = low_rank_matrix(50, 50, 10, 11);
        let svd = rsvd(&a, 8, &RsvdOptions::default()).unwrap();
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(svd.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn orthonormal_u() {
        let a = low_rank_matrix(70, 30, 6, 5);
        let svd = rsvd(&a, 6, &RsvdOptions::default()).unwrap();
        for i in 0..6 {
            for j in i..6 {
                let d = crate::vecops::dot(&svd.u.col(i), &svd.u.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-8, "u{i}·u{j} = {d}");
            }
        }
    }

    #[test]
    fn invalid_rank_rejected() {
        let a = DenseMatrix::zeros(5, 4);
        assert!(rsvd(&a, 0, &RsvdOptions::default()).is_err());
        assert!(rsvd(&a, 5, &RsvdOptions::default()).is_err());
    }

    #[test]
    fn deterministic() {
        let a = low_rank_matrix(40, 40, 4, 9);
        let s1 = rsvd(&a, 4, &RsvdOptions::default()).unwrap();
        let s2 = rsvd(&a, 4, &RsvdOptions::default()).unwrap();
        assert_eq!(s1.s, s2.s);
    }

    #[test]
    fn matmul_par_matches_sequential() {
        let a = low_rank_matrix(33, 21, 7, 1);
        let b = low_rank_matrix(21, 17, 7, 2);
        let c1 = a.matmul(&b).unwrap();
        let c2 = matmul_par(&a, &b, 4).unwrap();
        for i in 0..33 {
            for j in 0..17 {
                assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matmul_par_shape_check() {
        let a = DenseMatrix::zeros(3, 4);
        let b = DenseMatrix::zeros(5, 2);
        assert!(matmul_par(&a, &b, 2).is_err());
    }
}

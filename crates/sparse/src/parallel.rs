//! Data-parallel helpers over the persistent worker pool.
//!
//! The SGLA hot loops (SpMV over MAG-scale matrices, KNN construction,
//! reorthogonalization sweeps, blocked top-k scoring) are embarrassingly
//! parallel over rows. These helpers dispatch onto the process-wide
//! [`WorkerPool`] — parked threads woken per
//! region — instead of spawning fresh OS threads per call; chunk stealing
//! inside the pool absorbs skewed row costs. Results are identical to the
//! sequential path bit-for-bit: every index is computed independently, so
//! chunk boundaries cannot change any floating-point result.
//!
//! The pre-pool implementation (fresh `std::thread::scope` per region) is
//! preserved under the `scoped-baseline` feature as [`scoped`] so the
//! kernel benchmark can quantify the spawn overhead it removes.

use crate::pool::WorkerPool;

/// Runs `f(start, chunk)` over contiguous chunks of `data` using up to
/// `threads` parallel workers from the global pool; `start` is the
/// chunk's offset in the original slice. Chunk boundaries are chosen by
/// the pool (atomic stealing) and carry no semantic meaning.
///
/// Runs inline when `threads <= 1` or the slice is empty.
pub fn par_chunks_mut<T: Send, F>(data: &mut [T], threads: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        f(0, data);
        return;
    }
    WorkerPool::global().for_each_slice_chunk(data, threads, 1, f);
}

/// Runs `f(i)` for `i` in `0..count` with up to `threads` pool workers
/// and collects the results in index order.
pub fn par_map<R: Send, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    F: Fn(usize) -> R + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, count);
    if threads == 1 {
        return (0..count).map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(count);
    out.resize_with(count, || None);
    par_chunks_mut(&mut out, threads, |start, slots| {
        for (off, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(start + off));
        }
    });
    out.into_iter()
        .map(|o| o.expect("pool covers every index exactly once"))
        .collect()
}

/// Number of worker threads to use by default: the `SGLA_THREADS`
/// environment variable if set, otherwise the available parallelism;
/// either way capped at 16 (the paper's experimental setup allows at
/// most 16 CPU threads). Read once and cached — the global pool is sized
/// from this value on first use.
pub fn default_threads() -> usize {
    use std::sync::OnceLock;
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Some(v) = std::env::var("SGLA_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&v| v >= 1)
        {
            return v.min(16);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
    })
}

/// The pre-pool scoped-thread implementations, kept only so the kernel
/// benchmark can measure the spawn overhead the pool removes. Not used
/// by any library code path.
#[cfg(feature = "scoped-baseline")]
pub mod scoped {
    use crate::CsrMatrix;

    /// Splits `data` into `threads` contiguous chunks and runs
    /// `f(start, chunk)` on each from a freshly spawned scoped thread
    /// (the pre-pool implementation: one spawn/join cycle per chunk per
    /// call).
    pub fn par_chunks_mut<T: Send, F>(data: &mut [T], threads: usize, f: F)
    where
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = data.len();
        if n == 0 {
            return;
        }
        let threads = threads.clamp(1, n);
        if threads == 1 {
            f(0, data);
            return;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut start = 0usize;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                let fref = &f;
                scope.spawn(move || fref(start, head));
                start += take;
                rest = tail;
            }
        });
    }

    /// `y ← A x` with scoped-thread row blocks, spawning threads on
    /// every call regardless of size (benchmark baseline — the library
    /// path is [`CsrMatrix::matvec_parallel`]).
    pub fn matvec_parallel(a: &CsrMatrix, x: &[f64], y: &mut [f64], threads: usize) {
        debug_assert_eq!(x.len(), a.ncols());
        debug_assert_eq!(y.len(), a.nrows());
        if threads <= 1 {
            a.matvec(x, y);
            return;
        }
        par_chunks_mut(y, threads, |start, chunk| {
            for (off, yr) in chunk.iter_mut().enumerate() {
                let r = start + off;
                let mut acc = 0.0;
                for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                    acc += v * x[c];
                }
                *yr = acc;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_covers_all_indices() {
        let mut v = vec![0usize; 103];
        par_chunks_mut(&mut v, 4, |start, chunk| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = start + off;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn par_chunks_mut_single_thread_inline() {
        let mut v = vec![1u32; 10];
        par_chunks_mut(&mut v, 1, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn par_chunks_mut_empty() {
        let mut v: Vec<u8> = vec![];
        par_chunks_mut(&mut v, 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn par_map_order_preserved() {
        let out = par_map(57, 5, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn par_map_runs_each_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map(200, 8, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        assert_eq!(out.len(), 200);
    }

    #[test]
    fn par_map_panic_does_not_poison_pool() {
        let caught = std::panic::catch_unwind(|| {
            par_map(64, 4, |i| {
                if i == 13 {
                    panic!("unlucky index");
                }
                i
            })
        });
        assert!(caught.is_err());
        // The global pool must keep serving after a panicking task.
        let out = par_map(64, 4, |i| i + 1);
        assert_eq!(out.iter().sum::<usize>(), (1..=64).sum::<usize>());
    }

    #[test]
    fn default_threads_positive() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }
}

//! Minimal data-parallel helpers built on std scoped threads.
//!
//! The SGLA hot loops (SpMV over MAG-scale simulations, KNN construction)
//! are embarrassingly parallel over rows. A full work-stealing pool is
//! unnecessary; static row-block partitioning keeps the implementation
//! dependency-free and predictable.

/// Splits `data` into `threads` contiguous chunks and runs `f(start, chunk)`
/// on each from a scoped thread. `f` receives the starting index of its
/// chunk in the original slice.
///
/// Runs inline when `threads <= 1` or the slice is empty.
pub fn par_chunks_mut<T: Send, F>(data: &mut [T], threads: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        f(0, data);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let fref = &f;
            scope.spawn(move || fref(start, head));
            start += take;
            rest = tail;
        }
    });
}

/// Runs `f(i)` for `i` in `0..count`, distributing indices over `threads`
/// workers in contiguous ranges, and collects the results in index order.
pub fn par_map<R: Send, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    F: Fn(usize) -> R + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, count);
    if threads == 1 {
        return (0..count).map(f).collect();
    }
    let chunk = count.div_ceil(threads);
    let mut out: Vec<Option<R>> = (0..count).map(|_| None).collect();
    par_chunks_mut(&mut out, threads, |start, slots| {
        for (off, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(start + off));
        }
    });
    let _ = chunk;
    out.into_iter()
        .map(|o| o.expect("all slots filled by par_chunks_mut"))
        .collect()
}

/// Number of worker threads to use by default: available parallelism capped
/// at 16 (the paper's experimental setup allows at most 16 CPU threads).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_covers_all_indices() {
        let mut v = vec![0usize; 103];
        par_chunks_mut(&mut v, 4, |start, chunk| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = start + off;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn par_chunks_mut_single_thread_inline() {
        let mut v = vec![1u32; 10];
        par_chunks_mut(&mut v, 1, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn par_chunks_mut_empty() {
        let mut v: Vec<u8> = vec![];
        par_chunks_mut(&mut v, 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn par_map_order_preserved() {
        let out = par_map(57, 5, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn par_map_runs_each_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map(200, 8, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        assert_eq!(out.len(), 200);
    }

    #[test]
    fn default_threads_positive() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }
}

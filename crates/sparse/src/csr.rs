//! Compressed sparse row matrices.
//!
//! The workhorse storage for view Laplacians. Supports the exact operation
//! mix SGLA needs: matvec (sequential and row-block parallel), linear
//! combinations with *identical or differing* sparsity patterns, symmetric
//! normalization helpers, and cheap structural queries.

use crate::parallel::par_chunks_mut;
use crate::{CooMatrix, DenseMatrix, Result, SparseError};

/// A sparse matrix in CSR (compressed sparse row) format.
///
/// Invariants (maintained by all constructors):
/// * `indptr.len() == nrows + 1`, `indptr[0] == 0`, non-decreasing;
/// * `cols`/`vals` have length `indptr[nrows]`;
/// * within each row, column indices are strictly increasing and `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating all invariants.
    ///
    /// # Errors
    /// [`SparseError::InvalidArgument`] if any invariant is violated.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        cols: Vec<usize>,
        vals: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != nrows + 1 {
            return Err(SparseError::InvalidArgument(format!(
                "indptr length {} != nrows + 1 = {}",
                indptr.len(),
                nrows + 1
            )));
        }
        if indptr[0] != 0 {
            return Err(SparseError::InvalidArgument("indptr[0] != 0".into()));
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::InvalidArgument(
                "indptr must be non-decreasing".into(),
            ));
        }
        let nnz = *indptr.last().expect("len >= 1");
        if cols.len() != nnz || vals.len() != nnz {
            return Err(SparseError::InvalidArgument(format!(
                "cols/vals length ({}/{}) != indptr[nrows] = {}",
                cols.len(),
                vals.len(),
                nnz
            )));
        }
        for r in 0..nrows {
            let row = &cols[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidArgument(format!(
                        "row {r}: columns not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last >= ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        index: last,
                        bound: ncols,
                        axis: "col",
                    })?;
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            indptr,
            cols,
            vals,
        })
    }

    /// Builds a CSR matrix from parts already known to satisfy the
    /// invariants (used by [`CooMatrix::to_csr`] which constructs them by
    /// construction). Debug builds still verify.
    pub(crate) fn from_raw_parts_unchecked(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        cols: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            Self::from_raw_parts(nrows, ncols, indptr.clone(), cols.clone(), vals.clone())
                .expect("internal CSR construction violated invariants");
        }
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            cols,
            vals,
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            cols: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// An `nrows × ncols` all-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// A diagonal matrix with the given diagonal (zeros are kept implicit).
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut coo = CooMatrix::with_capacity(diag.len(), diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            if d != 0.0 {
                coo.push(i, i, d).expect("in bounds by construction");
            }
        }
        coo.to_csr()
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of explicitly stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices of row `r` (sorted ascending).
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.cols[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Values of row `r`, parallel to [`Self::row_cols`].
    #[inline]
    pub fn row_vals(&self, r: usize) -> &[f64] {
        &self.vals[self.indptr[r]..self.indptr[r + 1]]
    }

    /// All stored values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// All stored column indices (rows concatenated; delimit rows with
    /// [`Self::indptr`]), parallel to [`Self::values`].
    #[inline]
    pub fn column_indices(&self) -> &[usize] {
        &self.cols
    }

    /// Mutable access to all stored values (pattern is immutable).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Value at `(r, c)`, `0.0` if not stored. Binary search per row.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let cols = self.row_cols(r);
        match cols.binary_search(&c) {
            Ok(pos) => self.vals[self.indptr[r] + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(row, col, value)` of all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            self.row_cols(r)
                .iter()
                .zip(self.row_vals(r))
                .map(move |(&c, &v)| (r, c, v))
        })
    }

    /// `y ← A x` (sequential).
    ///
    /// # Panics
    /// Debug-asserts shape compatibility; callers inside this workspace
    /// always pass correctly sized buffers (hot path, no `Result`).
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.ncols, "matvec: x length");
        debug_assert_eq!(y.len(), self.nrows, "matvec: y length");
        for r in 0..self.nrows {
            let mut acc = 0.0;
            let (s, e) = (self.indptr[r], self.indptr[r + 1]);
            for idx in s..e {
                acc += self.vals[idx] * x[self.cols[idx]];
            }
            y[r] = acc;
        }
    }

    /// `y ← y + alpha · A x` (sequential).
    pub fn matvec_acc(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.ncols, "matvec_acc: x length");
        debug_assert_eq!(y.len(), self.nrows, "matvec_acc: y length");
        for r in 0..self.nrows {
            let mut acc = 0.0;
            let (s, e) = (self.indptr[r], self.indptr[r + 1]);
            for idx in s..e {
                acc += self.vals[idx] * x[self.cols[idx]];
            }
            y[r] += alpha * acc;
        }
    }

    /// Batched multi-vector matvec `Y ← A X` for row-major blocks whose
    /// columns are the vectors (`X` is `ncols × b`, `Y` is `nrows × b`).
    /// One traversal of each CSR row updates all `b` outputs, amortizing
    /// the index walk and the `X`-row loads across the block — the win
    /// that makes block subspace iteration stream-bound instead of
    /// latency-bound. Per column, accumulation order matches
    /// [`Self::matvec`] exactly, so results are bit-identical to `b`
    /// separate matvecs. Parallel over row ranges via the worker pool.
    pub fn matvec_block(&self, x: &DenseMatrix, y: &mut DenseMatrix, threads: usize) {
        debug_assert_eq!(x.nrows(), self.ncols, "matvec_block: x rows");
        debug_assert_eq!(y.nrows(), self.nrows, "matvec_block: y rows");
        debug_assert_eq!(x.ncols(), y.ncols(), "matvec_block: block width");
        let b = x.ncols();
        if b == 0 || self.nrows == 0 {
            return;
        }
        let body = |start: usize, block: &mut [&mut [f64]]| {
            for (off, out_row) in block.iter_mut().enumerate() {
                let r = start + off;
                out_row.fill(0.0);
                for (&c, &v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                    for (o, &xv) in out_row.iter_mut().zip(x.row(c)) {
                        *o += v * xv;
                    }
                }
            }
        };
        let mut rows: Vec<&mut [f64]> = y.data_mut().chunks_mut(b).collect();
        if threads <= 1 || self.nnz() * b < 1 << 13 {
            body(0, &mut rows);
        } else {
            par_chunks_mut(&mut rows, threads, |start, block| body(start, block));
        }
    }

    /// `y ← A x` over up to `threads` persistent pool workers with
    /// atomic row-range stealing (bit-identical to [`Self::matvec`]).
    /// Falls back to sequential when the matrix is small or
    /// `threads <= 1`; the cutoff is far lower than a spawn-per-call
    /// design could afford because waking parked workers costs
    /// microseconds, not a thread spawn.
    pub fn matvec_parallel(&self, x: &[f64], y: &mut [f64], threads: usize) {
        debug_assert_eq!(x.len(), self.ncols);
        debug_assert_eq!(y.len(), self.nrows);
        if threads <= 1 || self.nnz() < 1 << 13 {
            self.matvec(x, y);
            return;
        }
        let indptr = &self.indptr;
        let cols = &self.cols;
        let vals = &self.vals;
        par_chunks_mut(y, threads, |start, chunk| {
            for (off, yr) in chunk.iter_mut().enumerate() {
                let r = start + off;
                let mut acc = 0.0;
                for idx in indptr[r]..indptr[r + 1] {
                    acc += vals[idx] * x[cols[idx]];
                }
                *yr = acc;
            }
        });
    }

    /// Transpose (`O(nnz + n)` counting sort).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut next = counts.clone();
        let mut tcols = vec![0usize; self.nnz()];
        let mut tvals = vec![0.0f64; self.nnz()];
        for r in 0..self.nrows {
            for idx in self.indptr[r]..self.indptr[r + 1] {
                let c = self.cols[idx];
                let slot = next[c];
                next[c] += 1;
                tcols[slot] = r;
                tvals[slot] = self.vals[idx];
            }
        }
        CsrMatrix::from_raw_parts_unchecked(self.ncols, self.nrows, counts, tcols, tvals)
    }

    /// Whether the matrix is exactly symmetric (pattern and values).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr || t.cols != self.cols {
            return false;
        }
        self.vals
            .iter()
            .zip(&t.vals)
            .all(|(a, b)| (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0))
    }

    /// Row sums (for adjacency matrices these are the generalized degrees
    /// `δ(v)` of Definition 1).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|r| self.row_vals(r).iter().sum())
            .collect()
    }

    /// Extracts the diagonal.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Linear combination `Σ coeffs[i] · mats[i]` over matrices of equal
    /// shape; patterns may differ (union pattern in the result).
    ///
    /// This materializes the SGLA aggregation `L = Σ wᵢ Lᵢ` (Eq. 1) when an
    /// explicit matrix is required (spectral clustering input, tests). The
    /// optimization loop itself uses the lazy
    /// [`ScaledSumOp`](crate::ScaledSumOp) instead.
    ///
    /// # Errors
    /// [`SparseError::ShapeMismatch`] on inconsistent shapes or coefficient
    /// count.
    pub fn linear_combination(mats: &[&CsrMatrix], coeffs: &[f64]) -> Result<CsrMatrix> {
        if mats.is_empty() {
            return Err(SparseError::InvalidArgument(
                "linear_combination of zero matrices".into(),
            ));
        }
        if mats.len() != coeffs.len() {
            return Err(SparseError::ShapeMismatch(format!(
                "{} matrices vs {} coefficients",
                mats.len(),
                coeffs.len()
            )));
        }
        let (nr, nc) = (mats[0].nrows, mats[0].ncols);
        for m in mats {
            if m.nrows != nr || m.ncols != nc {
                return Err(SparseError::ShapeMismatch(format!(
                    "{}x{} vs {}x{}",
                    m.nrows, m.ncols, nr, nc
                )));
            }
        }
        // Row-wise k-way merge with a dense scatter buffer (classic
        // Gustavson): O(Σ nnz) time, O(ncols) extra space.
        let mut indptr = Vec::with_capacity(nr + 1);
        indptr.push(0usize);
        let cap: usize = mats.iter().map(|m| m.nnz()).max().unwrap_or(0);
        let mut out_cols: Vec<usize> = Vec::with_capacity(cap);
        let mut out_vals: Vec<f64> = Vec::with_capacity(cap);
        let mut accum = vec![0.0f64; nc];
        let mut touched: Vec<usize> = Vec::with_capacity(64);
        for r in 0..nr {
            touched.clear();
            for (m, &w) in mats.iter().zip(coeffs) {
                if w == 0.0 {
                    continue;
                }
                for (&c, &v) in m.row_cols(r).iter().zip(m.row_vals(r)) {
                    if accum[c] == 0.0 && !touched.contains(&c) {
                        touched.push(c);
                    }
                    accum[c] += w * v;
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                let v = accum[c];
                accum[c] = 0.0;
                if v != 0.0 {
                    out_cols.push(c);
                    out_vals.push(v);
                }
            }
            indptr.push(out_cols.len());
        }
        Ok(CsrMatrix::from_raw_parts_unchecked(
            nr, nc, indptr, out_cols, out_vals,
        ))
    }

    /// Scales all values in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.vals {
            *v *= alpha;
        }
    }

    /// Returns `D^{-1/2} A D^{-1/2}` where `D = diag(row_sums)`; rows with
    /// zero sum map to zero rows (isolated nodes).
    pub fn sym_normalized(&self) -> CsrMatrix {
        let deg = self.row_sums();
        let inv_sqrt: Vec<f64> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut out = self.clone();
        for r in 0..self.nrows {
            let (s, e) = (self.indptr[r], self.indptr[r + 1]);
            for idx in s..e {
                out.vals[idx] = self.vals[idx] * inv_sqrt[r] * inv_sqrt[self.cols[idx]];
            }
        }
        out
    }

    /// Dense conversion for tests and small problems.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d[(r, c)] = v;
        }
        d
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.vals.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Estimated heap footprint in bytes (for the memory experiment E13).
    pub fn heap_bytes(&self) -> usize {
        self.indptr.capacity() * std::mem::size_of::<usize>()
            + self.cols.capacity() * std::mem::size_of::<usize>()
            + self.vals.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 3 ]
        // [ 4 5 0 ]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 2, 3.0).unwrap();
        coo.push(2, 0, 4.0).unwrap();
        coo.push(2, 1, 5.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn from_raw_parts_validates() {
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
        assert!(
            CsrMatrix::from_raw_parts(1, 2, vec![0, 2], vec![1, 0], vec![1.0, 1.0]).is_err(),
            "unsorted columns must be rejected"
        );
        assert!(
            CsrMatrix::from_raw_parts(1, 2, vec![0, 2], vec![0, 5], vec![1.0, 1.0]).is_err(),
            "out of range column must be rejected"
        );
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn identity_matvec() {
        let i = CsrMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        i.matvec(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let x = [1.0, -1.0, 2.0];
        let mut y = [0.0; 3];
        a.matvec(&x, &mut y);
        assert_eq!(y, [5.0, 6.0, -1.0]);
    }

    #[test]
    fn matvec_acc_accumulates() {
        let a = sample();
        let x = [1.0, 0.0, 0.0];
        let mut y = [10.0, 10.0, 10.0];
        a.matvec_acc(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 10.0, 18.0]);
    }

    #[test]
    fn parallel_matvec_matches_sequential() {
        let mut coo = CooMatrix::new(257, 257);
        let mut state = 1u64;
        for i in 0..257usize {
            for _ in 0..8 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % 257;
                coo.push(i, j, ((state >> 11) as f64) / (1u64 << 53) as f64)
                    .unwrap();
            }
        }
        let a = coo.to_csr();
        let x: Vec<f64> = (0..257).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; 257];
        let mut y2 = vec![0.0; 257];
        a.matvec(&x, &mut y1);
        a.matvec_parallel(&x, &mut y2, 4);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        assert_eq!(a.transpose().get(2, 1), 3.0);
    }

    #[test]
    fn symmetry_check() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push_sym(0, 1, 3.0).unwrap();
        assert!(coo.to_csr().is_symmetric(0.0));
        assert!(!sample().is_symmetric(1e-12));
        assert!(!CsrMatrix::zeros(2, 3).is_symmetric(0.0));
    }

    #[test]
    fn linear_combination_union_pattern() {
        let mut c1 = CooMatrix::new(2, 2);
        c1.push(0, 0, 1.0).unwrap();
        let mut c2 = CooMatrix::new(2, 2);
        c2.push(1, 1, 2.0).unwrap();
        c2.push(0, 0, 1.0).unwrap();
        let a = c1.to_csr();
        let b = c2.to_csr();
        let s = CsrMatrix::linear_combination(&[&a, &b], &[2.0, 0.5]).unwrap();
        assert_eq!(s.get(0, 0), 2.5);
        assert_eq!(s.get(1, 1), 1.0);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn linear_combination_zero_weight_skips_pattern() {
        let a = CsrMatrix::identity(2);
        let b = sample();
        // shape mismatch must error
        assert!(CsrMatrix::linear_combination(&[&a, &b], &[1.0, 1.0]).is_err());
        let z = CsrMatrix::zeros(2, 2);
        let s = CsrMatrix::linear_combination(&[&a, &z], &[1.0, 0.0]).unwrap();
        assert_eq!(s, a);
    }

    #[test]
    fn linear_combination_rejects_bad_args() {
        assert!(CsrMatrix::linear_combination(&[], &[]).is_err());
        let a = CsrMatrix::identity(2);
        assert!(CsrMatrix::linear_combination(&[&a], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn sym_normalized_unit_row_sums_on_regular_graph() {
        // 4-cycle: every node degree 2; normalized adjacency rows sum to 1.
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4usize {
            coo.push_sym(i, (i + 1) % 4, 1.0).unwrap();
        }
        let a = coo.to_csr();
        let p = a.sym_normalized();
        for r in 0..4 {
            let s: f64 = p.row_vals(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sym_normalized_isolated_node() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_sym(0, 1, 1.0).unwrap(); // node 2 isolated
        let p = coo.to_csr().sym_normalized();
        assert_eq!(p.row_vals(2).len(), 0);
        assert_eq!(p.get(0, 1), 1.0);
    }

    #[test]
    fn diag_and_row_sums() {
        let a = sample();
        assert_eq!(a.diag(), vec![1.0, 0.0, 0.0]);
        assert_eq!(a.row_sums(), vec![3.0, 3.0, 9.0]);
    }

    #[test]
    fn from_diag_skips_zeros() {
        let d = CsrMatrix::from_diag(&[1.0, 0.0, 2.0]);
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.get(1, 1), 0.0);
        assert_eq!(d.get(2, 2), 2.0);
    }

    #[test]
    fn to_dense_matches() {
        let a = sample();
        let d = a.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d[(r, c)], a.get(r, c));
            }
        }
    }

    #[test]
    fn frobenius() {
        let a = CsrMatrix::identity(4);
        assert!((a.frobenius_norm() - 2.0).abs() < 1e-15);
    }
}
